"""Theorems 2 and 3: bridging landmark-window and arbitrary-window
guarantees.

Section 3.1 proves two transfer theorems that turn a landmark-window
algorithm's guarantees into arbitrary-window ones, and notes (as future
work) that they are "guidelines for designing new arbitrary-window
algorithms based on existing landmark-window algorithms".  This module
makes the theorems executable:

- :func:`no_fps_transfer` — Theorem 2: a landmark no-FPs guarantee at
  ``(gamma'_l, beta'_l)`` transfers verbatim to arbitrary windows.
- :func:`no_fnl_transfer` — Theorem 3: a landmark no-FNl guarantee at
  ``(gamma'_h, beta'_h)`` plus a synopsis-boundedness constant ``Delta``
  yields an arbitrary-window guarantee at
  ``gamma_h = gamma'_h``, ``beta_h >= beta'_h + gamma_h * Delta``.
- :func:`eardet_synopsis_distance_bound` — EARDet's L3 constant
  ``Delta = (beta_TH + alpha) * n / rho`` from Theorem 4's proof.
- :func:`incompatibility_witness` — the Section 3.1 impossibility: for
  ANY parameter choice, a witness interval and volume that violates the
  high threshold over some [t1, t2) while complying with the landmark
  low threshold over [0, t2) — hence no algorithm satisfies (A2, L2, L3)
  and (A1, L1) simultaneously, which is exactly why the ambiguity region
  must exist.

Everything returns exact Fractions; tests cross-check the EARDet
constants in :mod:`repro.core.theory` against these transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Tuple, Union

Number = Union[int, float, Fraction]


@dataclass(frozen=True)
class ArbitraryWindowGuarantee:
    """An arbitrary-window threshold guarantee ``gamma * t + beta``."""

    gamma: Fraction
    beta: Fraction

    def threshold_scaled(self, t_ns: int) -> Fraction:
        """Threshold volume (bytes, exact) for a window of ``t_ns``."""
        return self.gamma * t_ns / 1_000_000_000 + self.beta


def no_fps_transfer(gamma_l_prime: Number, beta_l_prime: Number) -> ArbitraryWindowGuarantee:
    """Theorem 2: landmark no-FPs at ``(gamma'_l, beta'_l)`` implies
    arbitrary-window no-FPs at the same parameters.

    (If a flow sends under ``gamma_l (t2-t1) + beta_l`` over every
    interval, it sends under ``gamma_l t + beta_l`` over every landmark
    interval ``[0, t)`` in particular.)
    """
    return ArbitraryWindowGuarantee(
        gamma=Fraction(gamma_l_prime), beta=Fraction(beta_l_prime)
    )


def no_fnl_transfer(
    gamma_h_prime: Number, beta_h_prime: Number, delta_seconds: Number
) -> ArbitraryWindowGuarantee:
    """Theorem 3: landmark no-FNl at ``(gamma'_h, beta'_h)`` with synopsis
    distance bound ``Delta`` implies arbitrary-window no-FNl at
    ``gamma_h = gamma'_h``, ``beta_h = beta'_h + gamma_h * Delta``.
    """
    gamma = Fraction(gamma_h_prime)
    delta = Fraction(delta_seconds)
    if delta < 0:
        raise ValueError(f"Delta must be >= 0, got {delta_seconds}")
    return ArbitraryWindowGuarantee(
        gamma=gamma, beta=Fraction(beta_h_prime) + gamma * delta
    )


def eardet_synopsis_distance_bound(
    rho: int, n: int, beta_th: int, alpha: int
) -> Fraction:
    """EARDet's L3 constant: any reachable synopsis is within
    ``Delta = (beta_TH + alpha) * n / rho`` seconds of the initial state
    (Theorem 4's proof: at most ``n`` counters, each at most
    ``beta_TH + alpha``, reconstructible by a back-to-back packet
    sequence of that total size)."""
    if rho <= 0:
        raise ValueError(f"rho must be positive, got {rho}")
    return Fraction((beta_th + alpha) * n, rho)


def eardet_arbitrary_window_guarantee(
    rho: int, n: int, beta_th: int, alpha: int
) -> ArbitraryWindowGuarantee:
    """Theorem 4 derived through Theorem 3: EARDet's landmark guarantee
    is ``(rho/(n+1), beta_TH)`` (the Misra-Gries argument), its synopsis
    bound is :func:`eardet_synopsis_distance_bound`, and the transfer
    yields ``gamma_h = rho/(n+1)``,
    ``beta_h = beta_TH + n/(n+1) (beta_TH + alpha)`` — which the paper
    rounds up to the cleaner ``alpha + 2 beta_TH``.
    """
    return no_fnl_transfer(
        gamma_h_prime=Fraction(rho, n + 1),
        beta_h_prime=beta_th,
        delta_seconds=eardet_synopsis_distance_bound(rho, n, beta_th, alpha),
    )


def incompatibility_witness(
    gamma_l_prime: Number,
    beta_l_prime: Number,
    gamma_h: Number,
    beta_h: Number,
    epsilon_seconds: Number = Fraction(1, 1000),
) -> Tuple[Fraction, Fraction, Fraction]:
    """Section 3.1's impossibility construction.

    Returns ``(t1, t2, volume)`` in (seconds, seconds, bytes) such that a
    flow sending ``volume`` during ``[t1, t2)``:

    - **violates** the high-bandwidth threshold over ``[t1, t2)``
      (``volume > gamma_h (t2-t1) + beta_h``), yet
    - **complies** with the landmark low threshold over ``[0, t2)``
      (``volume <= gamma'_l t2 + beta'_l``).

    Hence no detector can simultaneously promise landmark no-FPs (L1)
    and arbitrary-window no-FNl (A2): this flow must and must not be
    reported.  The construction follows the paper: ``t1 = t2 - eps`` and
    ``t2 > (beta_h - beta'_l + gamma_h eps + 1) / gamma'_l``.
    """
    gamma_l_prime = Fraction(gamma_l_prime)
    beta_l_prime = Fraction(beta_l_prime)
    gamma_h = Fraction(gamma_h)
    beta_h = Fraction(beta_h)
    epsilon = Fraction(epsilon_seconds)
    if gamma_l_prime <= 0:
        raise ValueError("gamma'_l must be positive for the construction")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    t2 = (beta_h - beta_l_prime + gamma_h * epsilon + 1) / gamma_l_prime + 1
    t1 = t2 - epsilon
    volume = gamma_h * epsilon + beta_h + 1
    return t1, t2, volume
