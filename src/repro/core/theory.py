"""Closed-form theory from Section 4 of the paper.

Every theorem the paper states about EARDet has a corresponding function
here, so tests and experiments can check measured behaviour against the
analytical guarantee:

- Theorem 4 (no-FNl):   :func:`rnfn`, :func:`beta_h_guarantee`
- Theorem 6 (no-FPs):   :func:`rnfp`
- Section 4.3:          :func:`min_rate_gap`, :func:`min_rate_gap_approx`,
                        :func:`min_burst_gap`
- Theorem 7:            :func:`incubation_bound_seconds`,
                        :func:`min_counters_for_rate`
- Appendix A (Eq. 12):  :func:`solvable`, :func:`min_t_upincb`

Rates are bytes/second, sizes bytes; functions return exact
:class:`fractions.Fraction` values where the paper's inequalities are
strict, so callers can make exact threshold decisions.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Union

Number = Union[int, float, Fraction]


def rnfn(rho: int, n: int) -> Fraction:
    """No-FNl rate ``R_NFN = rho / (n + 1)`` (Theorem 4).

    Any flow with ``gamma_h >= R_NFN`` (and ``beta_h >= alpha + 2 beta_TH``)
    is guaranteed caught.
    """
    _check_counters(n)
    return Fraction(rho, n + 1)


def beta_h_guarantee(alpha: int, beta_th: int) -> int:
    """Minimum ``beta_h`` for the no-FNl guarantee:
    ``beta_h = alpha + 2 * beta_TH`` (Theorem 4)."""
    return alpha + 2 * beta_th


def rnfp(rho: int, n: int, alpha: int, beta_l: int, beta_delta: int) -> Fraction:
    """No-FPs rate ``R_NFP`` (Theorem 6).

    Flows complying with ``TH_l(t) = gamma_l t + beta_l`` are never caught
    provided ``gamma_l < R_NFP`` and ``0 < beta_l < beta_TH``::

        R_NFP = beta_delta * rho
                / ((n-1) alpha + (n+1) beta_l + (n+1) beta_delta)
    """
    _check_counters(n)
    if beta_delta <= 0:
        raise ValueError(f"beta_delta must be positive, got {beta_delta}")
    denominator = (n - 1) * alpha + (n + 1) * beta_l + (n + 1) * beta_delta
    return Fraction(beta_delta * rho, denominator)


def t_beta_l_seconds(
    rho: int, n: int, alpha: int, beta_l: int, gamma_l: int
) -> Fraction:
    """Lemma 5's settling time ``t_{beta_l}``: once a small flow occupies a
    counter, the counter stays below ``beta_TH`` after this long::

        t = ((n-1) alpha + (n+1) beta_l) / ((1 - (n+1) gamma_l / rho) rho)
    """
    _check_counters(n)
    denominator = rho - (n + 1) * gamma_l
    if denominator <= 0:
        raise ValueError(
            f"gamma_l={gamma_l} must be below rho/(n+1)={Fraction(rho, n + 1)}"
        )
    return Fraction((n - 1) * alpha + (n + 1) * beta_l, denominator)


def min_rate_gap(n: int, alpha: int, beta_l: int, beta_delta: int) -> Fraction:
    """Exact minimum rate gap ``(gamma_h / gamma_l)_min = R_NFN / R_NFP``
    (Section 4.3)."""
    _check_counters(n)
    numerator = (n - 1) * alpha + (n + 1) * (beta_l + beta_delta)
    return Fraction(numerator, beta_delta * (n + 1))


def min_rate_gap_approx(
    alpha: int, beta_l: int, beta_h: Number
) -> float:
    """Equation (2)'s large-n approximation of the minimum rate gap::

        1 + (2 alpha/beta_l + 2) / (beta_h/beta_l - (alpha/beta_l + 2))

    Only valid when the burst gap exceeds ``alpha/beta_l + 2``
    (:func:`min_burst_gap`).
    """
    burst_gap = beta_h / beta_l
    floor = alpha / beta_l + 2
    if burst_gap <= floor:
        raise ValueError(
            f"burst gap {burst_gap:.3f} must exceed alpha/beta_l + 2 = "
            f"{floor:.3f} (Section 4.3, observation (a))"
        )
    return 1 + (2 * alpha / beta_l + 2) / (burst_gap - floor)


def min_burst_gap(alpha: int, beta_l: int) -> float:
    """The smallest usable burst gap ``beta_h/beta_l > alpha/beta_l + 2``
    (Section 4.3, observation (a))."""
    return alpha / beta_l + 2


def incubation_bound_seconds(
    rho: int, n: int, alpha: int, beta_th: int, attack_rate: Number
) -> Fraction:
    """Theorem 7's bound on the incubation period of a flow whose average
    rate exceeds ``attack_rate > rho/(n+1)``::

        t_incb < (alpha + 2 beta_TH) / (R_atk - rho/(n+1))
    """
    _check_counters(n)
    attack = Fraction(attack_rate)
    margin = attack - Fraction(rho, n + 1)
    if margin <= 0:
        raise ValueError(
            f"attack rate {attack_rate} must exceed R_NFN = rho/(n+1) = "
            f"{Fraction(rho, n + 1)}"
        )
    return Fraction(alpha + 2 * beta_th) / margin


def min_counters_for_rate(rho: int, attack_rate: Number) -> int:
    """Minimum number of counters guaranteeing detection of flows faster
    than ``attack_rate``: the smallest integer ``n`` with
    ``rho/(n+1) < attack_rate`` (Section 4.4, ``n > rho/R_atk - 1``)."""
    attack = Fraction(attack_rate)
    if attack <= 0:
        raise ValueError(f"attack rate must be positive, got {attack_rate}")
    # Smallest n with n + 1 > rho / attack.
    n = math.floor(Fraction(rho) / attack)
    if n >= 1 and Fraction(rho, n + 1) >= attack:
        n += 1
    return max(n, 2)


def min_t_upincb(gamma_h: int, gamma_l: int, alpha: int, beta_l: int) -> float:
    """Equation (12): the smallest incubation-period budget for which the
    Appendix-A design problem is solvable::

        t_upincb >= 2 (alpha + beta_l) / (gamma_h + gamma_l - 2 sqrt(gamma_h gamma_l))
    """
    if gamma_h <= gamma_l:
        raise ValueError(
            f"gamma_h={gamma_h} must exceed gamma_l={gamma_l} (Section 4.3)"
        )
    denominator = gamma_h + gamma_l - 2 * math.sqrt(gamma_h * gamma_l)
    return 2 * (alpha + beta_l) / denominator


def solvable(
    gamma_h: int,
    gamma_l: int,
    alpha: int,
    beta_l: int,
    t_upincb_seconds: float,
) -> bool:
    """Whether the Appendix-A inequality set admits a solution (Eq. 11/12
    plus ``gamma_h > gamma_l``)."""
    if gamma_h <= gamma_l:
        return False
    m = gamma_h + gamma_l - 2 * (alpha + beta_l) / t_upincb_seconds
    return m >= 0 and m * m >= 4 * gamma_h * gamma_l


def _check_counters(n: int) -> None:
    if n < 2:
        raise ValueError(f"EARDet needs at least 2 counters, got n={n}")
