"""EARDet: the paper's core contribution (Algorithm 1).

EARDet is a deterministic one-pass streaming detector built on the
Misra-Gries frequent-items algorithm, modified in three ways (Section 3.2):

1. a **blacklist** of recently detected large flows, so a counter stops
   growing once past the threshold and detection work is not repeated;
2. a **counter threshold** ``beta_TH``: a flow is declared large the moment
   its counter exceeds it, which (with the blacklist) confines every
   counter to ``beta_TH + alpha``;
3. **virtual traffic** filling unused link bandwidth, so the detector
   measures flows against the link capacity over *arbitrary* time windows
   rather than against the packet mix.

With ``n`` counters on a link of capacity ``rho`` the resulting guarantees
(Theorems 4 and 6) hold for any input whatsoever:

- *no-FNl*: every flow violating ``TH_h(t) = gamma_h t + beta_h`` with
  ``gamma_h >= rho/(n+1)``, ``beta_h >= alpha + 2 beta_TH`` is caught,
- *no-FPs*: no flow complying with ``TH_l(t) = gamma_l t + beta_l`` with
  ``beta_l < beta_TH``, ``gamma_l < R_NFP`` is ever caught.

The implementation keeps all arithmetic exact (integer bytes / nanoseconds
/ byte-nanoseconds), so those guarantees are testable as hard assertions;
see ``tests/test_properties_eardet.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..detectors.base import Detector
from ..model.packet import FlowId, Packet
from ..model.units import NS_PER_S
from .blacklist import Blacklist
from .config import EARDetConfig
from .counters import CounterStore, HeapCounterStore
from .virtual import Carryover, apply_virtual_traffic, apply_virtual_traffic_reference


class ReconfigurationError(ValueError):
    """A snapshot cannot be adapted to a new configuration.

    The config-dependent fields inside an EARDet snapshot are the counter
    store's embedded capacity and the counter-value envelope
    ``[1, beta_TH + alpha]``; adapting fails exactly when the snapshot
    holds more live counters than the new configuration's ``n`` can carry
    (shrinking below occupancy would have to *drop* counter state, which
    is never exact)."""


def reconfigure_state(
    state: Dict[str, object], config: EARDetConfig
) -> Dict[str, object]:
    """Adapt a :meth:`EARDet.snapshot` taken under one configuration for
    restore into a detector built with ``config``.

    Almost everything in a snapshot is config-independent — counters are
    ``(fid, bytes)`` pairs, the carryover is an exact byte-nanosecond
    numerator, the blacklist is a fid set.  Two fields depend on the
    configuration and get rewritten here (the hot-reconfiguration path:
    retune at a batch boundary, adapt the frozen snapshot, restore into a
    detector built with the new config):

    - the store's embedded ``capacity``, which
      :meth:`~repro.core.counters.CounterStore.restore` checks strictly,
      becomes ``config.n``;
    - counter *values* live in ``[1, beta_TH + alpha]`` under the config
      that produced them.  When the retune shrinks ``beta_TH``, a
      carried value may exceed the new envelope; such values are clamped
      down to the new ceiling ``config.beta_th + config.alpha``.  The
      clamp is minimal on purpose: values already inside the new
      envelope are carried bit-for-bit (so a rollback's same-config
      round trip perturbs nothing — counter values feed the
      Misra-Gries ``min_value`` decrement, where any gratuitous rewrite
      would shift later detection times), and a clamped value stays
      above the new ``beta_th``, so the flow is still detected on its
      next counted packet.  The clamp is deterministic, so replay of
      the epoch transition stays bit-identical.

    Returns a new state dict; the input is not mutated.  Raises
    :class:`ReconfigurationError` when the snapshot's live occupancy
    exceeds ``config.n``.
    """
    store_state = state.get("store")
    if not isinstance(store_state, dict):
        raise ReconfigurationError(
            f"snapshot has no store section to adapt: {type(store_state).__name__}"
        )
    entries = store_state.get("entries", [])
    occupancy = len(entries)  # type: ignore[arg-type]
    if occupancy > config.n:
        raise ReconfigurationError(
            f"snapshot holds {occupancy} live counters but the new "
            f"configuration provides only n={config.n}; shrinking below "
            "occupancy would drop exact state (retry after decay or with "
            "a larger n)"
        )
    adapted = dict(state)
    ceiling = config.beta_th + config.alpha
    adapted["store"] = {
        **store_state,
        "capacity": config.n,
        "entries": [
            (fid, min(value, ceiling)) for fid, value in entries
        ],
    }
    return adapted


@dataclass
class EARDetStats:
    """Operational counters for diagnostics and ablation benchmarks."""

    packets: int = 0
    blacklisted_packets: int = 0
    virtual_bytes: int = 0
    oversubscribed_gaps: int = 0
    detections: int = 0
    blacklist_prunes: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Serializable field dict."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def restore(self, state: Dict[str, int]) -> None:
        """Restore fields from a :meth:`snapshot` (unknown keys rejected)."""
        for name, value in state.items():
            if name not in self.__dataclass_fields__:
                raise ValueError(f"unknown stats field {name!r}")
            setattr(self, name, value)


class EARDet(Detector):
    """The EARDet detector.

    Parameters
    ----------
    config:
        An :class:`~repro.core.config.EARDetConfig`, typically produced by
        :func:`repro.core.config.engineer`.
    store_factory:
        Counter-store implementation; the default is the optimized
        floating-ground heap store.  Pass
        :class:`~repro.core.counters.ReferenceCounterStore` for the O(n)
        behavioural oracle.
    reference_virtual:
        When True, process virtual traffic with the unit-by-unit reference
        loop instead of the exactly-equivalent fast path (for differential
        testing; dramatically slower on idle links).
    blacklisted_consumes_link:
        The paper's analysis assumes detected flows are *cut off
        immediately* (Section 4), i.e. their packets stop consuming link
        bandwidth.  With the default ``False``, bytes of blacklisted flows
        are accordingly treated as idle bandwidth (they become virtual
        traffic).  Set True to model a monitor-only deployment where
        detected flows keep occupying the wire.
    """

    name = "eardet"

    def __init__(
        self,
        config: EARDetConfig,
        store_factory: Callable[[int], CounterStore] = HeapCounterStore,
        reference_virtual: bool = False,
        blacklisted_consumes_link: bool = False,
    ):
        super().__init__()
        self.config = config
        self._store: CounterStore = store_factory(config.n)
        self._blacklist = Blacklist()
        self._carryover = Carryover()
        self._apply_virtual = (
            apply_virtual_traffic_reference
            if reference_virtual
            else apply_virtual_traffic
        )
        self._blacklisted_consumes_link = blacklisted_consumes_link
        # Time and size of the last packet that consumed link bandwidth,
        # used to compute each gap's idle volume (Algorithm 1 line 19).
        self._last_time = 0
        self._last_size = 0
        self._started = False
        self.stats = EARDetStats()

    # -- Algorithm 1 -------------------------------------------------------

    def _update(self, packet: Packet) -> bool:
        self.stats.packets += 1
        fid = packet.fid

        if fid in self._blacklist:
            if fid in self._store:
                self.stats.blacklisted_packets += 1
                if self._blacklisted_consumes_link:
                    self._fill_idle_bandwidth(packet.time)
                    self._consume_link(packet)
                return False
            # The counter decayed away: the flow leaves the local
            # blacklist (its detection remains recorded at the sink).
            self._blacklist.discard(fid)
            self.stats.blacklist_prunes += 1

        self._fill_idle_bandwidth(packet.time)
        self._consume_link(packet)
        self._update_counter(fid, packet.size)
        return self._detect(fid)

    def _fill_idle_bandwidth(self, now_ns: int) -> None:
        """Convert the idle bandwidth since the last counted packet into
        virtual traffic (Algorithm 1 lines 18-22)."""
        if not self._started:
            self._started = True
            self._last_time = now_ns
            return
        gap_scaled = self.config.rho * (now_ns - self._last_time)
        idle_scaled = gap_scaled - self._last_size * NS_PER_S
        if idle_scaled < 0:
            # The stream oversubscribes the link (only possible with
            # synthetic input); there is no idle bandwidth to fill.
            self.stats.oversubscribed_gaps += 1
            idle_scaled = 0
        volume = self._carryover.integerize(idle_scaled)
        if volume > 0:
            self.stats.virtual_bytes += volume
            self._apply_virtual(self._store, volume, self.config.virtual_unit)
        self._last_time = now_ns
        self._last_size = 0

    def _consume_link(self, packet: Packet) -> None:
        """Record that this packet's bytes occupy the wire, so the next
        gap's idle volume subtracts them."""
        if packet.time == self._last_time:
            self._last_size += packet.size
        else:
            self._last_time = packet.time
            self._last_size = packet.size
        self._started = True

    def _update_counter(self, fid: FlowId, size: int) -> None:
        """Misra-Gries update with byte weights (Algorithm 1 lines 10-17)."""
        store = self._store
        if fid in store:
            store.increment(fid, size)
        elif not store.is_full:
            store.insert(fid, size)
        else:
            decrement = min(size, store.min_value())
            store.decrement_all(decrement)
            leftover = size - decrement
            if leftover > 0:
                store.insert(fid, leftover)

    def _detect(self, fid: FlowId) -> bool:
        """Counter-threshold check plus blacklist upkeep (lines 21-22)."""
        store = self._store
        if fid in store and store.get(fid) > self.config.beta_th:
            self._blacklist.add(fid)
            self.stats.detections += 1
            # Keep the bounded-blacklist invariant |L| <= n by pruning
            # entries whose counters have decayed away (Section 3.3).
            stored = {stored_fid for stored_fid, _ in store.items()}
            self.stats.blacklist_prunes += self._blacklist.prune(stored)
            return True
        return False

    # -- introspection -----------------------------------------------------

    @property
    def counters(self) -> Dict[FlowId, int]:
        """Snapshot of the current non-zero counters (includes leftover
        virtual-flow counters)."""
        return self._store.as_dict()

    @property
    def counters_in_use(self) -> int:
        """Occupied counter-store slots (cheap; no dict materialization,
        unlike :attr:`counters` — telemetry polls this per batch)."""
        return len(self._store)

    @property
    def store_evictions(self) -> int:
        """Flows this detector's store has evicted via decrement-all
        (operational telemetry; see ``CounterStore.evictions``)."""
        return self._store.evictions

    @property
    def blacklist(self) -> Blacklist:
        """The bounded local blacklist."""
        return self._blacklist

    @property
    def carryover_numerator(self) -> int:
        """Current virtual-traffic carryover as the exact integer
        numerator over 10^9 (byte-nanosecond units), satisfying
        ``-NS_PER_S // 2 <= numerator < NS_PER_S // 2``.

        This is the primary API: it is the value the algorithm actually
        carries, snapshots losslessly, and compares exactly.  Use
        :attr:`carryover_bytes` only for display.
        """
        return self._carryover.remainder_scaled

    @property
    def carryover_bytes(self) -> float:
        """Current virtual-traffic carryover in fractional bytes.

        Display convenience only — the division by 10^9 goes through
        float and can lose precision.  Exact code must use
        :attr:`carryover_numerator`.
        """
        return self._carryover.remainder_bytes

    def counter_count(self) -> int:
        return self.config.n

    # -- checkpointing -----------------------------------------------------

    #: Version of the EARDet snapshot schema; bump on incompatible change.
    SNAPSHOT_FORMAT = 1

    def snapshot(self) -> Dict[str, object]:
        """Capture the complete detector state as plain Python data.

        The snapshot is *exact*: restoring it (into this or any other
        EARDet with the same configuration — even in a different process)
        and replaying the remaining packets produces detections, detection
        timestamps, stats and counter values identical to an uninterrupted
        run.  All captured values are integers, bools, strings or nested
        lists/tuples of those, so any lossless serializer preserves
        exactness.
        """
        return {
            "format": self.SNAPSHOT_FORMAT,
            "store": self._store.snapshot(),
            "blacklist": self._blacklist.snapshot(),
            "carryover": self._carryover.snapshot(),
            "last_time": self._last_time,
            "last_size": self._last_size,
            "started": self._started,
            "stats": self.stats.snapshot(),
            "sink": self.sink.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`snapshot`, replacing all current state.

        Also advances the process-global virtual-flow sequence past any
        virtual fid held in the snapshot, so a restore in a fresh process
        can never mint a "new" virtual flow that collides with a stored
        one.
        """
        from .virtual import ensure_virtual_sequence_above, is_virtual_fid

        fmt = state.get("format")
        if fmt != self.SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported EARDet snapshot format {fmt!r} "
                f"(this build reads format {self.SNAPSHOT_FORMAT})"
            )
        self._store.restore(state["store"])
        self._blacklist.restore(state["blacklist"])
        self._carryover.restore(state["carryover"])
        self._last_time = state["last_time"]
        self._last_size = state["last_size"]
        self._started = state["started"]
        self.stats.restore(state["stats"])
        self.sink.restore(state["sink"])
        for fid, _ in self._store.items():
            if is_virtual_fid(fid):
                ensure_virtual_sequence_above(fid[1])
        if self.checker is not None:
            # Restored state is a discontinuous jump (possibly backward in
            # time); the monitor's trackers must restart from it.
            self.checker.reset()

    def _reset_state(self) -> None:
        self._store.reset()
        self._blacklist.reset()
        self._carryover.reset()
        self._last_time = 0
        self._last_size = 0
        self._started = False
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"EARDet(n={self.config.n}, beta_th={self.config.beta_th}, "
            f"detected={len(self.sink)})"
        )
