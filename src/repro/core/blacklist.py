"""EARDet's bounded local blacklist (paper Section 3.3).

The blacklist stores recently identified large flows so their counters stop
being incremented once past the counter threshold.  To bound its size
against algorithmic-complexity attacks the paper prunes any blacklisted
flow that is *no longer stored in the counters*: removal cannot affect the
no-FNl / no-FPs guarantees because whether a flow is caught never depends
on other flows' behaviour, and a complete history of detections is kept by
the remote report sink (Figure 2), not by the detector.

:class:`Blacklist` implements the bounded local list; :class:`ReportSink`
models the remote server's complete copy of the detected set ``F`` together
with first-detection timestamps, which the evaluation metrics (incubation
period) need.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..model.packet import FlowId


def _canonical_fid_order(fid: FlowId) -> int:
    from ..detectors.hashing import canonical_key

    return canonical_key(fid)


class ReportSink:
    """The remote administrator's complete record of detected flows.

    Keeps every flow ever reported and the time of its *first* report —
    re-reports of the same flow (e.g. after blacklist pruning and
    re-detection) do not move the timestamp.
    """

    def __init__(self) -> None:
        self._first_detection: Dict[FlowId, int] = {}

    def report(self, fid: FlowId, time_ns: int) -> bool:
        """Record a detection; returns True if the flow is new to the sink."""
        if fid in self._first_detection:
            return False
        self._first_detection[fid] = time_ns
        return True

    def __contains__(self, fid: FlowId) -> bool:
        return fid in self._first_detection

    def __len__(self) -> int:
        return len(self._first_detection)

    def __iter__(self) -> Iterator[FlowId]:
        return iter(self._first_detection)

    def detection_time(self, fid: FlowId) -> Optional[int]:
        """First detection time (ns) of a flow, or None if never detected."""
        return self._first_detection.get(fid)

    def as_dict(self) -> Dict[FlowId, int]:
        """Snapshot of ``{fid: first detection time}``."""
        return dict(self._first_detection)

    def reset(self) -> None:
        self._first_detection.clear()

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> List[Tuple[FlowId, int]]:
        """Serializable ``(fid, first detection time)`` pairs in a
        deterministic order (by time, then canonical fid key)."""
        return sorted(
            self._first_detection.items(),
            key=lambda item: (item[1], _canonical_fid_order(item[0])),
        )

    def restore(self, state: List[Tuple[FlowId, int]]) -> None:
        """Replace the record with a :meth:`snapshot`'s contents."""
        self._first_detection = {
            (tuple(fid) if isinstance(fid, list) else fid): time_ns
            for fid, time_ns in state
        }

    def merge(self, other: "ReportSink") -> None:
        """Fold another sink's detections in, keeping the earliest first
        report of each flow (used to aggregate per-shard sinks)."""
        for fid, time_ns in other._first_detection.items():
            current = self._first_detection.get(fid)
            if current is None or time_ns < current:
                self._first_detection[fid] = time_ns


class Blacklist:
    """Bounded set of currently-blacklisted flow IDs.

    The detector adds a flow when its counter crosses the threshold and
    calls :meth:`prune` with the set of currently-stored flows; any
    blacklisted flow that lost its counter is dropped, so ``len(blacklist)``
    never exceeds the number of counters.
    """

    def __init__(self) -> None:
        self._flows: Set[FlowId] = set()

    def __contains__(self, fid: FlowId) -> bool:
        return fid in self._flows

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[FlowId]:
        return iter(self._flows)

    def add(self, fid: FlowId) -> None:
        """Blacklist a flow."""
        self._flows.add(fid)

    def discard(self, fid: FlowId) -> None:
        """Remove a flow if present."""
        self._flows.discard(fid)

    def prune(self, stored: Set[FlowId]) -> int:
        """Drop every blacklisted flow not in ``stored``; return the number
        pruned."""
        stale = self._flows - stored
        if stale:
            self._flows -= stale
        return len(stale)

    def reset(self) -> None:
        self._flows.clear()

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> List[FlowId]:
        """Serializable flow-ID list in deterministic (canonical-key)
        order."""
        return sorted(self._flows, key=_canonical_fid_order)

    def restore(self, state: List[FlowId]) -> None:
        """Replace the blacklist with a :meth:`snapshot`'s contents."""
        self._flows = {
            tuple(fid) if isinstance(fid, list) else fid for fid in state
        }
