"""EARDet core: the detector, its data structures, and the paper's theory."""

from .blacklist import Blacklist, ReportSink
from .config import (
    EARDetConfig,
    InfeasibleConfigError,
    beta_delta_bounds,
    engineer,
    feasible_counter_range,
)
from .counters import (
    CounterStore,
    CounterStoreError,
    HeapCounterStore,
    ReferenceCounterStore,
)
from .eardet import EARDet, EARDetStats
from .parallel import ParallelEARDet
from .virtual import (
    Carryover,
    apply_virtual_traffic,
    apply_virtual_traffic_reference,
    apply_virtual_unit,
    ensure_virtual_sequence_above,
    is_virtual_fid,
    iter_units,
)
from . import theory, window_bridge

__all__ = [
    "Blacklist",
    "Carryover",
    "CounterStore",
    "CounterStoreError",
    "EARDet",
    "EARDetConfig",
    "EARDetStats",
    "HeapCounterStore",
    "InfeasibleConfigError",
    "ParallelEARDet",
    "ReferenceCounterStore",
    "ReportSink",
    "apply_virtual_traffic",
    "apply_virtual_traffic_reference",
    "apply_virtual_unit",
    "beta_delta_bounds",
    "engineer",
    "ensure_virtual_sequence_above",
    "feasible_counter_range",
    "is_virtual_fid",
    "iter_units",
    "theory",
    "window_bridge",
]
