"""Algorithm-level parallel EARDet (paper Section 3.3, "Parallelizing
EARDet").

The paper notes a common way to cut per-packet processing time: "randomly
distribute the flows (thus the workload) among multiple copies of
EARDet".  :class:`ParallelEARDet` implements that sharding: flows are
hashed onto ``shards`` independent EARDet instances, each holding its own
counters and blacklist.

**Guarantee preservation.**  Each shard is configured with the *full*
link capacity ``rho``.  A shard observes a sub-stream of the link's
traffic, so the sub-stream's volume over any interval is also bounded by
``rho * t`` — the only property Theorems 4 and 6 need — and every flow's
packets all land on the same shard.  Hence the per-shard no-FNl and
no-FPs guarantees carry over verbatim to the ensemble: the union of the
shards' reports is exact outside the same ambiguity region as a single
EARDet with the shard's parameters.  (What parallelization buys is
per-instance *packet rate*, roughly ``1/shards`` of the link's, not
memory: total state is ``shards * n`` counters.  Each shard fills its
own idle bandwidth as if it watched the whole link, which only makes its
decrements more aggressive — again safe for both guarantees, since
virtual traffic never incriminates anyone and cancellation is still
bounded by ``rho * t`` per shard.)

The property tests in ``tests/test_parallel.py`` assert exactness of the
ensemble on adversarial traffic, mirroring the single-instance tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..detectors.base import Detector
from ..detectors.hashing import StageHash
from ..model.packet import FlowId, Packet
from .config import EARDetConfig
from .eardet import EARDet


class ParallelEARDet(Detector):
    """An ensemble of EARDet instances sharded by flow hash.

    Parameters
    ----------
    config:
        Configuration applied to every shard (including the full link
        capacity ``rho``; see the module docstring for why).
    shards:
        Number of EARDet copies.
    seed:
        Seed of the flow-to-shard hash.
    eardet_factory:
        Override for constructing each shard (e.g. to pass
        ``store_factory``); receives the config, returns an EARDet.
    """

    name = "eardet-parallel"

    def __init__(
        self,
        config: EARDetConfig,
        shards: int,
        seed: int = 0,
        eardet_factory: Callable[[EARDetConfig], EARDet] = EARDet,
    ):
        super().__init__()
        if shards < 1:
            raise ValueError(f"need at least 1 shard, got {shards}")
        self.config = config
        self.shards: List[EARDet] = [eardet_factory(config) for _ in range(shards)]
        self._hash = StageHash(seed=seed, buckets=shards)

    def shard_of(self, fid: FlowId) -> int:
        """Which shard a flow is assigned to."""
        return self._hash(fid)

    def _update(self, packet: Packet) -> bool:
        shard = self.shards[self._hash(packet.fid)]
        shard.observe(packet)
        return shard.is_detected(packet.fid)

    def _reset_state(self) -> None:
        for shard in self.shards:
            shard.reset()

    # -- checkpointing -----------------------------------------------------

    #: Version of the ensemble snapshot schema.
    SNAPSHOT_FORMAT = 1

    def snapshot(self) -> Dict[str, object]:
        """Exact serializable state: per-shard snapshots plus the flow
        hash's identity, so a restore can verify packets will route to the
        same shards."""
        return {
            "format": self.SNAPSHOT_FORMAT,
            "seed": self._hash.seed,
            "shards": [shard.snapshot() for shard in self.shards],
            "sink": self.sink.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`snapshot` into an identically-shaped ensemble."""
        fmt = state.get("format")
        if fmt != self.SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported ParallelEARDet snapshot format {fmt!r}"
            )
        if state["seed"] != self._hash.seed:
            raise ValueError(
                f"snapshot hash seed {state['seed']} != configured seed "
                f"{self._hash.seed}; flows would route to different shards"
            )
        shard_states = state["shards"]
        if len(shard_states) != len(self.shards):
            raise ValueError(
                f"snapshot has {len(shard_states)} shards, detector has "
                f"{len(self.shards)}"
            )
        for shard, shard_state in zip(self.shards, shard_states):
            shard.restore(shard_state)
        self.sink.restore(state["sink"])

    def counter_count(self) -> int:
        return self.config.n * len(self.shards)

    def shard_loads(self) -> Dict[int, int]:
        """Packets processed per shard (the parallel speedup driver)."""
        return {
            index: shard.stats.packets for index, shard in enumerate(self.shards)
        }

    def __repr__(self) -> str:
        return (
            f"ParallelEARDet(shards={len(self.shards)}, n={self.config.n}, "
            f"detected={len(self.sink)})"
        )
