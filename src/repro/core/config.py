"""EARDet configuration and the Appendix-A parameter-engineering solver.

A detector instance is fully determined by four primitive parameters —
link capacity ``rho``, counter count ``n``, counter threshold ``beta_TH``
and maximum packet size ``alpha`` — from which all of the paper's
guarantees follow (Section 4):

- every flow violating ``TH_h(t) = gamma_h t + beta_h`` with
  ``gamma_h >= rho/(n+1)`` and ``beta_h >= alpha + 2 beta_TH`` is caught
  (Theorem 4),
- no flow complying with ``TH_l(t) = gamma_l t + beta_l`` with
  ``beta_l < beta_TH`` and ``gamma_l < R_NFP`` is ever caught (Theorem 6).

:func:`engineer` solves the designer's inverse problem from Section 4.6 /
Appendix A: given the link, the small-flow profile to protect
(``gamma_l, beta_l``), the attack rate to catch (``gamma_h``) and an
incubation-period budget, produce the cheapest ``(n, beta_delta)`` pair —
the paper's Equation (10) choice of minimum ``n`` and minimum
``beta_delta``.  The solver reproduces the paper's worked example
(Appendix A) and Table 5's per-dataset parameters exactly; see
``tests/test_config.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional

from ..model.packet import MAX_PACKET_SIZE
from ..model.thresholds import ThresholdFunction
from . import theory


class InfeasibleConfigError(ValueError):
    """Raised when no (n, beta_delta) pair satisfies the requirements.

    Beyond the human-readable message, the error carries the *binding
    constraint* in structured form so machine callers (the adaptive
    control plane feeding :func:`engineer` from live telemetry scrapes)
    can report which inequality failed and by how much instead of
    pattern-matching message text:

    - :attr:`constraint` — stable slug naming the failed inequality
      (``"gamma-ordering"``, ``"budget-positive"``, ``"eq12-incubation"``,
      ``"eq10-margin"``, ``"eq7-headroom"``, ``"eq9-empty"``).
    - :attr:`observed` — the offending value as supplied/derived.
    - :attr:`bound` — the limit the constraint required.
    - :attr:`shortfall` — how far ``observed`` is on the wrong side of
      ``bound`` (always >= 0; the "by how much").
    """

    def __init__(
        self,
        message: str,
        constraint: str = "unspecified",
        observed: Optional[float] = None,
        bound: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.constraint = constraint
        self.observed = observed
        self.bound = bound

    @property
    def shortfall(self) -> Optional[float]:
        """Distance from the bound, when both sides are known."""
        if self.observed is None or self.bound is None:
            return None
        return abs(self.observed - self.bound)

    def as_dict(self) -> Dict[str, object]:
        """Machine-consumable form (incident payloads, ``--json``)."""
        return {
            "message": str(self),
            "constraint": self.constraint,
            "observed": self.observed,
            "bound": self.bound,
            "shortfall": self.shortfall,
        }


@dataclass(frozen=True)
class EARDetConfig:
    """Complete parameterization of one EARDet instance.

    Attributes
    ----------
    rho:
        Link capacity in bytes/second.
    n:
        Number of counters.
    beta_th:
        Counter threshold in bytes; a flow whose counter exceeds this is
        declared large.
    alpha:
        Maximum packet size in bytes (1518 throughout the paper).
    beta_l, gamma_l:
        The low-bandwidth threshold this instance was engineered to
        protect, recorded for reporting; ``beta_l`` also determines
        ``beta_delta = beta_th - beta_l`` and hence :attr:`rnfp`.
    virtual_unit:
        Size of one virtual flow in bytes.  Defaults to ``beta_th`` — the
        paper's maximum (and cheapest) legal unit size.
    """

    rho: int
    n: int
    beta_th: int
    alpha: int = MAX_PACKET_SIZE
    beta_l: int = 0
    gamma_l: int = 0
    virtual_unit: Optional[int] = field(default=None)

    def __post_init__(self) -> None:
        if self.rho <= 0:
            raise ValueError(f"link capacity must be positive, got {self.rho}")
        if self.n < 2:
            raise ValueError(f"need at least 2 counters, got n={self.n}")
        if self.beta_th <= 0:
            raise ValueError(f"beta_th must be positive, got {self.beta_th}")
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if not 0 <= self.beta_l < self.beta_th:
            raise ValueError(
                f"beta_l={self.beta_l} must satisfy 0 <= beta_l < "
                f"beta_th={self.beta_th} (Theorem 6)"
            )
        unit = self.virtual_unit
        if unit is None:
            object.__setattr__(self, "virtual_unit", self.beta_th)
        elif not 0 < unit <= self.beta_th:
            raise ValueError(
                f"virtual unit {unit} must be in (0, beta_th={self.beta_th}] "
                "to avoid false alarms on virtual flows (Section 3.3)"
            )

    # -- guarantees ---------------------------------------------------------

    @property
    def rnfn(self) -> Fraction:
        """No-FNl rate: flows at ``gamma_h >= rho/(n+1)`` are always caught."""
        return theory.rnfn(self.rho, self.n)

    @property
    def beta_h(self) -> int:
        """No-FNl burst: ``alpha + 2 beta_th`` (Theorem 4)."""
        return theory.beta_h_guarantee(self.alpha, self.beta_th)

    @property
    def beta_delta(self) -> int:
        """``beta_th - beta_l`` — the counter headroom above the protected
        burst size."""
        return self.beta_th - self.beta_l

    @property
    def rnfp(self) -> Fraction:
        """No-FPs rate for the recorded ``beta_l`` (Theorem 6)."""
        return theory.rnfp(self.rho, self.n, self.alpha, self.beta_l, self.beta_delta)

    @property
    def high_threshold(self) -> ThresholdFunction:
        """The guaranteed-detection threshold ``TH_h`` of this instance.

        ``gamma_h`` is the smallest integer rate >= ``rho/(n+1)``, so the
        returned integer threshold is within the guarantee.
        """
        return ThresholdFunction(gamma=math.ceil(self.rnfn), beta=self.beta_h)

    @property
    def low_threshold(self) -> ThresholdFunction:
        """The protected threshold ``TH_l`` recorded at engineering time."""
        return ThresholdFunction(gamma=self.gamma_l, beta=self.beta_l)

    def incubation_bound_seconds(self, attack_rate) -> Fraction:
        """Theorem 7's incubation bound for a given attack rate."""
        return theory.incubation_bound_seconds(
            self.rho, self.n, self.alpha, self.beta_th, attack_rate
        )

    def describe(self) -> str:
        """Multi-line human-readable summary (Table 5 row style)."""
        lines = [
            f"EARDet(n={self.n}, beta_th={self.beta_th}B, "
            f"rho={self.rho}B/s, alpha={self.alpha}B)",
            f"  no-FNl: catches gamma_h >= {float(self.rnfn):.1f}B/s, "
            f"beta_h >= {self.beta_h}B",
        ]
        if self.beta_l:
            lines.append(
                f"  no-FPs: protects gamma_l < {float(self.rnfp):.1f}B/s, "
                f"beta_l = {self.beta_l}B"
            )
        return "\n".join(lines)


def engineer(
    rho: int,
    gamma_l: int,
    beta_l: int,
    gamma_h: int,
    t_upincb_seconds: float,
    alpha: int = MAX_PACKET_SIZE,
) -> EARDetConfig:
    """Solve the Appendix-A design problem.

    Given the link capacity, the small-flow profile ``(gamma_l, beta_l)``
    to protect, the attack rate ``gamma_h`` to catch, and an upper bound on
    the incubation period, compute the cheapest configuration: minimum
    counter count ``n = n_min`` (Eq. 9) and minimum headroom
    ``beta_delta`` (Eq. 10).

    Raises :class:`InfeasibleConfigError` when the inequality set has no
    solution (Eq. 11/12), with a message that reports the smallest feasible
    ``t_upincb`` so callers can relax their requirement.
    """
    if gamma_h <= gamma_l:
        raise InfeasibleConfigError(
            f"gamma_h={gamma_h} must exceed gamma_l={gamma_l} (Section 4.3)",
            constraint="gamma-ordering",
            observed=float(gamma_h),
            bound=float(gamma_l),
        )
    if t_upincb_seconds <= 0:
        raise InfeasibleConfigError(
            f"t_upincb must be positive, got {t_upincb_seconds}",
            constraint="budget-positive",
            observed=float(t_upincb_seconds),
            bound=0.0,
        )
    m = gamma_h + gamma_l - 2 * (alpha + beta_l) / t_upincb_seconds
    discriminant = m * m - 4 * gamma_h * gamma_l
    if m < 0 or discriminant < 0:
        minimum = theory.min_t_upincb(gamma_h, gamma_l, alpha, beta_l)
        raise InfeasibleConfigError(
            f"no (n, beta_delta) satisfies t_upincb={t_upincb_seconds}s; "
            f"Eq. (12) requires t_upincb >= {minimum:.4f}s for these "
            "thresholds",
            constraint="eq12-incubation",
            observed=float(t_upincb_seconds),
            bound=float(minimum),
        )
    root = math.sqrt(discriminant)
    n_min = math.ceil(rho / ((m + root) / 2)) - 1
    n_max = math.floor(rho / ((m - root) / 2)) - 1 if m > root else None
    n = max(n_min, 2)

    # Eq. (10): beta_delta_min = gamma_l (alpha + beta_l) / (rho/(n+1) - gamma_l),
    # taken strictly (Theorem 6 needs gamma_l < R_NFP), hence floor + 1.
    margin = Fraction(rho, n + 1) - gamma_l
    if margin <= 0:
        raise InfeasibleConfigError(
            f"n={n} counters put R_NFN={float(Fraction(rho, n + 1)):.1f}B/s "
            f"at or below gamma_l={gamma_l}B/s; the no-FPs bound is empty",
            constraint="eq10-margin",
            observed=float(Fraction(rho, n + 1)),
            bound=float(gamma_l),
        )
    beta_delta = math.floor(Fraction(gamma_l * (alpha + beta_l)) / margin) + 1

    # Sanity: the upper branch of Eq. (7) must admit this beta_delta.
    upper = (t_upincb_seconds * (gamma_h - rho / (n + 1)) - 2 * (alpha + beta_l)) / 2
    if beta_delta > upper:
        raise InfeasibleConfigError(
            f"beta_delta={beta_delta} exceeds the incubation-period budget's "
            f"allowance {upper:.1f} at n={n} (Eq. 7); "
            f"n_max={n_max}, try a larger t_upincb or gamma_h",
            constraint="eq7-headroom",
            observed=float(beta_delta),
            bound=float(upper),
        )
    return EARDetConfig(
        rho=rho,
        n=n,
        beta_th=beta_l + beta_delta,
        alpha=alpha,
        beta_l=beta_l,
        gamma_l=gamma_l,
    )


def feasible_counter_range(
    rho: int,
    gamma_l: int,
    beta_l: int,
    gamma_h: int,
    t_upincb_seconds: float,
    alpha: int = MAX_PACKET_SIZE,
):
    """The ``[n_min, n_max]`` range of Eq. (9), for exploring the solution
    space (Figure 8).  Returns ``(n_min, n_max)``; raises
    :class:`InfeasibleConfigError` when empty."""
    m = gamma_h + gamma_l - 2 * (alpha + beta_l) / t_upincb_seconds
    discriminant = m * m - 4 * gamma_h * gamma_l
    if m < 0 or discriminant < 0:
        raise InfeasibleConfigError(
            "Eq. (9) has no solution; see engineer()",
            constraint="eq9-empty",
            observed=float(min(m, discriminant)),
            bound=0.0,
        )
    root = math.sqrt(discriminant)
    n_min = math.ceil(rho / ((m + root) / 2)) - 1
    n_max = math.floor(rho / ((m - root) / 2)) - 1
    return max(n_min, 2), n_max


def beta_delta_bounds(
    n: int,
    rho: int,
    gamma_l: int,
    beta_l: int,
    gamma_h: int,
    t_upincb_seconds: float,
    alpha: int = MAX_PACKET_SIZE,
):
    """Eq. (7)'s lower and upper bounds on ``beta_delta`` at a given ``n``
    (the two curves of Figure 8).  Returns ``(lower, upper)`` as floats;
    the pair is empty (lower > upper) outside the feasible ``n`` range."""
    margin = rho / (n + 1) - gamma_l
    if margin <= 0:
        raise InfeasibleConfigError(
            f"n={n} puts R_NFN at or below gamma_l; no beta_delta works",
            constraint="eq10-margin",
            observed=rho / (n + 1),
            bound=float(gamma_l),
        )
    lower = gamma_l * (alpha + beta_l) / margin
    upper = (t_upincb_seconds * (gamma_h - rho / (n + 1)) - 2 * (alpha + beta_l)) / 2
    return lower, upper
