"""Virtual-traffic accounting for EARDet (paper Section 3.2/3.3).

The large-flow problem — unlike the frequent-items problem — must account
for *idle link time*: a flow's share of the link matters relative to the
link capacity, not just relative to other traffic.  EARDet handles this by
virtually filling unused bandwidth with **virtual traffic**, divided into
**virtual flows** (units) small enough to comply with the low-bandwidth
threshold so they never trigger alarms themselves.

Three pieces live here:

- :class:`Carryover` — the paper's exact integerization of fractional
  virtual-traffic sizes.  Idle bandwidth ``rho * t_idle`` is generally not
  a whole number of bytes; the carryover field keeps the uncounted
  remainder in exact byte-nanosecond units so the adjusted sizes differ
  from the true idle volume by less than one byte over *any* interval.
- :func:`apply_virtual_traffic_reference` — the executable specification:
  feed the virtual volume to the counter store one unit at a time, each
  unit a brand-new flow, exactly as Algorithm 1 lines 18-22 describe.
- :func:`apply_virtual_traffic` — an exactly-equivalent fast path.  It
  exploits the structure of unit processing (fill empty slots / bulk
  decrements while the minimum exceeds the unit size / the periodic regime
  once the store drains) so that long idle periods cost O(n) work rather
  than O(idle volume / unit size).  Property tests verify equivalence with
  the reference on randomized states.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..model.units import NS_PER_S
from .counters import CounterStore

#: Flow-ID prefix for virtual flows.  Each virtual unit gets a fresh ID so
#: it is never treated as a stored flow on a later unit.
_VIRTUAL_PREFIX = "__virtual__"

#: Next virtual-flow index.  A plain module-level int (not itertools.count)
#: so checkpoint restore can advance it past indices already stored in a
#: snapshot taken by an earlier process — see
#: :func:`ensure_virtual_sequence_above`.
_next_virtual_index = 0


def _fresh_virtual_fid() -> tuple:
    """A flow ID no real flow can collide with, unique per unit."""
    global _next_virtual_index
    index = _next_virtual_index
    _next_virtual_index += 1
    return (_VIRTUAL_PREFIX, index)


def is_virtual_fid(fid: Hashable) -> bool:
    """Whether a flow ID was minted by :func:`_fresh_virtual_fid`."""
    return (
        isinstance(fid, tuple) and len(fid) == 2 and fid[0] == _VIRTUAL_PREFIX
    )


def ensure_virtual_sequence_above(index: int) -> None:
    """Guarantee that future virtual fids use indices strictly above
    ``index``.

    Restoring a snapshot in a fresh process would otherwise reset the
    sequence to zero while the restored counter store still holds virtual
    fids with low indices — a later "fresh" unit could collide with a
    stored one and corrupt the Misra-Gries update.  Called by
    :meth:`repro.core.eardet.EARDet.restore`.
    """
    global _next_virtual_index
    if index >= _next_virtual_index:
        _next_virtual_index = index + 1


class Carryover:
    """Exact integerization of fractional virtual-traffic volumes.

    The true idle volume between packets is ``rho * t_idle - w_prev`` bytes
    with ``rho * t_idle`` generally fractional.  We track volumes as exact
    integers in byte-nanoseconds (numerator over 10^9) and emit integer
    byte amounts, keeping the running remainder ``co`` in scaled units with
    ``-0.5 <= co/NS < 0.5`` — the paper's invariant, achieved by rounding
    half-up on the scaled value.

    Over any sequence of emissions the total emitted differs from the total
    true volume by less than one byte (Section 3.3, "Counter
    implementation").
    """

    __slots__ = ("remainder_scaled",)

    def __init__(self) -> None:
        #: uncounted volume in byte-ns units; invariant -NS/2 <= r < NS/2.
        self.remainder_scaled = 0

    @property
    def remainder_bytes(self) -> float:
        """Current carryover in fractional bytes (for inspection)."""
        return self.remainder_scaled / NS_PER_S

    def integerize(self, volume_scaled: int) -> int:
        """Fold a scaled (byte-ns) volume in; return whole bytes to emit.

        ``volume_scaled`` must be >= 0.  The returned byte count is
        ``round(volume + carryover)`` (half-up), and the new carryover is
        the rounding error.
        """
        if volume_scaled < 0:
            raise ValueError(f"negative virtual volume {volume_scaled}")
        total = self.remainder_scaled + volume_scaled
        # Round half-up: floor((total + NS/2) / NS).
        emitted = (total + NS_PER_S // 2) // NS_PER_S
        self.remainder_scaled = total - emitted * NS_PER_S
        return emitted

    def reset(self) -> None:
        self.remainder_scaled = 0

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> int:
        """The exact scaled remainder; an int, so serialization is lossless."""
        return self.remainder_scaled

    def restore(self, state: int) -> None:
        """Restore a remainder produced by :meth:`snapshot`."""
        if not isinstance(state, int):
            raise TypeError(f"carryover snapshot must be an int, got {state!r}")
        self.remainder_scaled = state


def iter_units(volume: int, unit_size: int) -> Iterator[int]:
    """Split a byte volume into units of ``unit_size`` plus a final partial
    unit, the paper's division of virtual traffic into virtual flows."""
    if unit_size <= 0:
        raise ValueError(f"unit size must be positive, got {unit_size}")
    full, partial = divmod(volume, unit_size)
    for _ in range(full):
        yield unit_size
    if partial:
        yield partial


def apply_virtual_unit(store: CounterStore, unit: int) -> None:
    """Process one virtual unit as a brand-new flow (Algorithm 1, lines
    10-17 applied to a fresh flow ID)."""
    if unit <= 0:
        return
    if not store.is_full:
        store.insert(_fresh_virtual_fid(), unit)
        return
    decrement = min(unit, store.min_value())
    store.decrement_all(decrement)
    leftover = unit - decrement
    if leftover > 0:
        # At least one counter hit zero (decrement == old minimum), so a
        # slot is free for the unit's remainder.
        store.insert(_fresh_virtual_fid(), leftover)


def apply_virtual_traffic_reference(
    store: CounterStore, volume: int, unit_size: int
) -> None:
    """Executable specification: process every unit individually."""
    for unit in iter_units(volume, unit_size):
        apply_virtual_unit(store, unit)


def _state_key(store: CounterStore):
    """A canonical snapshot of the store for cycle detection.

    Virtual flows are interchangeable (each has a fresh ID that is never
    referenced again), so they contribute only their value multiset; real
    flows contribute (fid, value) pairs.  Two stores with equal keys
    evolve identically under further virtual traffic.
    """
    virtual_values = []
    real_entries = []
    for fid, value in store.items():
        if is_virtual_fid(fid):
            virtual_values.append(value)
        else:
            real_entries.append((fid, value))
    return tuple(sorted(virtual_values)), frozenset(real_entries)


def apply_virtual_traffic(
    store: CounterStore, volume: int, unit_size: int
) -> None:
    """Fast path, exactly equivalent to the reference implementation.

    Four accelerations, each a closed form of a run of identical unit
    steps:

    1. *Periodic regime*: from an empty store, every ``(n + 1)`` full units
       return the store to empty (n fills then one decrement that clears
       them all), so the remaining volume can be reduced modulo
       ``(n + 1) * unit_size`` before simulating the final partial cycle.
    2. *Bulk decrement*: while the store is full and its minimum exceeds
       the unit size, each full unit decrements everything by exactly
       ``unit_size`` and stores nothing; a whole run of such units is a
       single ``decrement_all``.
    3. *Cycle detection*: from a non-empty store the evict/insert
       alternation may never drain the store (e.g. a lone real counter
       that keeps being replaced), but the dynamics over the finite state
       space are eventually periodic; when the exact state (virtual value
       multiset + real (fid, value) pairs) recurs, the volume consumed in
       between is one period and the remaining volume reduces modulo it.
       This bounds the work for arbitrarily long idle gaps.
    4. Everything else (fills, decrements that evict) is simulated
       step-by-step.
    """
    if unit_size <= 0:
        raise ValueError(f"unit size must be positive, got {unit_size}")
    if volume < 0:
        raise ValueError(f"negative virtual volume {volume}")
    n = store.capacity
    cycle = (n + 1) * unit_size
    # Cycle detection pays off only for long idle periods.
    track_cycles = volume > 2 * cycle
    seen = {} if track_cycles else None
    while volume > 0:
        if track_cycles and not store.is_empty:
            key = _state_key(store)
            previous_volume = seen.get(key)
            if previous_volume is not None:
                period = previous_volume - volume
                if period > 0 and volume >= period:
                    volume %= period
                    seen = {}
                    track_cycles = False
                    continue
            elif len(seen) < 65536:
                seen[key] = volume
            else:
                # Pathologically long transient: stop paying for snapshots
                # and fall back to plain stepping.
                seen = {}
                track_cycles = False
        if store.is_empty:
            volume %= cycle
            # Final partial cycle: fill up to n slots with full units...
            full_units = min(volume // unit_size, n)
            for _ in range(full_units):
                store.insert(_fresh_virtual_fid(), unit_size)
            volume -= full_units * unit_size
            # ... then place or absorb the remainder (< unit_size, or a
            # full unit arriving with every slot taken).
            if volume > 0:
                apply_virtual_unit(store, min(volume, unit_size))
            return
        if not store.is_full:
            unit = min(unit_size, volume)
            store.insert(_fresh_virtual_fid(), unit)
            volume -= unit
            continue
        minimum = store.min_value()
        if minimum > unit_size and volume > unit_size:
            # Bulk-decrement run: k full units, each reducing every counter
            # by unit_size without evicting.  Stop one step before the
            # minimum would reach the unit size or the volume runs out.
            k = min((minimum - 1) // unit_size, volume // unit_size)
            # k * unit_size <= minimum - 1, so no counter reaches zero and
            # the store stays full throughout the run.
            store.decrement_all(k * unit_size)
            volume -= k * unit_size
            continue
        unit = min(unit_size, volume)
        apply_virtual_unit(store, unit)
        volume -= unit
