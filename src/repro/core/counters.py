"""Counter stores for EARDet.

EARDet (Algorithm 1 in the paper) keeps at most ``n`` non-zero counters in
an associative array indexed by flow ID and must support four operations at
line rate:

- look up / increment the counter of a stored flow,
- insert a new flow into an empty slot,
- *decrement all* non-zero counters by ``d = min(w, min_j c_j)`` and drop
  the ones that hit zero,
- find the minimum counter value.

Section 3.3 of the paper describes the key optimization this module
implements: counter values are kept **relative to a floating ground**
``c_ground``.  The decrement-all operation then becomes a single addition
to the ground, and a counter is logically zero (and removable) when its
absolute value is <= the ground.

Two interchangeable implementations are provided:

- :class:`ReferenceCounterStore` — direct O(n)-per-operation translation of
  the paper's pseudocode, kept as the behavioural oracle for differential
  tests;
- :class:`HeapCounterStore` — the floating-ground structure with an
  O(log n) lazy min-heap, mirroring the paper's "balanced search tree or
  heap" suggestion.

Both enforce the same invariants and are exercised against each other by
property-based tests.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Tuple

from ..model.packet import FlowId


class CounterStoreError(RuntimeError):
    """Raised on misuse of the counter-store API (bug in the caller)."""


class CounterStore(ABC):
    """Abstract interface shared by the reference and optimized stores.

    All values are integers (bytes).  A flow is *stored* when it occupies a
    slot with a strictly positive value; stores never hold zero-valued
    entries.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: Flows evicted by :meth:`decrement_all` reaching zero, over the
        #: store's lifetime.  Operational telemetry only: not part of the
        #: logical state, so :meth:`snapshot`/:meth:`restore` ignore it
        #: (a restored store starts its own eviction history).
        self.evictions: int = 0

    # -- queries ----------------------------------------------------------

    @abstractmethod
    def __contains__(self, fid: FlowId) -> bool:
        """Whether ``fid`` currently occupies a slot."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of occupied slots."""

    @abstractmethod
    def get(self, fid: FlowId) -> int:
        """Current value of a stored flow (raises if not stored)."""

    @abstractmethod
    def min_value(self) -> int:
        """Minimum value among stored flows (raises if empty)."""

    @abstractmethod
    def items(self) -> Iterator[Tuple[FlowId, int]]:
        """Iterate ``(fid, value)`` pairs in unspecified order."""

    @property
    def free_slots(self) -> int:
        """Number of unoccupied slots."""
        return self.capacity - len(self)

    @property
    def is_empty(self) -> bool:
        """True when no flow is stored."""
        return len(self) == 0

    @property
    def is_full(self) -> bool:
        """True when every slot is occupied."""
        return len(self) == self.capacity

    # -- mutations ---------------------------------------------------------

    @abstractmethod
    def increment(self, fid: FlowId, amount: int) -> int:
        """Add ``amount`` to a stored flow's counter; return the new value."""

    @abstractmethod
    def insert(self, fid: FlowId, value: int) -> None:
        """Store a new flow with a positive value in a free slot."""

    @abstractmethod
    def decrement_all(self, amount: int) -> None:
        """Subtract ``amount`` from every stored counter and evict the ones
        that reach zero.  ``amount`` must not exceed :meth:`min_value` (the
        algorithm always passes ``min(w, min value)``)."""

    @abstractmethod
    def reset(self) -> None:
        """Evict everything."""

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Serializable logical state: capacity plus ``(fid, value)`` pairs.

        The snapshot captures the *logical* counter values — the only state
        the algorithm's behaviour depends on — so it is interchangeable
        between store implementations: a snapshot taken from a
        :class:`HeapCounterStore` restores into a
        :class:`ReferenceCounterStore` and vice versa.  Entries are sorted
        by a deterministic key so identical logical states serialize to
        identical bytes (checkpoint files are reproducible).
        """
        from ..detectors.hashing import canonical_key

        entries = sorted(self.items(), key=lambda item: canonical_key(item[0]))
        return {"capacity": self.capacity, "entries": entries}

    def restore(self, state: Dict[str, object]) -> None:
        """Replace this store's contents with a :meth:`snapshot`'s.

        The restored store is behaviourally identical to the snapshotted
        one: every query and mutation sequence produces the same results.
        """
        capacity = state["capacity"]
        if capacity != self.capacity:
            raise CounterStoreError(
                f"snapshot capacity {capacity} != store capacity {self.capacity}"
            )
        entries = state["entries"]
        if len(entries) > self.capacity:
            raise CounterStoreError(
                f"snapshot holds {len(entries)} entries for {self.capacity} slots"
            )
        self.reset()
        for fid, value in entries:
            fid = tuple(fid) if isinstance(fid, list) else fid
            self.insert(fid, value)

    # -- shared helpers ----------------------------------------------------

    def as_dict(self) -> Dict[FlowId, int]:
        """Snapshot of the stored flows (for tests and reporting)."""
        return dict(self.items())

    def _check_increment(self, fid: FlowId, amount: int) -> None:
        if amount < 0:
            raise CounterStoreError(f"negative increment {amount}")
        if fid not in self:
            raise CounterStoreError(f"increment of unstored flow {fid!r}")

    def _check_insert(self, fid: FlowId, value: int) -> None:
        if value <= 0:
            raise CounterStoreError(f"insert with non-positive value {value}")
        if fid in self:
            raise CounterStoreError(f"insert of already-stored flow {fid!r}")
        if self.is_full:
            raise CounterStoreError("insert into a full store")

    def _check_decrement(self, amount: int) -> None:
        if amount < 0:
            raise CounterStoreError(f"negative decrement {amount}")
        if amount > 0 and (self.is_empty or amount > self.min_value()):
            raise CounterStoreError(
                f"decrement {amount} exceeds the minimum stored value; "
                "Algorithm 1 only ever decrements by min(w, min counter)"
            )


class ReferenceCounterStore(CounterStore):
    """Straightforward dict-based store; O(n) decrement and min.

    This is the executable specification: every operation manipulates
    absolute counter values exactly as the paper's pseudocode describes.
    """

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._values: Dict[FlowId, int] = {}

    def __contains__(self, fid: FlowId) -> bool:
        return fid in self._values

    def __len__(self) -> int:
        return len(self._values)

    def get(self, fid: FlowId) -> int:
        return self._values[fid]

    def min_value(self) -> int:
        if not self._values:
            raise CounterStoreError("min of an empty store")
        return min(self._values.values())

    def items(self) -> Iterator[Tuple[FlowId, int]]:
        return iter(list(self._values.items()))

    def increment(self, fid: FlowId, amount: int) -> int:
        self._check_increment(fid, amount)
        self._values[fid] += amount
        return self._values[fid]

    def insert(self, fid: FlowId, value: int) -> None:
        self._check_insert(fid, value)
        self._values[fid] = value

    def decrement_all(self, amount: int) -> None:
        self._check_decrement(amount)
        if amount == 0:
            return
        survivors = {}
        for fid, value in self._values.items():
            remaining = value - amount
            if remaining > 0:
                survivors[fid] = remaining
        self.evictions += len(self._values) - len(survivors)
        self._values = survivors

    def reset(self) -> None:
        self._values.clear()


class HeapCounterStore(CounterStore):
    """Floating-ground store with a lazily-pruned min-heap.

    Each stored flow has an *absolute* value ``a = c + ground`` where ``c``
    is its logical counter.  ``decrement_all(d)`` raises the ground by
    ``d``; entries whose absolute value is <= the ground are logically zero
    and evicted.  Increments push a fresh heap entry and invalidate the old
    one via a per-flow version number (classic lazy deletion), giving
    O(log n) amortized updates — the paper's Section 3.3 structure.

    To mirror the paper's "periodically reset the floating ground to
    prevent counter overflow", the store rebases automatically once the
    ground passes :data:`REBASE_THRESHOLD` (irrelevant for Python's big
    ints, but kept so the structure matches a fixed-width implementation
    and the rebase path stays tested).
    """

    #: Ground level that triggers an automatic rebase (2**40 ~ 1 TB of
    #: decrements, comfortably within a 64-bit counter budget).
    REBASE_THRESHOLD = 1 << 40

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._ground = 0
        #: fid -> (absolute value, version)
        self._entries: Dict[FlowId, Tuple[int, int]] = {}
        #: heap of (absolute value, version, fid); stale entries are pruned
        #: lazily when they surface at the top.
        self._heap: List[Tuple[int, int, FlowId]] = []
        self._version = 0

    def __contains__(self, fid: FlowId) -> bool:
        return fid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fid: FlowId) -> int:
        absolute, _ = self._entries[fid]
        return absolute - self._ground

    def min_value(self) -> int:
        top = self._peek()
        if top is None:
            raise CounterStoreError("min of an empty store")
        return top[0] - self._ground

    def items(self) -> Iterator[Tuple[FlowId, int]]:
        ground = self._ground
        return iter(
            [(fid, a - ground) for fid, (a, _) in self._entries.items()]
        )

    def increment(self, fid: FlowId, amount: int) -> int:
        self._check_increment(fid, amount)
        absolute, _ = self._entries[fid]
        absolute += amount
        self._store_entry(fid, absolute)
        return absolute - self._ground

    def insert(self, fid: FlowId, value: int) -> None:
        self._check_insert(fid, value)
        self._store_entry(fid, self._ground + value)

    def decrement_all(self, amount: int) -> None:
        self._check_decrement(amount)
        if amount == 0:
            return
        self._ground += amount
        # Evict logically-zero flows: absolute value <= ground.
        while True:
            top = self._peek()
            if top is None or top[0] > self._ground:
                break
            absolute, version, fid = heapq.heappop(self._heap)
            del self._entries[fid]
            self.evictions += 1
        if self._ground >= self.REBASE_THRESHOLD:
            self.rebase()

    def reset(self) -> None:
        self._ground = 0
        self._entries.clear()
        self._heap.clear()

    def rebase(self) -> None:
        """Rewrite absolute values relative to a zero ground.

        Equivalent to the paper's periodic "reset the floating ground to
        zero and deduct all counters accordingly"; O(n log n), amortized
        away by the size of :data:`REBASE_THRESHOLD`.
        """
        ground = self._ground
        self._ground = 0
        self._version = 0
        self._heap = []
        rebased = {}
        for fid, (absolute, _) in self._entries.items():
            value = absolute - ground
            rebased[fid] = (value, 0)
            self._heap.append((value, 0, fid))
        self._entries = rebased
        heapq.heapify(self._heap)

    def _store_entry(self, fid: FlowId, absolute: int) -> None:
        self._version += 1
        self._entries[fid] = (absolute, self._version)
        heapq.heappush(self._heap, (absolute, self._version, fid))

    def _peek(self):
        """Top of the heap after pruning stale entries, or None if empty."""
        heap = self._heap
        entries = self._entries
        while heap:
            absolute, version, fid = heap[0]
            current = entries.get(fid)
            if current is not None and current == (absolute, version):
                return heap[0]
            heapq.heappop(heap)
        return None
