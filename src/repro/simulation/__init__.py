"""DoS-mitigation simulation: sources -> EARDet policer -> bottleneck link.

The substrate behind the mitigation experiment and example: slotted
closed-loop simulation of TCP-like victims, Shrew attackers and CBR
background sharing a finite-buffer FIFO bottleneck, with an optional
EARDet policer cutting off detected flows at ingress.
"""

from .link import FifoLink, LinkStats
from .mitigation import FlowOutcome, SimulationResult, simulate
from .sources import AimdSource, ConstantBitRateSource, ShrewSource, SlottedSource

__all__ = [
    "AimdSource",
    "ConstantBitRateSource",
    "FifoLink",
    "FlowOutcome",
    "LinkStats",
    "ShrewSource",
    "SimulationResult",
    "SlottedSource",
    "simulate",
]
