"""A stateful FIFO bottleneck link with a finite buffer.

Unlike :func:`repro.traffic.link.serialize_with_drops` (a one-shot
re-timestamping of a complete stream), :class:`FifoLink` keeps queue
state across calls so a slotted simulation can feed it traffic
incrementally and interleave policing decisions — the substrate the DoS
mitigation pipeline (:mod:`repro.simulation.mitigation`) runs on.

Semantics match the one-shot serializer: a packet arriving at ``t``
starts transmission at ``max(t, previous completion)``; if the backlog
(bytes awaiting transmission at arrival) exceeds the buffer it is
tail-dropped.  All arithmetic is exact (completion times tracked in
ns-times-rho scaled integers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..model.packet import Packet
from ..model.units import NS_PER_S


@dataclass
class LinkStats:
    """Aggregate counters of a link's lifetime."""

    offered_packets: int = 0
    delivered_packets: int = 0
    dropped_packets: int = 0
    offered_bytes: int = 0
    delivered_bytes: int = 0
    dropped_bytes: int = 0

    @property
    def loss_rate(self) -> float:
        if self.offered_packets == 0:
            return 0.0
        return self.dropped_packets / self.offered_packets


@dataclass
class FifoLink:
    """Persistent-state FIFO link: capacity ``rho`` B/s, ``buffer_bytes``
    of queue."""

    rho: int
    buffer_bytes: int
    _completion_scaled: int = 0  # last completion time * rho (byte-ns units)
    stats: LinkStats = field(default_factory=LinkStats)

    def __post_init__(self) -> None:
        if self.rho <= 0:
            raise ValueError(f"link capacity must be positive, got {self.rho}")
        if self.buffer_bytes < 0:
            raise ValueError(f"buffer must be >= 0, got {self.buffer_bytes}")

    def offer(self, packet: Packet):
        """Offer one packet (arrivals must be in time order).

        Returns the delivered packet re-timestamped to its transmission
        start, or None if tail-dropped.
        """
        self.stats.offered_packets += 1
        self.stats.offered_bytes += packet.size
        arrival_scaled = packet.time * self.rho
        backlog_scaled = self._completion_scaled - arrival_scaled
        if backlog_scaled > self.buffer_bytes * NS_PER_S:
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            return None
        start_scaled = max(arrival_scaled, self._completion_scaled)
        start_ns = -(-start_scaled // self.rho)
        self._completion_scaled = start_ns * self.rho + packet.size * NS_PER_S
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += packet.size
        return Packet(time=start_ns, size=packet.size, fid=packet.fid)

    def offer_all(self, packets) -> List[Packet]:
        """Offer a time-ordered batch; returns the delivered packets."""
        delivered = []
        for packet in packets:
            emitted = self.offer(packet)
            if emitted is not None:
                delivered.append(emitted)
        return delivered

    def queue_bytes_at(self, time_ns: int) -> float:
        """Bytes awaiting transmission at ``time_ns`` (diagnostics)."""
        backlog_scaled = self._completion_scaled - time_ns * self.rho
        return max(0, backlog_scaled) / NS_PER_S
