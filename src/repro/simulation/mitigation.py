"""The DoS-mitigation pipeline: sources -> policer (EARDet) -> bottleneck.

The paper's motivating deployment (Section 1): a detector at a router
identifies large/bursty flows and enforcement cuts them off, protecting
legitimate traffic.  :func:`simulate` runs that pipeline in RTT-sized
slots:

1. every source emits its slot's packets (closed-loop sources use their
   current window),
2. the **detector/policer at ingress**: EARDet observes every arriving
   packet and packets of flows it has ever reported are dropped before
   the queue (the paper's "cut off immediately", held for the rest of
   the run).  The detector watches the *ingress aggregate*, so it must
   be configured with that pipe's capacity (the sum of the access links
   feeding the bottleneck), not the bottleneck rate: its guarantees are
   conditioned on traffic never exceeding its configured ``rho``, and
   during congestion the offered load exceeds the bottleneck by design.
   A wire-tap downstream of the queue would never see the attack — the
   queue itself clips the bursts that make the flow large,
3. survivors pass through the finite-buffer FIFO bottleneck where
   congestion drops happen,
4. per-flow delivery results feed back to the sources (AIMD reacts;
   policed packets count as losses to the sender).

The mitigation experiment compares a victim's goodput under a Shrew
attack with no policer vs an EARDet policer; the paper's claim is that
detection within the incubation bound confines the damage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.eardet import EARDet
from ..model.packet import FlowId
from ..model.stream import merge_iter
from .link import FifoLink, LinkStats
from .sources import SlottedSource


@dataclass
class FlowOutcome:
    """Per-flow totals over a simulation."""

    offered_bytes: int = 0
    delivered_bytes: int = 0
    congestion_dropped_bytes: int = 0
    policed_bytes: int = 0

    @property
    def goodput_share(self) -> float:
        if self.offered_bytes == 0:
            return 0.0
        return self.delivered_bytes / self.offered_bytes


@dataclass
class SimulationResult:
    """Everything a mitigation run measures."""

    duration_ns: int
    slot_ns: int
    flows: Dict[FlowId, FlowOutcome] = field(default_factory=dict)
    #: per-slot delivered bytes per flow (goodput time series)
    slot_delivered: Dict[FlowId, List[int]] = field(default_factory=dict)
    link_stats: Optional[LinkStats] = None
    detector: Optional[EARDet] = None

    def goodput_bps(self, fid: FlowId) -> float:
        """Average delivered bytes/s of a flow over the run."""
        outcome = self.flows.get(fid)
        if outcome is None or self.duration_ns == 0:
            return 0.0
        return outcome.delivered_bytes * 1_000_000_000 / self.duration_ns

    def detected_flows(self) -> List[FlowId]:
        if self.detector is None:
            return []
        return list(self.detector.detected)


def simulate(
    sources: Sequence[SlottedSource],
    rho: int,
    buffer_bytes: int,
    duration_ns: int,
    slot_ns: int,
    detector: Optional[EARDet] = None,
    seed: int = 0,
) -> SimulationResult:
    """Run the pipeline for ``duration_ns`` in ``slot_ns`` slots."""
    if duration_ns <= 0 or slot_ns <= 0:
        raise ValueError("duration and slot length must be positive")
    if len({source.fid for source in sources}) != len(sources):
        raise ValueError("sources must have distinct flow IDs")
    rng = random.Random(seed)
    link = FifoLink(rho=rho, buffer_bytes=buffer_bytes)
    result = SimulationResult(duration_ns=duration_ns, slot_ns=slot_ns)
    for source in sources:
        result.flows[source.fid] = FlowOutcome()
        result.slot_delivered[source.fid] = []
    by_fid = {source.fid: source for source in sources}

    start = 0
    while start < duration_ns:
        end = min(start + slot_ns, duration_ns)
        batches = [source.generate(start, end, rng) for source in sources]
        delivered_packets = {fid: 0 for fid in by_fid}
        delivered_bytes = {fid: 0 for fid in by_fid}
        lost_packets = {fid: 0 for fid in by_fid}
        for packet in merge_iter(*batches):
            outcome = result.flows[packet.fid]
            outcome.offered_bytes += packet.size
            if detector is not None and detector.observe(packet):
                outcome.policed_bytes += packet.size
                lost_packets[packet.fid] += 1
                continue
            emitted = link.offer(packet)
            if emitted is None:
                outcome.congestion_dropped_bytes += packet.size
                lost_packets[packet.fid] += 1
            else:
                outcome.delivered_bytes += packet.size
                delivered_packets[packet.fid] += 1
                delivered_bytes[packet.fid] += packet.size
        for fid, source in by_fid.items():
            source.feedback(delivered_packets[fid], lost_packets[fid])
            result.slot_delivered[fid].append(delivered_bytes[fid])
        start = end

    result.link_stats = link.stats
    result.detector = detector
    return result
