"""Slotted traffic sources for the mitigation simulation.

Three source models cover the paper's DoS narrative (Section 1 and the
Kuzmanovic-Knightly Shrew reference [25]):

- :class:`ConstantBitRateSource` — open-loop background traffic;
- :class:`AimdSource` — a closed-loop, TCP-like victim: a congestion
  window grows by one segment per loss-free slot (additive increase) and
  halves on any loss in the slot (multiplicative decrease), with a
  timeout-like collapse to one segment when every packet of a slot is
  lost — the behaviour Shrew attacks exploit;
- :class:`ShrewSource` — the attacker: a burst of ``burst_bytes`` at the
  start of each period, synchronized to the victims' recovery clock.

Sources generate packets per slot ``[start, end)``; the simulation loop
feeds back per-flow delivery results so closed-loop sources can react.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List

from ..model.packet import FlowId, Packet
from ..model.units import NS_PER_S


class SlottedSource(ABC):
    """A traffic source driven slot by slot."""

    def __init__(self, fid: FlowId):
        self.fid = fid

    @abstractmethod
    def generate(self, start_ns: int, end_ns: int, rng: random.Random) -> List[Packet]:
        """Packets this source emits during ``[start_ns, end_ns)``."""

    def feedback(self, delivered: int, dropped: int) -> None:
        """Per-slot delivery feedback (packets); open-loop sources ignore
        it."""


class ConstantBitRateSource(SlottedSource):
    """Open-loop CBR: ``rate`` bytes/s in evenly spaced packets."""

    def __init__(self, fid: FlowId, rate: int, packet_size: int = 1000):
        super().__init__(fid)
        if rate <= 0 or packet_size <= 0:
            raise ValueError("rate and packet size must be positive")
        self.rate = rate
        self.packet_size = packet_size
        self._credit_scaled = 0  # accumulated byte-ns credit

    def generate(self, start_ns: int, end_ns: int, rng: random.Random) -> List[Packet]:
        self._credit_scaled += self.rate * (end_ns - start_ns)
        count = self._credit_scaled // (self.packet_size * NS_PER_S)
        self._credit_scaled -= count * self.packet_size * NS_PER_S
        if count == 0:
            return []
        spacing = (end_ns - start_ns) // count or 1
        return [
            Packet(
                time=min(start_ns + i * spacing, end_ns - 1),
                size=self.packet_size,
                fid=self.fid,
            )
            for i in range(count)
        ]


class AimdSource(SlottedSource):
    """Closed-loop TCP-like sender, one slot = one RTT.

    ``cwnd`` segments are sent per slot, evenly spaced.  Feedback:
    no losses -> ``cwnd += 1``; some losses -> ``cwnd = max(1, cwnd//2)``;
    *all* segments lost -> timeout, ``cwnd = 1`` (the collapse Shrew
    attacks induce every period).
    """

    def __init__(
        self,
        fid: FlowId,
        segment_size: int = 1000,
        initial_cwnd: int = 2,
        max_cwnd: int = 10_000,
    ):
        super().__init__(fid)
        if segment_size <= 0 or initial_cwnd < 1:
            raise ValueError("segment size and initial cwnd must be positive")
        self.segment_size = segment_size
        self.cwnd = initial_cwnd
        self.max_cwnd = max_cwnd
        self.delivered_bytes = 0
        self.cwnd_history: List[int] = []

    def generate(self, start_ns: int, end_ns: int, rng: random.Random) -> List[Packet]:
        self.cwnd_history.append(self.cwnd)
        spacing = (end_ns - start_ns) // self.cwnd or 1
        return [
            Packet(
                time=min(start_ns + i * spacing, end_ns - 1),
                size=self.segment_size,
                fid=self.fid,
            )
            for i in range(self.cwnd)
        ]

    def feedback(self, delivered: int, dropped: int) -> None:
        self.delivered_bytes += delivered * self.segment_size
        if dropped == 0:
            self.cwnd = min(self.max_cwnd, self.cwnd + 1)
        elif delivered == 0:
            self.cwnd = 1  # timeout
        else:
            self.cwnd = max(1, self.cwnd // 2)


class ShrewSource(SlottedSource):
    """Open-loop periodic burster: ``burst_bytes`` at the top of every
    ``period_ns``, in back-to-back maximum-size packets."""

    def __init__(
        self,
        fid: FlowId,
        burst_bytes: int,
        period_ns: int = NS_PER_S,
        packet_size: int = 1518,
        link_rate: int = None,
    ):
        super().__init__(fid)
        if burst_bytes <= 0 or period_ns <= 0 or packet_size <= 0:
            raise ValueError("burst, period and packet size must be positive")
        self.burst_bytes = burst_bytes
        self.period_ns = period_ns
        self.packet_size = packet_size
        #: Packet spacing inside the burst: wire speed if known, else 1 us.
        if link_rate:
            self.spacing_ns = max(1, packet_size * NS_PER_S // link_rate)
        else:
            self.spacing_ns = 1_000

    def generate(self, start_ns: int, end_ns: int, rng: random.Random) -> List[Packet]:
        packets: List[Packet] = []
        # Bursts fire at multiples of the period inside the slot.
        first_period = -(-start_ns // self.period_ns)
        burst_start = first_period * self.period_ns
        while burst_start < end_ns:
            count = max(1, self.burst_bytes // self.packet_size)
            packets.extend(
                Packet(
                    time=min(burst_start + i * self.spacing_ns, end_ns - 1),
                    size=self.packet_size,
                    fid=self.fid,
                )
                for i in range(count)
            )
            burst_start += self.period_ns
        return packets
