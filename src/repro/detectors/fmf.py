"""FMF: fixed-window multistage filter (Estan & Varghese, TOCS 2003).

One of the paper's two comparison baselines (Section 5.1).  A multistage
filter has ``d`` parallel stages of ``b`` counters; each packet hashes to
one counter per stage and adds its size to all of them; a flow is flagged
when *all* its counters exceed the threshold ``T``.  The *fixed-window*
variant resets every counter at the start of each measurement interval, so
it monitors landmark windows of at most the interval length — which is
exactly why bursts that straddle an interval boundary (Shrew attacks)
evade it.

Includes the authors' *conservative update* optimization as an option
(only raise counters as far as detection requires), and
:func:`fp_probability_bound` — the Estan-Varghese analytical bound used by
the paper's Table 2 comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..model.packet import Packet
from .base import Detector
from .hashing import StageHash, make_stage_hashes


class FixedMultistageFilter(Detector):
    """Fixed-window multistage filter.

    Parameters
    ----------
    stages:
        Number of parallel hash stages ``d``.
    buckets:
        Counters per stage ``b``.
    threshold:
        Byte threshold ``T``; a flow is flagged when all of its ``d``
        counters strictly exceed it.
    window_ns:
        Measurement-interval length; all counters reset when a packet
        arrives in a new interval (intervals are ``[k W, (k+1) W)``).
    conservative_update:
        Estan & Varghese's optimization: increase only the minimal
        counters, and never beyond what the packet could justify.  Reduces
        false positives; changes no guarantee.
    seed:
        Hash seed, for reproducible experiments.
    """

    name = "fmf"

    #: Version of the snapshot schema; bump on incompatible change.
    SNAPSHOT_FORMAT = 1

    def __init__(
        self,
        stages: int,
        buckets: int,
        threshold: int,
        window_ns: int,
        conservative_update: bool = False,
        seed: int = 0,
    ):
        super().__init__()
        if stages < 1:
            raise ValueError(f"need at least 1 stage, got {stages}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns}")
        self.stages = stages
        self.buckets = buckets
        self.threshold = threshold
        self.window_ns = window_ns
        self.conservative_update = conservative_update
        self.seed = seed
        self._hashes: List[StageHash] = make_stage_hashes(stages, buckets, seed)
        self._counters: List[List[int]] = [[0] * buckets for _ in range(stages)]
        self._window_index: Optional[int] = None

    def _update(self, packet: Packet) -> bool:
        window = packet.time // self.window_ns
        if window != self._window_index:
            self._window_index = window
            for stage in self._counters:
                for i in range(len(stage)):
                    stage[i] = 0
        indices = [h(packet.fid) for h in self._hashes]
        values = [
            self._counters[s][indices[s]] for s in range(self.stages)
        ]
        if self.conservative_update:
            # Raise every counter only to min + size (capped from below by
            # its own value): the least increase consistent with this
            # packet's flow having sent `size` more bytes.
            target = min(values) + packet.size
            updated = [max(value, min(value + packet.size, target)) for value in values]
        else:
            updated = [value + packet.size for value in values]
        for s in range(self.stages):
            self._counters[s][indices[s]] = updated[s]
        return all(value > self.threshold for value in updated)

    def _reset_state(self) -> None:
        self._counters = [[0] * self.buckets for _ in range(self.stages)]
        self._window_index = None

    def counter_count(self) -> int:
        return self.stages * self.buckets

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Complete state as plain data (stage hashes regenerate from the
        constructor arguments; only counters and the window cursor travel)."""
        return {
            "format": self.SNAPSHOT_FORMAT,
            "counters": [list(stage) for stage in self._counters],
            "window_index": self._window_index,
            "sink": self.sink.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        fmt = state.get("format")
        if fmt != self.SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported FMF snapshot format {fmt!r} "
                f"(this build reads format {self.SNAPSHOT_FORMAT})"
            )
        counters = [list(stage) for stage in state["counters"]]  # type: ignore[union-attr]
        if len(counters) != self.stages or any(
            len(stage) != self.buckets for stage in counters
        ):
            raise ValueError(
                f"snapshot shape does not match {self.stages} stages x "
                f"{self.buckets} buckets"
            )
        self._counters = counters
        self._window_index = state["window_index"]  # type: ignore[assignment]
        self.sink.restore(state["sink"])  # type: ignore[arg-type]
        if self.checker is not None:
            self.checker.reset()

    def stage_values(self, fid) -> List[int]:
        """Current counter values for a flow (diagnostics)."""
        return [
            self._counters[s][self._hashes[s](fid)] for s in range(self.stages)
        ]


def fp_probability_bound(
    stages: int, buckets: int, threshold: int, traffic_bytes: int
) -> float:
    """Estan-Varghese bound on the probability a small flow passes the
    filter in one measurement interval.

    At most ``C / T`` counters per stage can exceed threshold ``T`` when
    the interval carries ``C`` bytes, so a given small flow hits an
    over-threshold counter in one stage with probability at most
    ``C / (T b)``, and in all ``d`` independent stages with probability at
    most ``(C / (T b))^d`` (capped at 1).  This is the arithmetic behind
    the paper's Table 2 "<= 0.04" entries.
    """
    if threshold <= 0 or buckets <= 0:
        raise ValueError("threshold and buckets must be positive")
    per_stage = min(1.0, traffic_bytes / (threshold * buckets))
    return per_stage**stages
