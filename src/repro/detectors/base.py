"""Common interface for all large-flow detectors.

The paper frames a detection algorithm as three operations over a traffic
synopsis (Section 2.1): ``Init``, ``Update`` and ``Detect``.  This module's
:class:`Detector` maps them onto a Python API every implementation in
:mod:`repro.detectors` (and :class:`repro.core.eardet.EARDet`) shares, so
the experiment runner and metrics treat all schemes uniformly:

- construction            = ``Init``
- :meth:`observe(packet)` = ``Update`` followed by ``Detect`` on the new
  packet, returning whether the packet's flow is (now) flagged as large,
- :attr:`sink`            = the remote server's complete copy of the
  detected set ``F`` with first-detection times (Figure 2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Iterable, Optional

from ..core.blacklist import ReportSink
from ..model.packet import FlowId, Packet

if TYPE_CHECKING:  # pragma: no cover - typing-only, avoids an import cycle
    from ..guard.invariants import InvariantChecker


class Detector(ABC):
    """Abstract one-pass large-flow detector.

    Subclasses implement :meth:`_update`, which processes one packet and
    returns True when the packet's flow crosses the scheme's detection
    criterion.  The base class owns the report sink and detection
    bookkeeping, so ``observe`` has identical semantics across schemes:
    it returns True iff the packet's flow is in the detected set after the
    packet is processed (a blacklisted flow keeps returning True).
    """

    #: Short scheme name used in reports; subclasses override.
    name = "detector"

    def __init__(self) -> None:
        self.sink = ReportSink()
        #: Optional runtime invariant monitor (see :mod:`repro.guard`).
        self.checker: Optional["InvariantChecker"] = None

    def attach_checker(
        self, checker: Optional["InvariantChecker"]
    ) -> "Detector":
        """Attach (or with None, detach) an
        :class:`~repro.guard.invariants.InvariantChecker`; it then audits
        the detector's state after every ``checker.every``-th packet.
        Returns self for chaining."""
        self.checker = checker
        if checker is not None:
            checker.reset()
        return self

    def observe(self, packet: Packet) -> bool:
        """Process one packet; return whether its flow is flagged."""
        if self._update(packet):
            self.sink.report(packet.fid, packet.time)
        if self.checker is not None:
            self.checker.after_packet(self)
        return packet.fid in self.sink

    def observe_stream(self, packets: Iterable[Packet]) -> "Detector":
        """Process a whole stream; returns self for chaining."""
        for packet in packets:
            self.observe(packet)
        return self

    @abstractmethod
    def _update(self, packet: Packet) -> bool:
        """Scheme-specific synopsis update; True when the packet's flow
        meets the detection criterion at this packet."""

    # -- results -------------------------------------------------------------

    @property
    def detected(self) -> Dict[FlowId, int]:
        """``{flow id: first detection time (ns)}`` for every flow ever
        reported."""
        return self.sink.as_dict()

    def is_detected(self, fid: FlowId) -> bool:
        """Whether a flow has ever been reported."""
        return fid in self.sink

    def detection_time(self, fid: FlowId) -> Optional[int]:
        """First detection time of a flow (ns), or None."""
        return self.sink.detection_time(fid)

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        """Restore the initial state (``Init``)."""
        self.sink.reset()
        self._reset_state()
        if self.checker is not None:
            # The monitor's derived trackers (clocks, counter values) are
            # stale after a state jump and would raise false violations.
            self.checker.reset()

    @abstractmethod
    def _reset_state(self) -> None:
        """Scheme-specific state reset."""

    # -- accounting -------------------------------------------------------------

    def counter_count(self) -> int:
        """Number of counters / buckets the synopsis holds, the unit in
        which the paper compares memory (Tables 2 and 6).  Schemes without
        a fixed counter budget report their current state size."""
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(detected={len(self.sink)})"
