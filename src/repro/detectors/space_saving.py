"""Space Saving (Metwally, Agrawal, El Abbadi — ICDT 2005).

Related-work counter-based algorithm from the paper's Section 6: keep
``k`` (item, count) pairs; an unstored item replaces the minimum-count
item, inheriting its count (plus the new weight) and recording the
inherited amount as its maximum overestimation error.  Guarantees
``true <= estimate <= true + min_count``; any item with true weight above
``total / k`` is stored.

Reuses the EARDet counter-store machinery? No — Space Saving *increments*
the replaced minimum rather than decrementing others, so its natural
structure is a min-heap keyed by count, implemented here directly.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from ..model.packet import FlowId, Packet
from .base import Detector


class SpaceSaving:
    """Byte-weighted Space Saving summary with ``k`` slots."""

    def __init__(self, slots: int):
        if slots < 1:
            raise ValueError(f"need at least 1 slot, got {slots}")
        self.slots = slots
        self.total_weight = 0
        #: item -> (count, overestimation error)
        self._entries: Dict[FlowId, Tuple[int, int]] = {}
        #: lazy min-heap of (count, version, item)
        self._heap: List[Tuple[int, int, FlowId]] = []
        self._versions: Dict[FlowId, int] = {}
        self._next_version = 0

    def add(self, item: FlowId, weight: int = 1) -> None:
        """Fold one weighted item into the summary."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.total_weight += weight
        entry = self._entries.get(item)
        if entry is not None:
            self._set(item, entry[0] + weight, entry[1])
            return
        if len(self._entries) < self.slots:
            self._set(item, weight, 0)
            return
        victim_count, victim = self._pop_min()
        del self._entries[victim]
        del self._versions[victim]
        # The newcomer inherits the victim's count as overestimation error.
        self._set(item, victim_count + weight, victim_count)

    def _set(self, item: FlowId, count: int, error: int) -> None:
        self._entries[item] = (count, error)
        self._next_version += 1
        self._versions[item] = self._next_version
        heapq.heappush(self._heap, (count, self._next_version, item))

    def _pop_min(self) -> Tuple[int, FlowId]:
        while True:
            count, version, item = heapq.heappop(self._heap)
            if self._versions.get(item) == version:
                return count, item

    def estimate(self, item: FlowId) -> int:
        """Upper-bound estimate (0 if not stored)."""
        entry = self._entries.get(item)
        return entry[0] if entry else 0

    def guaranteed(self, item: FlowId) -> int:
        """Lower bound: estimate minus its overestimation error."""
        entry = self._entries.get(item)
        return entry[0] - entry[1] if entry else 0

    def items(self) -> Dict[FlowId, int]:
        """Stored items with their (over-)estimates."""
        return {item: count for item, (count, _) in self._entries.items()}

    def state_size(self) -> int:
        return len(self._entries)


class SpaceSavingDetector(Detector):
    """Space Saving as a landmark-window detector: flags a flow whose
    *guaranteed* (error-corrected) count exceeds ``beta_report``.

    Using the guaranteed count rather than the raw estimate avoids the
    scheme's characteristic false positives from inherited counts — at the
    cost of missing flows whose weight hides inside the error, the
    FN/FP trade the paper's exactness model removes.
    """

    name = "space-saving"

    def __init__(self, slots: int, beta_report: int):
        super().__init__()
        if beta_report <= 0:
            raise ValueError(f"beta_report must be positive, got {beta_report}")
        self.slots = slots
        self.beta_report = beta_report
        self.summary = SpaceSaving(slots)

    def _update(self, packet: Packet) -> bool:
        self.summary.add(packet.fid, packet.size)
        return self.summary.guaranteed(packet.fid) > self.beta_report

    def _reset_state(self) -> None:
        self.summary = SpaceSaving(self.slots)

    def counter_count(self) -> int:
        return self.slots
