"""LOFT: large-flow tracing by aggregation and periodic inversion.

LOFT (Scherrer et al., "Low-Rate Overuse Flow Tracer (LOFT): Accurate
Detection of all Flows above a Very Low Threshold", arXiv:2102.01397)
targets the same gap CLEF does — overuse flows below EARDet's exact
detection threshold — but with a different shape: instead of narrowing
a counter tree onto one flow, it **aggregates** all traffic into a small
sketch per epoch and periodically **inverts** the sketch, promoting the
flows with the highest per-epoch estimates into a bounded exact
watchlist of per-flow leaky buckets.

The implementation here keeps the scheme's two-tier structure:

1. **Aggregation** — a ``stages x aggregates`` conservative count-min
   sketch accumulates per-flow byte estimates over one epoch; hash
   seeds rotate every epoch so collisions do not persist.
2. **Inversion** — at each epoch boundary, every flow observed during
   the epoch whose minimum-stage estimate exceeds the epoch's
   low-bandwidth byte budget (``gamma * epoch + beta``) is promoted
   into the watchlist.  The watchlist holds at most ``watchlist``
   entries; when full, the entry with the lowest current bucket level
   is evicted (deterministic tie-break on the canonical flow key).
3. **Confirmation** — watched flows bypass the sketch and feed an exact
   :class:`~repro.model.thresholds.LeakyBucket` with drain rate
   ``gamma``; a flow is flagged only when its *exact* bucket exceeds
   ``beta``, so every flag is backed by post-promotion per-flow
   evidence (a colliding sketch estimate alone can never flag a flow).
   Detection remains probabilistic end-to-end because promotion itself
   can miss (bounded tracking, eviction churn).

All arithmetic is integer-exact (bytes, nanoseconds, scaled byte-ns
levels); hashing is the deterministic splitmix64 mix; ``snapshot`` /
``restore`` capture complete state for bit-identical crash recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.config import EARDetConfig
from ..model.packet import FlowId, Packet
from ..model.thresholds import LeakyBucket
from ..model.units import NS_PER_S
from .base import Detector
from .hashing import canonical_key, splitmix64


@dataclass
class LOFTStats:
    """Operational counters for diagnostics and telemetry."""

    packets: int = 0
    sketch_packets: int = 0
    watch_packets: int = 0
    epochs: int = 0
    promotions: int = 0
    evictions: int = 0
    demotions: int = 0
    untracked_packets: int = 0
    flags: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def restore(self, state: Dict[str, int]) -> None:
        for name, value in state.items():
            if name not in self.__dataclass_fields__:
                raise ValueError(f"unknown stats field {name!r}")
            setattr(self, name, value)


class LOFT(Detector):
    """The LOFT detector.

    Parameters
    ----------
    aggregates:
        Buckets per sketch stage.
    epoch_ns:
        Aggregation epoch length; inversion runs at every boundary.
    gamma, beta:
        The low-bandwidth threshold ``TH_l(t) = gamma t + beta`` whose
        violators LOFT exists to trace (bytes/s, bytes).
    stages:
        Sketch stages (estimate = minimum over stages).
    watchlist:
        Maximum exact per-flow buckets held after inversion.
    flow_limit:
        Maximum distinct flows remembered per epoch for inversion
        (bounds the candidate scan; overflow is counted, not tracked).
    seed:
        Salts all hashing; epoch index rotates the per-stage seeds.
    """

    name = "loft"

    #: Version of the LOFT snapshot schema; bump on incompatible change.
    SNAPSHOT_FORMAT = 1

    def __init__(
        self,
        aggregates: int,
        epoch_ns: int,
        gamma: int,
        beta: int,
        stages: int = 2,
        watchlist: int = 64,
        flow_limit: int = 4096,
        seed: int = 0,
    ):
        super().__init__()
        if aggregates < 1:
            raise ValueError(f"aggregates must be >= 1, got {aggregates}")
        if epoch_ns <= 0:
            raise ValueError(f"epoch_ns must be positive, got {epoch_ns}")
        if gamma < 0 or beta < 0:
            raise ValueError(f"threshold must be >= 0, got {gamma}, {beta}")
        if stages < 1:
            raise ValueError(f"stages must be >= 1, got {stages}")
        if watchlist < 1:
            raise ValueError(f"watchlist must be >= 1, got {watchlist}")
        if flow_limit < 1:
            raise ValueError(f"flow_limit must be >= 1, got {flow_limit}")
        self.aggregates = aggregates
        self.epoch_ns = epoch_ns
        self.gamma = gamma
        self.beta = beta
        self.stages = stages
        self.watchlist = watchlist
        self.flow_limit = flow_limit
        self.seed = seed
        self._beta_scaled = beta * NS_PER_S
        # One epoch's byte budget for a TH_l-compliant flow, in scaled
        # byte-ns units so the comparison against estimates is exact.
        self._budget_scaled = gamma * epoch_ns + beta * NS_PER_S
        self.stats = LOFTStats()
        self._reset_state()

    @classmethod
    def for_config(
        cls,
        config: EARDetConfig,
        aggregates: int,
        epoch_ns: int,
        stages: int = 2,
        watchlist: int = 64,
        flow_limit: int = 4096,
        seed: int = 0,
    ) -> "LOFT":
        """Size against the config's low-bandwidth threshold (the
        boundary of the ambiguity region being watched)."""
        return cls(
            aggregates=aggregates,
            epoch_ns=epoch_ns,
            gamma=config.gamma_l,
            beta=config.beta_l,
            stages=stages,
            watchlist=watchlist,
            flow_limit=flow_limit,
            seed=seed,
        )

    # -- hashing ------------------------------------------------------------

    def _stage_index(self, fid: FlowId, stage: int) -> int:
        salt = splitmix64(splitmix64(self.seed ^ self._epoch_index) + stage)
        return splitmix64(canonical_key(fid) ^ salt) % self.aggregates

    # -- epoch machinery ----------------------------------------------------

    def _estimate(self, fid: FlowId) -> int:
        """Minimum-over-stages byte estimate for a flow this epoch."""
        return min(
            self._sketch[stage][self._stage_index(fid, stage)]
            for stage in range(self.stages)
        )

    def _drain_to(self, bucket: LeakyBucket, time_ns: int) -> int:
        """Bucket level at ``time_ns`` without adding bytes (mutating,
        unlike ``level_at`` — keeps later arithmetic incremental)."""
        drained = bucket.gamma * (time_ns - bucket.last_time)
        bucket.level_scaled = max(0, bucket.level_scaled - drained)
        bucket.last_time = time_ns
        return bucket.level_scaled

    def _promote(self, fid: FlowId, boundary_ns: int) -> None:
        """Admit a flow to the watchlist, evicting the lowest-level
        entry if full.  The new bucket starts *empty*: flags need
        post-promotion exact evidence, so sketch collisions can inflate
        candidacy but never a verdict."""
        if fid in self._watch:
            return
        if len(self._watch) >= self.watchlist:
            victim = min(
                self._watch.items(),
                key=lambda item: (item[1].level_scaled, canonical_key(item[0])),
            )[0]
            del self._watch[victim]
            self.stats.evictions += 1
        bucket = LeakyBucket(self.gamma)
        bucket.last_time = boundary_ns
        self._watch[fid] = bucket
        self.stats.promotions += 1

    def _end_epoch(self, boundary_ns: int) -> None:
        """Invert the epoch's sketch into promotions, demote idle
        watchlist entries, clear per-epoch state, rotate hashes."""
        # Demote before promoting: a flow admitted at this boundary
        # starts with an empty bucket and must not be judged idle by the
        # very boundary that admitted it.
        for fid in [
            fid
            for fid, bucket in self._watch.items()
            if self._drain_to(bucket, boundary_ns) == 0
            and fid not in self.sink
        ]:
            del self._watch[fid]
            self.stats.demotions += 1
        candidates = [
            fid
            for fid in self._tracked
            if self._estimate(fid) * NS_PER_S > self._budget_scaled
        ]
        for fid in candidates:
            self._promote(fid, boundary_ns)
        self._sketch = [[0] * self.aggregates for _ in range(self.stages)]
        self._tracked.clear()
        self._epoch_index += 1
        self.stats.epochs += 1

    def _advance_time(self, now_ns: int) -> None:
        if not self._started:
            self._started = True
            self._epoch_start = now_ns
            return
        elapsed = (now_ns - self._epoch_start) // self.epoch_ns
        if elapsed <= 0:
            return
        # Close the current (possibly non-empty) epoch at its boundary.
        self._end_epoch(self._epoch_start + self.epoch_ns)
        self._epoch_start += elapsed * self.epoch_ns
        if elapsed > 1:
            # The remaining epochs saw no traffic: the sketch stays
            # zero, so inversion promotes nothing; only watchlist
            # draining at the final boundary is observable.
            self._epoch_index += elapsed - 1
            self.stats.epochs += elapsed - 1
            for fid in [
                fid
                for fid, bucket in self._watch.items()
                if self._drain_to(bucket, self._epoch_start) == 0
                and fid not in self.sink
            ]:
                del self._watch[fid]
                self.stats.demotions += 1

    # -- Detector interface -------------------------------------------------

    def _update(self, packet: Packet) -> bool:
        self.stats.packets += 1
        self._advance_time(packet.time)
        fid = packet.fid
        bucket = self._watch.get(fid)
        if bucket is not None:
            self.stats.watch_packets += 1
            level = bucket.add(packet.time, packet.size)
            if level > self._beta_scaled:
                self.stats.flags += 1
                return True
            return False
        self.stats.sketch_packets += 1
        for stage in range(self.stages):
            self._sketch[stage][self._stage_index(fid, stage)] += packet.size
        if fid not in self._tracked:
            if len(self._tracked) < self.flow_limit:
                self._tracked[fid] = None
            else:
                self.stats.untracked_packets += 1
        return False

    def _reset_state(self) -> None:
        self._sketch: List[List[int]] = [
            [0] * self.aggregates for _ in range(self.stages)
        ]
        # Insertion-ordered dict used as a set: iteration order (and so
        # promotion order) is stream-deterministic, unlike a real set of
        # string fids under hash randomization.
        self._tracked: Dict[FlowId, None] = {}
        self._watch: Dict[FlowId, LeakyBucket] = {}
        self._epoch_index = 0
        self._epoch_start = 0
        self._started = False
        self.stats.reset()

    def counter_count(self) -> int:
        """Sketch cells plus current exact watchlist entries."""
        return self.stages * self.aggregates + len(self._watch)

    # -- introspection ------------------------------------------------------

    @property
    def watched(self) -> Tuple[FlowId, ...]:
        """Flows currently holding an exact watchlist bucket."""
        return tuple(self._watch)

    @property
    def epoch(self) -> int:
        """Completed aggregation epochs (hash-rotation index)."""
        return self._epoch_index

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Complete state as plain data; restoring and replaying the
        remaining packets is bit-identical to an uninterrupted run."""
        return {
            "format": self.SNAPSHOT_FORMAT,
            "sketch": [list(row) for row in self._sketch],
            "tracked": list(self._tracked),
            "watch": [
                [fid, bucket.level_scaled, bucket.peak_scaled, bucket.last_time]
                for fid, bucket in self._watch.items()
            ],
            "epoch_index": self._epoch_index,
            "epoch_start": self._epoch_start,
            "started": self._started,
            "stats": self.stats.snapshot(),
            "sink": self.sink.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        fmt = state.get("format")
        if fmt != self.SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported LOFT snapshot format {fmt!r} "
                f"(this build reads format {self.SNAPSHOT_FORMAT})"
            )
        sketch = [list(row) for row in state["sketch"]]  # type: ignore[union-attr]
        if len(sketch) != self.stages or any(
            len(row) != self.aggregates for row in sketch
        ):
            raise ValueError("snapshot sketch shape does not match detector")
        self._sketch = sketch
        self._tracked = {
            self._revive_fid(fid): None
            for fid in state["tracked"]  # type: ignore[union-attr]
        }
        watch: Dict[FlowId, LeakyBucket] = {}
        for fid, level, peak, last in state["watch"]:  # type: ignore[misc]
            bucket = LeakyBucket(self.gamma)
            bucket.level_scaled = level
            bucket.peak_scaled = peak
            bucket.last_time = last
            watch[self._revive_fid(fid)] = bucket
        self._watch = watch
        self._epoch_index = state["epoch_index"]  # type: ignore[assignment]
        self._epoch_start = state["epoch_start"]  # type: ignore[assignment]
        self._started = state["started"]  # type: ignore[assignment]
        self.stats.restore(state["stats"])  # type: ignore[arg-type]
        self.sink.restore(state["sink"])  # type: ignore[arg-type]
        if self.checker is not None:
            self.checker.reset()

    @staticmethod
    def _revive_fid(fid: object) -> FlowId:
        """JSON round-trips tuples as lists; re-tuple them so restored
        flow ids hash identically (mirrors ReportSink.restore)."""
        if isinstance(fid, list):
            return tuple(fid)
        return fid  # type: ignore[return-value]

    def __repr__(self) -> str:
        return (
            f"LOFT(aggregates={self.aggregates}, stages={self.stages}, "
            f"epoch_ns={self.epoch_ns}, watched={len(self._watch)}, "
            f"detected={len(self.sink)})"
        )
