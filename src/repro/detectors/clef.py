"""CLEF: EARDet composed with recursive large-flow detection (RLFD).

EARDet is exact only outside its ambiguity region: a flow pacing itself
between ``TH_l`` and ``TH_h`` can overuse the link forever without ever
being caught.  CLEF (Wu, Hsiao et al., "CLEF: Limiting the Damage Caused
by Large Flows in the Internet Core", arXiv:1807.05652) closes that gap
probabilistically: a small **Recursive Large-Flow Detector** re-uses one
array of ``m`` counters over a virtual ``m``-ary tree of depth ``d``,
narrowing onto a persistent in-region flow over ``d`` consecutive time
periods.  Because a counter array of size ``m`` covers ``m^d`` flow
groups, the memory cost of watching the ambiguity region is logarithmic
in the flow space.

Per level, every flow whose hashed path matches the currently selected
prefix is counted into one of the ``m`` counters; at the end of the
period the largest counter's branch is selected and the detector
descends.  At the bottom level a counter belongs to few (ideally one)
flows, so a counter exceeding the low-bandwidth threshold
``gamma t + beta`` identifies a concrete overuse flow.  The tree then
restarts with rotated hash seeds, so a flow cannot hide behind one
unlucky grouping forever.

All state is integer-exact (bytes, nanoseconds), every hash is the
deterministic :func:`~repro.detectors.hashing.splitmix64` mix, and
``snapshot``/``restore`` capture the complete state, so RLFD-based
watchers survive checkpoint/restore bit-identically.

Three classes:

- :class:`RecursiveLargeFlowDetector` — one RLFD instance.
- :class:`TwinRLFD` — the paper's twin arrangement: a fast-period RLFD
  (catches bursty in-region flows quickly) and a slow-period one
  (catches low-rate persistent flows the fast twin resets too often to
  see).
- :class:`CLEF` — EARDet + TwinRLFD as a single hybrid
  :class:`~repro.detectors.base.Detector`; exact detections and
  probabilistic ones are kept separately inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from ..core.config import EARDetConfig
from ..model.packet import FlowId, Packet
from ..model.units import NS_PER_S
from .base import Detector
from .hashing import canonical_key, splitmix64

if TYPE_CHECKING:  # pragma: no cover - typing-only, avoids an import cycle
    from ..core.eardet import EARDet


def rlfd_threshold(gamma: int, beta: int, period_ns: int) -> int:
    """The byte budget a ``TH_l``-compliant flow may use in one period.

    A flow obeying ``TH_l(t) = gamma t + beta`` sends at most
    ``gamma * period + beta`` bytes in any window of ``period`` ns, so a
    bottom-level counter above this is evidence of overuse (exact
    integer floor division; erring low only tightens detection).
    """
    return (gamma * period_ns) // NS_PER_S + beta


def rlfd_depth_for(flow_space: int, counters: int) -> int:
    """Smallest tree depth ``d`` with ``counters ** d >= flow_space``,
    i.e. deep enough that a bottom-level counter maps to roughly one
    flow (the paper's in-core sizing rule)."""
    if counters < 2:
        raise ValueError(f"counters must be >= 2, got {counters}")
    if flow_space < 1:
        raise ValueError(f"flow_space must be >= 1, got {flow_space}")
    depth = 1
    reach = counters
    while reach < flow_space:
        reach *= counters
        depth += 1
    return depth


@dataclass
class RLFDStats:
    """Operational counters for diagnostics and telemetry."""

    packets: int = 0
    counted_packets: int = 0
    off_path_packets: int = 0
    period_ends: int = 0
    descents: int = 0
    flags: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def restore(self, state: Dict[str, int]) -> None:
        for name, value in state.items():
            if name not in self.__dataclass_fields__:
                raise ValueError(f"unknown stats field {name!r}")
            setattr(self, name, value)


class RecursiveLargeFlowDetector(Detector):
    """One recursive large-flow detector (RLFD).

    Parameters
    ----------
    counters:
        Branching factor ``m``: size of the single counter array.
    depth:
        Tree depth ``d``; the detector covers ``m^d`` flow groups.
    period_ns:
        Duration of one level's observation period.
    threshold:
        Byte threshold a bottom-level counter must exceed to flag the
        triggering flow; use :func:`rlfd_threshold` to derive it from a
        low-bandwidth threshold function.
    seed:
        Salts every hash; each tree restart additionally rotates the
        seeds so groupings change between descents.
    """

    name = "rlfd"

    #: Version of the RLFD snapshot schema; bump on incompatible change.
    SNAPSHOT_FORMAT = 1

    def __init__(
        self,
        counters: int,
        depth: int,
        period_ns: int,
        threshold: int,
        seed: int = 0,
    ):
        super().__init__()
        if counters < 2:
            raise ValueError(f"counters must be >= 2, got {counters}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if period_ns <= 0:
            raise ValueError(f"period_ns must be positive, got {period_ns}")
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.counters = counters
        self.depth = depth
        self.period_ns = period_ns
        self.threshold = threshold
        self.seed = seed
        self.stats = RLFDStats()
        self._reset_state()

    # -- tree bookkeeping ---------------------------------------------------

    def _branch(self, fid: FlowId, level: int) -> int:
        """The counter index a flow hashes to at a tree level, salted by
        the current epoch so restarts regroup flows."""
        salt = splitmix64(splitmix64(self.seed ^ self._epoch) + level)
        return splitmix64(canonical_key(fid) ^ salt) % self.counters

    def _end_period(self) -> None:
        """Close the current period: descend into the largest branch, or
        restart the tree from the bottom level (ties pick the lowest
        index, so the choice is deterministic)."""
        self.stats.period_ends += 1
        if self._level < self.depth - 1:
            best = max(range(self.counters), key=lambda i: (self._counts[i], -i))
            self._path.append(best)
            self._level += 1
        else:
            self._epoch += 1
            self._level = 0
            self._path = []
            self.stats.descents += 1
        self._counts = [0] * self.counters

    def _advance_time(self, now_ns: int) -> None:
        """Fast-forward period boundaries up to ``now_ns``.  A long idle
        gap is handled arithmetically: after the first boundary all
        counters are zero, so every further selection deterministically
        picks branch 0 — no per-period loop is needed."""
        if not self._started:
            self._started = True
            self._period_start = now_ns
            return
        elapsed = (now_ns - self._period_start) // self.period_ns
        if elapsed <= 0:
            return
        self._period_start += elapsed * self.period_ns
        self._end_period()  # the only boundary where counts matter
        elapsed -= 1
        if elapsed == 0:
            return
        # Remaining boundaries see all-zero counters: selection appends
        # branch 0 until the bottom level, then the tree restarts.
        self.stats.period_ends += elapsed
        to_restart = self.depth - self._level  # boundaries until restart
        if elapsed < to_restart:
            self._path.extend([0] * elapsed)
            self._level += elapsed
            return
        elapsed -= to_restart
        full_trees, partial = divmod(elapsed, self.depth)
        self._epoch += 1 + full_trees
        self.stats.descents += 1 + full_trees
        self._level = partial
        self._path = [0] * partial
        self._counts = [0] * self.counters

    # -- Detector interface -------------------------------------------------

    def _update(self, packet: Packet) -> bool:
        self.stats.packets += 1
        self._advance_time(packet.time)
        fid = packet.fid
        for level, chosen in enumerate(self._path):
            if self._branch(fid, level) != chosen:
                self.stats.off_path_packets += 1
                return False
        self.stats.counted_packets += 1
        index = self._branch(fid, self._level)
        self._counts[index] += packet.size
        if (
            self._level == self.depth - 1
            and self._counts[index] > self.threshold
        ):
            self.stats.flags += 1
            return True
        return False

    def _reset_state(self) -> None:
        self._counts: List[int] = [0] * self.counters
        self._path: List[int] = []
        self._level = 0
        self._epoch = 0
        self._period_start = 0
        self._started = False
        self.stats.reset()

    def counter_count(self) -> int:
        return self.counters

    # -- introspection ------------------------------------------------------

    @property
    def level(self) -> int:
        """Current tree level (0 = root)."""
        return self._level

    @property
    def epoch(self) -> int:
        """Completed full-tree descents (hash-rotation epoch)."""
        return self._epoch

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Complete state as plain data; restoring and replaying the
        remaining packets is bit-identical to an uninterrupted run."""
        return {
            "format": self.SNAPSHOT_FORMAT,
            "counts": list(self._counts),
            "path": list(self._path),
            "level": self._level,
            "epoch": self._epoch,
            "period_start": self._period_start,
            "started": self._started,
            "stats": self.stats.snapshot(),
            "sink": self.sink.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        fmt = state.get("format")
        if fmt != self.SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported RLFD snapshot format {fmt!r} "
                f"(this build reads format {self.SNAPSHOT_FORMAT})"
            )
        counts = list(state["counts"])  # type: ignore[arg-type]
        if len(counts) != self.counters:
            raise ValueError(
                f"snapshot has {len(counts)} counters, detector has "
                f"{self.counters}"
            )
        self._counts = counts
        self._path = list(state["path"])  # type: ignore[arg-type]
        self._level = state["level"]  # type: ignore[assignment]
        self._epoch = state["epoch"]  # type: ignore[assignment]
        self._period_start = state["period_start"]  # type: ignore[assignment]
        self._started = state["started"]  # type: ignore[assignment]
        self.stats.restore(state["stats"])  # type: ignore[arg-type]
        self.sink.restore(state["sink"])  # type: ignore[arg-type]
        if self.checker is not None:
            self.checker.reset()

    def __repr__(self) -> str:
        return (
            f"RecursiveLargeFlowDetector(m={self.counters}, d={self.depth}, "
            f"period_ns={self.period_ns}, detected={len(self.sink)})"
        )


class TwinRLFD(Detector):
    """Two RLFDs over the same stream with different periods.

    The CLEF paper pairs a **fast** RLFD (short periods; catches bursty
    in-region flows before they do much damage) with a **slow** one
    (long periods; accumulates enough bytes from a low-rate persistent
    flow for its counter to cross the threshold).  Both see every
    packet; a flow flagged by either twin is reported here.
    """

    name = "twin-rlfd"

    SNAPSHOT_FORMAT = 1

    def __init__(self, fast: RecursiveLargeFlowDetector, slow: RecursiveLargeFlowDetector):
        super().__init__()
        self.fast = fast
        self.slow = slow

    @classmethod
    def for_config(
        cls,
        config: EARDetConfig,
        counters: int,
        depth: int,
        fast_period_ns: int,
        slow_period_ns: int,
        seed: int = 0,
    ) -> "TwinRLFD":
        """Size both twins against the config's low-bandwidth threshold
        ``TH_l(t) = gamma_l t + beta_l`` (the boundary of the ambiguity
        region the twins are watching)."""
        fast = RecursiveLargeFlowDetector(
            counters=counters,
            depth=depth,
            period_ns=fast_period_ns,
            threshold=rlfd_threshold(config.gamma_l, config.beta_l, fast_period_ns),
            seed=splitmix64(seed ^ 0xFA57),
        )
        slow = RecursiveLargeFlowDetector(
            counters=counters,
            depth=depth,
            period_ns=slow_period_ns,
            threshold=rlfd_threshold(config.gamma_l, config.beta_l, slow_period_ns),
            seed=splitmix64(seed ^ 0x510F),
        )
        return cls(fast, slow)

    def _update(self, packet: Packet) -> bool:
        # Both twins must see every packet; no short-circuiting.
        in_fast = self.fast.observe(packet)
        in_slow = self.slow.observe(packet)
        return in_fast or in_slow

    def _reset_state(self) -> None:
        self.fast.reset()
        self.slow.reset()

    def counter_count(self) -> int:
        return self.fast.counter_count() + self.slow.counter_count()

    def snapshot(self) -> Dict[str, object]:
        return {
            "format": self.SNAPSHOT_FORMAT,
            "fast": self.fast.snapshot(),
            "slow": self.slow.snapshot(),
            "sink": self.sink.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        fmt = state.get("format")
        if fmt != self.SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported TwinRLFD snapshot format {fmt!r} "
                f"(this build reads format {self.SNAPSHOT_FORMAT})"
            )
        self.fast.restore(state["fast"])  # type: ignore[arg-type]
        self.slow.restore(state["slow"])  # type: ignore[arg-type]
        self.sink.restore(state["sink"])  # type: ignore[arg-type]
        if self.checker is not None:
            self.checker.reset()

    def __repr__(self) -> str:
        return (
            f"TwinRLFD(fast={self.fast.period_ns}ns, "
            f"slow={self.slow.period_ns}ns, detected={len(self.sink)})"
        )


class CLEF(Detector):
    """The CLEF hybrid: EARDet for exact out-of-region guarantees plus a
    :class:`TwinRLFD` bounding damage from in-region flows.

    The two verdict classes stay separately inspectable:
    :attr:`exact_detections` carries EARDet's no-FNl/no-FPs guarantees;
    :attr:`probabilistic_detections` are RLFD flags, which are evidence
    of in-region overuse but carry no exactness guarantee.  The combined
    :attr:`detected` set (via the base class sink) is their union and is
    therefore *not* exact — service code that must preserve the
    exactness envelope composes the parts instead (see
    :mod:`repro.service.pipeline`).
    """

    name = "clef"

    SNAPSHOT_FORMAT = 1

    def __init__(self, eardet: EARDet, watcher: TwinRLFD):
        super().__init__()
        self.eardet = eardet
        self.watcher = watcher

    @classmethod
    def for_config(
        cls,
        config: EARDetConfig,
        counters: int,
        depth: int,
        fast_period_ns: int,
        slow_period_ns: int,
        seed: int = 0,
    ) -> "CLEF":
        # Local import: repro.core.eardet itself imports Detector from
        # this package, so a module-level import here would be a cycle.
        from ..core.eardet import EARDet

        return cls(
            EARDet(config),
            TwinRLFD.for_config(
                config, counters, depth, fast_period_ns, slow_period_ns, seed
            ),
        )

    def _update(self, packet: Packet) -> bool:
        in_exact = self.eardet.observe(packet)
        in_watch = self.watcher.observe(packet)
        return in_exact or in_watch

    def _reset_state(self) -> None:
        self.eardet.reset()
        self.watcher.reset()

    def counter_count(self) -> int:
        return self.eardet.counter_count() + self.watcher.counter_count()

    # -- verdict classes ----------------------------------------------------

    @property
    def exact_detections(self) -> Dict[FlowId, int]:
        """EARDet's detections: exact outside the ambiguity region."""
        return self.eardet.detected

    @property
    def probabilistic_detections(self) -> Dict[FlowId, int]:
        """RLFD flags: probabilistic in-region evidence, never exact."""
        return self.watcher.detected

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "format": self.SNAPSHOT_FORMAT,
            "eardet": self.eardet.snapshot(),
            "watcher": self.watcher.snapshot(),
            "sink": self.sink.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        fmt = state.get("format")
        if fmt != self.SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported CLEF snapshot format {fmt!r} "
                f"(this build reads format {self.SNAPSHOT_FORMAT})"
            )
        self.eardet.restore(state["eardet"])  # type: ignore[arg-type]
        self.watcher.restore(state["watcher"])  # type: ignore[arg-type]
        self.sink.restore(state["sink"])  # type: ignore[arg-type]
        if self.checker is not None:
            self.checker.reset()

    def __repr__(self) -> str:
        return (
            f"CLEF(eardet={self.eardet!r}, exact={len(self.eardet.sink)}, "
            f"probabilistic={len(self.watcher.sink)})"
        )
