"""Sampled NetFlow (Cisco) — packet-sampling baseline.

Related-work scheme from the paper's Section 6: sample every packet
independently with probability ``1/r``; estimate a flow's volume as the
sampled volume times ``r``.  Cheap and generic, but — as the paper notes —
sampling cannot achieve high accuracy because it lacks per-packet
information: estimates of small flows have enormous variance, producing
both false positives and false negatives around any detection threshold.
Included so benches can quantify exactly that inaccuracy against EARDet's
determinism.
"""

from __future__ import annotations

import random
from typing import Dict

from ..model.packet import FlowId, Packet
from .base import Detector


class SampledNetFlow(Detector):
    """Packet-sampled flow accounting with ``1/r`` sampling.

    Flags a flow when its *scaled* estimate (sampled bytes times ``r``)
    exceeds ``threshold``.
    """

    name = "netflow"

    def __init__(self, sampling_divisor: int, threshold: int, seed: int = 0):
        super().__init__()
        if sampling_divisor < 1:
            raise ValueError(
                f"sampling divisor must be >= 1, got {sampling_divisor}"
            )
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.sampling_divisor = sampling_divisor
        self.threshold = threshold
        self.seed = seed
        self._rng = random.Random(seed)
        self._sampled_bytes: Dict[FlowId, int] = {}

    def _update(self, packet: Packet) -> bool:
        if self._rng.randrange(self.sampling_divisor) != 0:
            return False
        total = self._sampled_bytes.get(packet.fid, 0) + packet.size
        self._sampled_bytes[packet.fid] = total
        return total * self.sampling_divisor > self.threshold

    def estimate(self, fid: FlowId) -> int:
        """Estimated flow volume: sampled bytes scaled by the divisor."""
        return self._sampled_bytes.get(fid, 0) * self.sampling_divisor

    def _reset_state(self) -> None:
        self._sampled_bytes.clear()
        self._rng = random.Random(self.seed)

    def counter_count(self) -> int:
        return len(self._sampled_bytes)
