"""Deterministic flow-ID hashing for sketch-based detectors.

Multistage filters and count-min sketches need per-stage hash functions
that (a) are deterministic across processes, so experiments are
reproducible regardless of ``PYTHONHASHSEED``, and (b) behave like
independent uniform hashes.  We canonicalize a flow ID to an integer key
and mix it with splitmix64 seeded per stage — a cheap, well-distributed
64-bit mixer (Steele et al., "Fast splittable pseudorandom number
generators").
"""

from __future__ import annotations

import zlib
from typing import Hashable

_MASK64 = (1 << 64) - 1


def canonical_key(fid: Hashable) -> int:
    """Map a flow ID to a deterministic 64-bit integer key.

    Integers map to themselves (mod 2^64); tuples and dataclass-like
    objects are folded field-wise; strings and bytes go through CRC-32 of
    their UTF-8 encoding (stable across processes, unlike ``hash(str)``).
    """
    if isinstance(fid, bool):  # bool is an int subclass; keep it distinct
        return int(fid) + 0x9E3779B97F4A7C15
    if isinstance(fid, int):
        return fid & _MASK64
    if isinstance(fid, bytes):
        return zlib.crc32(fid) | (len(fid) << 32)
    if isinstance(fid, str):
        return canonical_key(fid.encode("utf-8"))
    if isinstance(fid, tuple):
        key = 0x243F6A8885A308D3
        for element in fid:
            key = splitmix64(key ^ canonical_key(element))
        return key
    if hasattr(fid, "__dataclass_fields__"):
        return canonical_key(
            tuple(getattr(fid, name) for name in fid.__dataclass_fields__)
        )
    # Last resort: Python's hash (deterministic for ints/floats/frozensets
    # of same, but PYTHONHASHSEED-dependent for str-containing objects).
    return hash(fid) & _MASK64


def splitmix64(value: int) -> int:
    """One splitmix64 mixing round."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class StageHash:
    """A seeded hash mapping flow IDs to ``[0, buckets)``."""

    __slots__ = ("seed", "buckets")

    def __init__(self, seed: int, buckets: int):
        if buckets <= 0:
            raise ValueError(f"buckets must be positive, got {buckets}")
        self.seed = seed & _MASK64
        self.buckets = buckets

    def __call__(self, fid: Hashable) -> int:
        return splitmix64(canonical_key(fid) ^ self.seed) % self.buckets


def make_stage_hashes(stages: int, buckets: int, seed: int = 0) -> list:
    """Independent-looking per-stage hashes for a multistage filter."""
    return [
        StageHash(splitmix64(seed ^ (0xA5A5A5A5 + stage)), buckets)
        for stage in range(stages)
    ]
