"""AMF: arbitrary-window multistage filter (Estan's thesis, 2003).

The paper's second comparison baseline (Section 5.1).  AMF keeps FMF's
``d x b`` hashed-stage layout but replaces each plain counter with a
**leaky bucket** of drain rate ``r`` and bucket size ``u``; a flow is
flagged when all of its ``d`` buckets are simultaneously over ``u``.
Because buckets drain continuously rather than resetting on interval
boundaries, AMF monitors arbitrary windows and — unlike FMF — catches
bursty (Shrew) flows.  It still shares counters between hash-colliding
flows, so attack traffic inflates benign flows' buckets and causes the
false positives the paper's Figure 6 measures.

Bucket levels use the library's exact byte-nanosecond arithmetic.
"""

from __future__ import annotations

from typing import Dict, List

from ..model.packet import Packet
from ..model.units import NS_PER_S
from .base import Detector
from .hashing import StageHash, make_stage_hashes


class ArbitraryMultistageFilter(Detector):
    """Arbitrary-window multistage filter with leaky-bucket counters.

    Parameters
    ----------
    stages, buckets:
        Stage count ``d`` and buckets per stage ``b``.
    bucket_size:
        Leaky-bucket capacity ``u`` in bytes (the paper sets ``u = beta_h``).
    drain_rate:
        Bucket drain rate ``r`` in bytes/s (the paper sets ``r = gamma_h``).
    seed:
        Hash seed for reproducibility.
    """

    name = "amf"

    #: Version of the snapshot schema; bump on incompatible change.
    SNAPSHOT_FORMAT = 1

    def __init__(
        self,
        stages: int,
        buckets: int,
        bucket_size: int,
        drain_rate: int,
        seed: int = 0,
    ):
        super().__init__()
        if stages < 1:
            raise ValueError(f"need at least 1 stage, got {stages}")
        if bucket_size <= 0:
            raise ValueError(f"bucket size must be positive, got {bucket_size}")
        if drain_rate < 0:
            raise ValueError(f"drain rate must be >= 0, got {drain_rate}")
        self.stages = stages
        self.buckets = buckets
        self.bucket_size = bucket_size
        self.drain_rate = drain_rate
        self.seed = seed
        self._hashes: List[StageHash] = make_stage_hashes(stages, buckets, seed)
        # Per stage: bucket levels (scaled byte-ns) and last-drain times.
        self._levels: List[List[int]] = [[0] * buckets for _ in range(stages)]
        self._times: List[List[int]] = [[0] * buckets for _ in range(stages)]
        self._size_scaled = bucket_size * NS_PER_S

    def _update(self, packet: Packet) -> bool:
        over = 0
        size_scaled = packet.size * NS_PER_S
        for s in range(self.stages):
            index = self._hashes[s](packet.fid)
            levels, times = self._levels[s], self._times[s]
            drained = self.drain_rate * (packet.time - times[index])
            level = levels[index] - drained
            if level < 0:
                level = 0
            level += size_scaled
            levels[index] = level
            times[index] = packet.time
            if level > self._size_scaled:
                over += 1
        return over == self.stages

    def _reset_state(self) -> None:
        self._levels = [[0] * self.buckets for _ in range(self.stages)]
        self._times = [[0] * self.buckets for _ in range(self.stages)]

    def counter_count(self) -> int:
        return self.stages * self.buckets

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Complete state as plain data (the stage hashes are derived
        deterministically from the constructor arguments, so only the
        bucket levels and drain clocks need to travel)."""
        return {
            "format": self.SNAPSHOT_FORMAT,
            "levels": [list(stage) for stage in self._levels],
            "times": [list(stage) for stage in self._times],
            "sink": self.sink.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        fmt = state.get("format")
        if fmt != self.SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported AMF snapshot format {fmt!r} "
                f"(this build reads format {self.SNAPSHOT_FORMAT})"
            )
        levels = [list(stage) for stage in state["levels"]]  # type: ignore[union-attr]
        times = [list(stage) for stage in state["times"]]  # type: ignore[union-attr]
        shape_ok = (
            len(levels) == self.stages
            and len(times) == self.stages
            and all(len(stage) == self.buckets for stage in levels)
            and all(len(stage) == self.buckets for stage in times)
        )
        if not shape_ok:
            raise ValueError(
                f"snapshot shape does not match {self.stages} stages x "
                f"{self.buckets} buckets"
            )
        self._levels = levels
        self._times = times
        self.sink.restore(state["sink"])  # type: ignore[arg-type]
        if self.checker is not None:
            self.checker.reset()

    def stage_levels(self, fid, now_ns: int) -> List[float]:
        """Current bucket levels (bytes) for a flow at ``now_ns``
        (diagnostics; does not mutate state)."""
        result = []
        for s in range(self.stages):
            index = self._hashes[s](fid)
            drained = self.drain_rate * (now_ns - self._times[s][index])
            level = max(0, self._levels[s][index] - drained)
            result.append(level / NS_PER_S)
        return result
