"""Hybrid monitor: EARDet for exactness + Sample & Hold for the middle.

The paper's Section 2.2 argues the ambiguity region is acceptable
precisely because "existing techniques (e.g., Sample and Hold) can
handle the medium flows statistically".  :class:`HybridMonitor` is that
suggested composition as a working system:

- **EARDet** provides the deterministic outer guarantees — every
  ``TH_h`` violator reported, no ``TH_l``-compliant flow ever reported;
- **Sample & Hold** runs beside it, building statistical volume
  estimates for whatever the sampler catches — which, with a byte-
  sampling probability tuned to the ambiguity region's lower edge, is
  predominantly the medium flows EARDet deliberately doesn't classify.

The combined answer (:meth:`report`) is the accounting view the paper's
introduction motivates: an exact large-flow list with detection times,
plus estimated volumes for the statistically-sampled remainder, under a
total memory budget of ``n`` counters + the held table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..model.packet import FlowId, Packet
from .base import Detector
from .sample_and_hold import SampleAndHold

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us)
    from ..core.config import EARDetConfig


@dataclass(frozen=True)
class AccountingReport:
    """The hybrid's combined answer."""

    #: Exactly-detected large flows: fid -> first detection time (ns).
    large: Dict[FlowId, int]
    #: Statistically-held flows (excluding the large ones): fid -> held
    #: bytes (exact from the sampling instant onward; an undercount of
    #: the true volume).
    held_estimates: Dict[FlowId, int]
    #: Memory accounting: (eardet counters, held entries).
    state: Tuple[int, int]

    def top_estimated(self, count: int = 10) -> List[Tuple[FlowId, int]]:
        """Largest held estimates, descending."""
        return sorted(
            self.held_estimates.items(), key=lambda item: item[1], reverse=True
        )[:count]


class HybridMonitor(Detector):
    """EARDet + Sample & Hold, sharing one packet stream.

    ``observe`` returns EARDet's verdict (the deterministic guarantee);
    the sampler's state feeds :meth:`report`.  Suggested sampling
    probability: a few times ``1 / TH_l(measurement horizon)`` so flows
    above the protected envelope are held with high probability without
    holding the mice.
    """

    name = "hybrid"

    def __init__(
        self,
        config: "EARDetConfig",
        byte_sampling_probability: float,
        seed: int = 0,
    ):
        super().__init__()
        # Imported here: repro.core.eardet itself imports this package's
        # base module, so a module-level import would be circular.
        from ..core.eardet import EARDet

        self.eardet = EARDet(config)
        self.sampler = SampleAndHold(
            byte_sampling_probability=byte_sampling_probability,
            # The sampler never *reports* on its own here; accounting
            # reads its held table directly.
            threshold=1 << 62,
            seed=seed,
        )

    def _update(self, packet: Packet) -> bool:
        self.sampler.observe(packet)
        return self.eardet.observe(packet)

    def observe(self, packet: Packet) -> bool:  # delegate the sink to EARDet
        self._update(packet)
        return self.eardet.is_detected(packet.fid)

    @property
    def sink(self):  # type: ignore[override]
        return self.eardet.sink

    @sink.setter
    def sink(self, value):  # the base class assigns a placeholder sink
        self._placeholder_sink = value

    def report(self) -> AccountingReport:
        """The combined accounting view (see class docstring)."""
        large = self.eardet.detected
        held = {
            fid: held_bytes
            for fid, held_bytes in self.sampler._held.items()
            if fid not in large
        }
        return AccountingReport(
            large=large,
            held_estimates=held,
            state=(self.eardet.counter_count(), self.sampler.counter_count()),
        )

    def _reset_state(self) -> None:
        self.eardet.reset()
        self.sampler.reset()

    def counter_count(self) -> int:
        return self.eardet.counter_count() + self.sampler.counter_count()
