"""Sample and Hold (Estan & Varghese, TOCS 2003).

Related-work sampling technique from the paper's Section 6 — and the
scheme the paper suggests for handling *medium* flows statistically once
EARDet has classified the large and small ones.  Every byte is sampled
with probability ``p``; once a flow is sampled it is *held*: an exact
per-flow counter tracks all of its subsequent bytes.  Flows whose held
count exceeds the threshold are flagged.

Deterministically seeded so experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..model.packet import FlowId, Packet
from .base import Detector
from .hashing import canonical_key


class SampleAndHold(Detector):
    """Sample-and-hold large-flow detector over a landmark window.

    Parameters
    ----------
    byte_sampling_probability:
        Probability ``p`` of starting to hold a flow per byte observed;
        a packet of size ``w`` from an unheld flow is sampled with
        probability ``1 - (1-p)^w``.
    threshold:
        Held-byte count above which a flow is flagged.
    window_ns:
        Optional measurement interval; held entries reset at interval
        boundaries, matching the original's periodic flush.  ``None``
        means one landmark window over the whole stream.
    seed:
        RNG seed.
    """

    name = "sample-and-hold"

    #: Version of the snapshot schema; bump on incompatible change.
    SNAPSHOT_FORMAT = 1

    def __init__(
        self,
        byte_sampling_probability: float,
        threshold: int,
        window_ns: int = None,
        seed: int = 0,
    ):
        super().__init__()
        if not 0 < byte_sampling_probability <= 1:
            raise ValueError(
                f"sampling probability must be in (0, 1], got "
                f"{byte_sampling_probability}"
            )
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.byte_sampling_probability = byte_sampling_probability
        self.threshold = threshold
        self.window_ns = window_ns
        self.seed = seed
        self._rng = random.Random(seed)
        self._held: Dict[FlowId, int] = {}
        self._window_index = None

    def _update(self, packet: Packet) -> bool:
        if self.window_ns is not None:
            window = packet.time // self.window_ns
            if window != self._window_index:
                self._window_index = window
                self._held.clear()
        count = self._held.get(packet.fid)
        if count is not None:
            count += packet.size
            self._held[packet.fid] = count
            return count > self.threshold
        sample_probability = 1 - (1 - self.byte_sampling_probability) ** packet.size
        if self._rng.random() < sample_probability:
            self._held[packet.fid] = packet.size
            return packet.size > self.threshold
        return False

    def _reset_state(self) -> None:
        self._held.clear()
        self._window_index = None
        self._rng = random.Random(self.seed)

    def counter_count(self) -> int:
        """Held entries — grows with the traffic, the scalability issue the
        paper contrasts with EARDet's fixed ``n``."""
        return len(self._held)

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Complete state as plain data — including the sampling RNG's
        Mersenne state, so a restored detector makes the *same* future
        sampling decisions and replays bit-identically."""
        version, internal, gauss_next = self._rng.getstate()
        return {
            "format": self.SNAPSHOT_FORMAT,
            "held": sorted(
                self._held.items(),
                key=lambda item: canonical_key(item[0]),
            ),
            "window_index": self._window_index,
            "rng": [version, list(internal), gauss_next],
            "sink": self.sink.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        fmt = state.get("format")
        if fmt != self.SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported sample-and-hold snapshot format {fmt!r} "
                f"(this build reads format {self.SNAPSHOT_FORMAT})"
            )
        held: List[object] = state["held"]  # type: ignore[assignment]
        self._held = {
            (tuple(fid) if isinstance(fid, list) else fid): count
            for fid, count in held
        }
        self._window_index = state["window_index"]  # type: ignore[assignment]
        version, internal, gauss_next = state["rng"]  # type: ignore[misc]
        self._rng.setstate((version, tuple(internal), gauss_next))
        self.sink.restore(state["sink"])  # type: ignore[arg-type]
        if self.checker is not None:
            self.checker.reset()
