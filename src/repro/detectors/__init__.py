"""Large-flow detectors: EARDet's baselines and the related-work family.

All detectors share the :class:`~repro.detectors.base.Detector` interface,
so the experiment runner treats them uniformly.  The paper's two
comparison baselines are :class:`FixedMultistageFilter` (FMF) and
:class:`ArbitraryMultistageFilter` (AMF); the remaining schemes implement
the related-work survey of Section 6 for the extended comparison benches.
The ambiguity-region watchers — :class:`RecursiveLargeFlowDetector` /
:class:`TwinRLFD` / :class:`CLEF` (arXiv 1807.05652) and :class:`LOFT`
(arXiv 2102.01397) — cover the band where EARDet is deliberately silent;
their verdicts are probabilistic and must never be merged into an exact
detection set.  ``DETECTOR_CATALOG`` enumerates every scheme with its
exactness class (``eardet detectors`` renders it).
"""

from .amf import ArbitraryMultistageFilter
from .base import Detector
from .catalog import (
    DETECTOR_CATALOG,
    EXACTNESS_CLASSES,
    CatalogEntry,
    render_catalog,
)
from .clef import CLEF, RecursiveLargeFlowDetector, TwinRLFD, rlfd_threshold
from .count_min import CountMinDetector, CountMinSketch
from .exact import ExactLeakyBucketDetector
from .fmf import FixedMultistageFilter, fp_probability_bound
from .hashing import StageHash, canonical_key, make_stage_hashes, splitmix64
from .hybrid import AccountingReport, HybridMonitor
from .lossy_counting import LossyCounting, LossyCountingDetector
from .misra_gries import (
    LandmarkMisraGriesDetector,
    MisraGries,
    exact_frequent_flows,
)
from .loft import LOFT
from .netflow import SampledNetFlow
from .sample_and_hold import SampleAndHold
from .sliding_window import SlidingWindowDetector
from .space_saving import SpaceSaving, SpaceSavingDetector

__all__ = [
    "AccountingReport",
    "ArbitraryMultistageFilter",
    "CLEF",
    "CatalogEntry",
    "CountMinDetector",
    "CountMinSketch",
    "DETECTOR_CATALOG",
    "Detector",
    "EXACTNESS_CLASSES",
    "ExactLeakyBucketDetector",
    "FixedMultistageFilter",
    "HybridMonitor",
    "LOFT",
    "LandmarkMisraGriesDetector",
    "LossyCounting",
    "LossyCountingDetector",
    "MisraGries",
    "RecursiveLargeFlowDetector",
    "SampleAndHold",
    "SampledNetFlow",
    "SlidingWindowDetector",
    "SpaceSaving",
    "SpaceSavingDetector",
    "StageHash",
    "TwinRLFD",
    "canonical_key",
    "exact_frequent_flows",
    "fp_probability_bound",
    "make_stage_hashes",
    "render_catalog",
    "rlfd_threshold",
    "splitmix64",
]
