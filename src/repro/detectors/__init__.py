"""Large-flow detectors: EARDet's baselines and the related-work family.

All detectors share the :class:`~repro.detectors.base.Detector` interface,
so the experiment runner treats them uniformly.  The paper's two
comparison baselines are :class:`FixedMultistageFilter` (FMF) and
:class:`ArbitraryMultistageFilter` (AMF); the remaining schemes implement
the related-work survey of Section 6 for the extended comparison benches.
"""

from .amf import ArbitraryMultistageFilter
from .base import Detector
from .count_min import CountMinDetector, CountMinSketch
from .exact import ExactLeakyBucketDetector
from .fmf import FixedMultistageFilter, fp_probability_bound
from .hashing import StageHash, canonical_key, make_stage_hashes, splitmix64
from .hybrid import AccountingReport, HybridMonitor
from .lossy_counting import LossyCounting, LossyCountingDetector
from .misra_gries import (
    LandmarkMisraGriesDetector,
    MisraGries,
    exact_frequent_flows,
)
from .netflow import SampledNetFlow
from .sample_and_hold import SampleAndHold
from .sliding_window import SlidingWindowDetector
from .space_saving import SpaceSaving, SpaceSavingDetector

__all__ = [
    "AccountingReport",
    "ArbitraryMultistageFilter",
    "CountMinDetector",
    "CountMinSketch",
    "Detector",
    "ExactLeakyBucketDetector",
    "FixedMultistageFilter",
    "HybridMonitor",
    "LandmarkMisraGriesDetector",
    "LossyCounting",
    "LossyCountingDetector",
    "MisraGries",
    "SampleAndHold",
    "SampledNetFlow",
    "SlidingWindowDetector",
    "SpaceSaving",
    "SpaceSavingDetector",
    "StageHash",
    "canonical_key",
    "exact_frequent_flows",
    "fp_probability_bound",
    "make_stage_hashes",
    "splitmix64",
]
