"""Lossy Counting (Manku & Motwani, VLDB 2002) — counter-based baseline.

Related-work algorithm from the paper's Section 6.  Lossy Counting divides
the stream into buckets of width ``ceil(1/epsilon)`` (unit items; we
generalize to byte weights with bucket width ``W = epsilon-fraction of
bytes``): each stored item keeps a count and a maximum possible
undercount ``delta``; at bucket boundaries, items with
``count + delta <= bucket index`` are evicted.  The guarantee mirrors
Misra-Gries': estimates undershoot true counts by at most
``epsilon * total``, so items above ``(phi) * total`` are never missed
when queried with threshold ``(phi - epsilon) * total``.

As a *large-flow detector* it works over landmark windows and shares the
limitations the paper ascribes to that family (no virtual traffic, no
arbitrary windows); it is included for the related-work comparison
benches, not as a paper baseline.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..model.packet import FlowId, Packet
from .base import Detector


class LossyCounting:
    """Byte-weighted lossy counting summary.

    ``epsilon`` is the allowed undercount as a fraction of the total bytes
    seen.  State is O(1/epsilon * log(epsilon * total)) in the worst case.
    """

    def __init__(self, epsilon: float):
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self.total_weight = 0
        #: item -> (count, max undercount delta)
        self._entries: Dict[FlowId, Tuple[int, int]] = {}
        self._bucket_width = max(1, round(1 / epsilon))
        self._current_bucket = 1
        self._bytes_in_bucket = 0

    def add(self, item: FlowId, weight: int = 1) -> None:
        """Fold one weighted item into the summary."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.total_weight += weight
        entry = self._entries.get(item)
        if entry is not None:
            self._entries[item] = (entry[0] + weight, entry[1])
        else:
            self._entries[item] = (weight, self._current_bucket - 1)
        self._bytes_in_bucket += weight
        while self._bytes_in_bucket >= self._bucket_width:
            self._bytes_in_bucket -= self._bucket_width
            self._compress()
            self._current_bucket += 1

    def _compress(self) -> None:
        """Evict items whose count + delta falls at or below the current
        bucket index."""
        bucket = self._current_bucket
        self._entries = {
            item: (count, delta)
            for item, (count, delta) in self._entries.items()
            if count + delta > bucket
        }

    def estimate(self, item: FlowId) -> int:
        """Lower-bound estimate of the item's weight (0 if evicted)."""
        entry = self._entries.get(item)
        return entry[0] if entry else 0

    def frequent_items(self, phi: float) -> Dict[FlowId, int]:
        """Items with estimated weight above ``(phi - epsilon) * total`` —
        guaranteed to include everything above ``phi * total``."""
        cutoff = (phi - self.epsilon) * self.total_weight
        return {
            item: count
            for item, (count, delta) in self._entries.items()
            if count > cutoff
        }

    def state_size(self) -> int:
        """Number of stored entries (the algorithm's memory driver)."""
        return len(self._entries)


class LossyCountingDetector(Detector):
    """Lossy counting as a landmark-window large-flow detector: flags a
    flow when its stored count exceeds ``beta_report``."""

    name = "lossy-counting"

    def __init__(self, epsilon: float, beta_report: int):
        super().__init__()
        if beta_report <= 0:
            raise ValueError(f"beta_report must be positive, got {beta_report}")
        self.epsilon = epsilon
        self.beta_report = beta_report
        self.summary = LossyCounting(epsilon)

    def _update(self, packet: Packet) -> bool:
        self.summary.add(packet.fid, packet.size)
        return self.summary.estimate(packet.fid) > self.beta_report

    def _reset_state(self) -> None:
        self.summary = LossyCounting(self.epsilon)

    def counter_count(self) -> int:
        return self.summary.state_size()
