"""Sliding-window frequent-flows detector (block/basic-window approach).

Completes the paper's window-model taxonomy (Section 2.1): landmark
(Misra-Gries, FMF, ...), **sliding** (this module, after Golab et
al. [21] and the PODS line of work [5, 26]), and arbitrary (EARDet).

The sliding window of length ``W`` is approximated by ``k`` equal
*blocks*: each block accumulates its own byte-weighted Misra-Gries
summary, the newest block fills as packets arrive, and blocks older than
the window are evicted whole.  A flow's windowed volume estimate is the
sum of its per-block estimates — undershooting the true windowed volume
by at most ``(block total)/(n+1)`` per block plus up to one block of
staleness at the window's trailing edge, the classic jumping-window
approximation.

As the paper's Figure 1 argues, even an *exact* sliding-window monitor
misses bursts no window of size exactly ``W`` contains; this detector
exists so the experiments can demonstrate that with a real algorithm
rather than an idealized one.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from ..model.packet import FlowId, Packet
from .base import Detector
from .misra_gries import MisraGries


class SlidingWindowDetector(Detector):
    """Jumping-window heavy-flow detector with per-block MG summaries.

    Parameters
    ----------
    window_ns:
        Sliding-window length ``W``.
    blocks:
        Number of blocks the window is divided into; more blocks = finer
        trailing-edge granularity, ``blocks`` x ``counters`` total state.
    counters:
        Misra-Gries counters per block.
    beta_report:
        Byte threshold on the windowed estimate above which a flow is
        flagged.
    """

    name = "sliding-mg"

    def __init__(self, window_ns: int, blocks: int, counters: int, beta_report: int):
        super().__init__()
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns}")
        if blocks < 1:
            raise ValueError(f"need at least 1 block, got {blocks}")
        if beta_report <= 0:
            raise ValueError(f"beta_report must be positive, got {beta_report}")
        self.window_ns = window_ns
        self.blocks = blocks
        self.counters = counters
        self.beta_report = beta_report
        self.block_ns = max(1, window_ns // blocks)
        #: block index -> MG summary, oldest first.
        self._summaries: "OrderedDict[int, MisraGries]" = OrderedDict()

    def _update(self, packet: Packet) -> bool:
        block = packet.time // self.block_ns
        self._evict_expired(block)
        summary = self._summaries.get(block)
        if summary is None:
            summary = MisraGries(self.counters)
            self._summaries[block] = summary
        summary.add(packet.fid, packet.size)
        return self.estimate(packet.fid) > self.beta_report

    def _evict_expired(self, current_block: int) -> None:
        # A block is live while any instant of it lies inside the window
        # [t - W, t); with t in `current_block`, the oldest live block is
        # current_block - blocks + 1... kept one extra for the partial
        # trailing block, matching the standard jumping window.
        oldest_live = current_block - self.blocks
        while self._summaries:
            oldest = next(iter(self._summaries))
            if oldest >= oldest_live:
                break
            del self._summaries[oldest]

    def estimate(self, fid: FlowId) -> int:
        """Windowed volume estimate: sum of live per-block estimates."""
        return sum(summary.estimate(fid) for summary in self._summaries.values())

    def window_estimates(self) -> Dict[FlowId, int]:
        """Every flow currently holding a counter, with its estimate."""
        totals: Dict[FlowId, int] = {}
        for summary in self._summaries.values():
            for fid, value in summary.candidates().items():
                totals[fid] = totals.get(fid, 0) + value
        return totals

    def _reset_state(self) -> None:
        self._summaries.clear()

    def counter_count(self) -> int:
        return self.blocks * self.counters
