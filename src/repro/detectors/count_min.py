"""Count-Min sketch (Cormode & Muthukrishnan, J. Algorithms 2005).

Related-work sketch from the paper's Section 6: ``d`` rows of ``w``
counters with per-row hashes; updates add the weight to one counter per
row and the estimate is the row-wise minimum, which never undershoots and
overshoots by at most ``epsilon * total`` with probability
``1 - delta`` for ``w = ceil(e/epsilon)``, ``d = ceil(ln 1/delta)``.

The paper notes count-min's construction resembles multistage filters but
supports a richer query set at higher memory cost; the detector wrapper
here matches FMF's flag criterion (estimate above a byte threshold) so the
related-work benches can compare the families directly.
"""

from __future__ import annotations

import math
from typing import List

from ..model.packet import FlowId, Packet
from .base import Detector
from .hashing import StageHash, make_stage_hashes


class CountMinSketch:
    """Byte-weighted count-min sketch."""

    def __init__(self, rows: int, width: int, seed: int = 0):
        if rows < 1 or width < 1:
            raise ValueError(f"rows and width must be positive, got {rows}x{width}")
        self.rows = rows
        self.width = width
        self.total_weight = 0
        self._hashes: List[StageHash] = make_stage_hashes(rows, width, seed)
        self._counters: List[List[int]] = [[0] * width for _ in range(rows)]

    @classmethod
    def from_error_bounds(
        cls, epsilon: float, delta: float, seed: int = 0
    ) -> "CountMinSketch":
        """Dimension the sketch for overcount <= ``epsilon * total`` with
        probability >= ``1 - delta``."""
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ValueError("epsilon and delta must be in (0, 1)")
        width = math.ceil(math.e / epsilon)
        rows = math.ceil(math.log(1 / delta))
        return cls(rows=max(rows, 1), width=width, seed=seed)

    def add(self, item: FlowId, weight: int = 1) -> None:
        """Fold one weighted item in."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.total_weight += weight
        for row, hasher in enumerate(self._hashes):
            self._counters[row][hasher(item)] += weight

    def estimate(self, item: FlowId) -> int:
        """Row-wise minimum — an upper bound on the item's true weight."""
        return min(
            self._counters[row][hasher(item)]
            for row, hasher in enumerate(self._hashes)
        )

    def state_size(self) -> int:
        return self.rows * self.width


class CountMinDetector(Detector):
    """Count-min sketch as a landmark-window detector (flag when the
    estimate exceeds ``beta_report``)."""

    name = "count-min"

    def __init__(self, rows: int, width: int, beta_report: int, seed: int = 0):
        super().__init__()
        if beta_report <= 0:
            raise ValueError(f"beta_report must be positive, got {beta_report}")
        self.rows = rows
        self.width = width
        self.beta_report = beta_report
        self.seed = seed
        self.sketch = CountMinSketch(rows, width, seed)

    def _update(self, packet: Packet) -> bool:
        self.sketch.add(packet.fid, packet.size)
        return self.sketch.estimate(packet.fid) > self.beta_report

    def _reset_state(self) -> None:
        self.sketch = CountMinSketch(self.rows, self.width, self.seed)

    def counter_count(self) -> int:
        return self.rows * self.width
