"""The classic Misra-Gries frequent-items algorithm (landmark window).

EARDet's ancestor (paper Section 3.2): with ``n`` counters over a stream
of ``m`` unit items, every item occurring more than ``m/(n+1)`` times ends
with a non-zero counter (no false negatives over the landmark window
``[0, now)``), but infrequent items may also hold counters — the original
algorithm removes them with a second pass, which a line-rate detector
cannot afford.

This implementation generalizes to byte-weighted packets, exposes the
frequent-item guarantee for tests, and doubles as a *landmark-window*
large-flow detector: flagging flows whose counter exceeds
``gamma' * t`` - style thresholds, which is how the paper's Theorems 2/3
relate landmark algorithms to arbitrary-window ones.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..core.counters import CounterStore, HeapCounterStore
from ..model.packet import FlowId, Packet
from .base import Detector


class MisraGries:
    """Weighted Misra-Gries summary over a landmark window.

    Not a :class:`Detector` — it answers frequent-items queries, matching
    the original problem statement.  The summary guarantee: for every flow
    ``f``, ``volume(f) - total/(n+1) <= estimate(f) <= volume(f)``.
    """

    def __init__(self, counters: int, store_factory=HeapCounterStore):
        if counters < 1:
            raise ValueError(f"need at least 1 counter, got {counters}")
        self._store: CounterStore = store_factory(counters)
        self.counters = counters
        self.total_weight = 0

    def add(self, item: FlowId, weight: int = 1) -> None:
        """Fold one weighted item into the summary."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.total_weight += weight
        store = self._store
        if item in store:
            store.increment(item, weight)
        elif not store.is_full:
            store.insert(item, weight)
        else:
            decrement = min(weight, store.min_value())
            store.decrement_all(decrement)
            leftover = weight - decrement
            if leftover > 0:
                store.insert(item, leftover)

    def add_stream(self, items: Iterable[Tuple[FlowId, int]]) -> "MisraGries":
        """Fold ``(item, weight)`` pairs; returns self."""
        for item, weight in items:
            self.add(item, weight)
        return self

    def estimate(self, item: FlowId) -> int:
        """Lower-bound estimate of the item's total weight (0 if absent)."""
        return self._store.get(item) if item in self._store else 0

    def candidates(self) -> Dict[FlowId, int]:
        """All stored items with their counter values — a superset of every
        item heavier than ``total_weight / (counters + 1)``."""
        return self._store.as_dict()

    def frequent_items(self, threshold_weight: int) -> Dict[FlowId, int]:
        """Candidates whose *counter* exceeds ``threshold_weight`` — the
        one-pass approximation; a second pass over the stream is needed for
        exactness, as the paper discusses."""
        return {
            item: value
            for item, value in self._store.items()
            if value > threshold_weight
        }


class LandmarkMisraGriesDetector(Detector):
    """Misra-Gries used as a landmark-window large-flow detector.

    Flags a flow when its counter exceeds ``beta_report``.  Satisfies the
    paper's L2 (no FNl over ``[0, t)`` against
    ``gamma' t + beta'`` with ``gamma' = rho/(n+1)``, ``beta' =
    beta_report``) but, lacking virtual traffic, measures against the
    *stream's* byte count rather than the link capacity — the gap EARDet
    closes.  Used by the Figure 1 experiment to show landmark-window
    evasion.
    """

    name = "mg-landmark"

    def __init__(self, counters: int, beta_report: int):
        super().__init__()
        if beta_report <= 0:
            raise ValueError(f"beta_report must be positive, got {beta_report}")
        self.summary = MisraGries(counters)
        self.beta_report = beta_report

    def _update(self, packet: Packet) -> bool:
        self.summary.add(packet.fid, packet.size)
        return self.summary.estimate(packet.fid) > self.beta_report

    def _reset_state(self) -> None:
        self.summary = MisraGries(self.summary.counters)

    def counter_count(self) -> int:
        return self.summary.counters


def exact_frequent_flows(packets, counters: int, threshold_weight: int):
    """The original *two-pass* Misra-Gries procedure, exactly.

    Pass 1 builds the one-pass summary (a superset of every flow heavier
    than ``total/(counters+1)``); pass 2 re-counts the candidates' true
    volumes and drops the false positives — the step a one-pass line-rate
    detector cannot afford, which is why EARDet needed a different route
    to the no-FPs property (Section 3.2).

    Returns ``{fid: exact volume}`` for every flow whose true volume
    strictly exceeds ``threshold_weight``.  ``packets`` must be
    re-iterable (pass it a list or a :class:`~repro.model.stream.PacketStream`).
    """
    summary = MisraGries(counters)
    for packet in packets:
        summary.add(packet.fid, packet.size)
    candidates = set(summary.candidates())
    exact: Dict[FlowId, int] = {fid: 0 for fid in candidates}
    for packet in packets:
        if packet.fid in candidates:
            exact[packet.fid] += packet.size
    return {
        fid: volume for fid, volume in exact.items() if volume > threshold_weight
    }
