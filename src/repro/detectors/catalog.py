"""A registry of every detector the library ships, with its exactness class.

The paper's central distinction is *where* a scheme's answers can be
trusted: EARDet is exact outside the ambiguity region, the watchers
(RLFD/CLEF/LOFT) are probabilistic evidence inside it, the counter-based
summaries give deterministic approximation bounds, and the sampling /
sketching baselines are probabilistic everywhere.  The catalog makes
that taxonomy a first-class, enumerable artifact — ``eardet detectors``
renders it — so a deployment can never confuse the guarantee class of
the scheme it armed.

Classes are resolved lazily from dotted paths: the catalog can name
:class:`repro.core.eardet.EARDet` without importing :mod:`repro.core`
at package-import time (``repro.core.eardet`` itself imports
``repro.detectors.base``).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from importlib import import_module
from typing import Dict, List, Tuple

__all__ = [
    "DETECTOR_CATALOG",
    "EXACTNESS_CLASSES",
    "CatalogEntry",
    "render_catalog",
]

#: Exactness taxonomy, strongest guarantee first.  The class names what
#: the scheme's positive/negative answers mean, not how good it is.
EXACTNESS_CLASSES: Dict[str, str] = {
    "exact": (
        "no false positives and no false negatives against the scheme's "
        "own threshold, at per-flow state cost"
    ),
    "exact-outside-ambiguity": (
        "no false negatives above TH_h and no false positives below "
        "TH_l over every window; flows between the thresholds are "
        "undefined (the ambiguity region)"
    ),
    "deterministic-approximate": (
        "deterministic error bound (no randomness): frequency estimates "
        "are off by at most a computable epsilon, so misses/extras are "
        "confined to an epsilon band around the threshold"
    ),
    "probabilistic": (
        "verdicts hold with high probability only — hash collisions or "
        "sampling can produce false positives and false negatives; "
        "never merge these into an exact detection set"
    ),
    "hybrid": (
        "composition of an exact member and a probabilistic member; "
        "each sub-verdict keeps its own class and must be read "
        "separately"
    ),
}


@dataclass(frozen=True)
class CatalogEntry:
    """One detector in the registry (class resolved on demand)."""

    name: str
    module: str
    cls_name: str
    exactness: str
    summary: str

    def __post_init__(self) -> None:
        if self.exactness not in EXACTNESS_CLASSES:
            raise ValueError(
                f"unknown exactness class {self.exactness!r} for "
                f"{self.name!r}"
            )

    def resolve(self) -> type:
        """Import and return the detector class."""
        return getattr(import_module(self.module), self.cls_name)

    @property
    def checkpointable(self) -> bool:
        """Whether the detector supports exact snapshot()/restore()."""
        cls = self.resolve()
        return hasattr(cls, "snapshot") and hasattr(cls, "restore")

    def parameters(self) -> List[str]:
        """Constructor parameter names (the scheme's sizing knobs)."""
        signature = inspect.signature(self.resolve().__init__)
        return [name for name in signature.parameters if name != "self"]


def _entry(
    name: str, module: str, cls_name: str, exactness: str, summary: str
) -> Tuple[str, CatalogEntry]:
    return name, CatalogEntry(name, module, cls_name, exactness, summary)


#: Every detector the library ships, keyed by its scheme ``name``.
DETECTOR_CATALOG: Dict[str, CatalogEntry] = dict(
    [
        _entry(
            "eardet",
            "repro.core.eardet",
            "EARDet",
            "exact-outside-ambiguity",
            "The paper's arbitrary-window detector: n leaky buckets "
            "with decrement-all eviction.",
        ),
        _entry(
            "exact",
            "repro.detectors.exact",
            "ExactLeakyBucketDetector",
            "exact",
            "One leaky bucket per flow — the oracle the experiments "
            "compare everything against.",
        ),
        _entry(
            "rlfd",
            "repro.detectors.clef",
            "RecursiveLargeFlowDetector",
            "probabilistic",
            "Recursive m-ary subdivision over d levels; localizes an "
            "in-region flow across tree descents.",
        ),
        _entry(
            "twin-rlfd",
            "repro.detectors.clef",
            "TwinRLFD",
            "probabilistic",
            "Two RLFDs on fast and slow periods covering both bursty "
            "and slow in-region flows.",
        ),
        _entry(
            "clef",
            "repro.detectors.clef",
            "CLEF",
            "hybrid",
            "EARDet (exact outside the region) composed with twin "
            "RLFDs watching inside it.",
        ),
        _entry(
            "loft",
            "repro.detectors.loft",
            "LOFT",
            "probabilistic",
            "Per-epoch conservative sketch aggregation with inversion "
            "into an exact bounded watchlist.",
        ),
        _entry(
            "fmf",
            "repro.detectors.fmf",
            "FixedMultistageFilter",
            "probabilistic",
            "Fixed-window multistage filter (Estan-Varghese); resets "
            "each interval, misses straddling bursts.",
        ),
        _entry(
            "amf",
            "repro.detectors.amf",
            "ArbitraryMultistageFilter",
            "probabilistic",
            "Multistage filter with leaky-bucket counters; arbitrary "
            "windows, shared-counter false positives.",
        ),
        _entry(
            "count-min",
            "repro.detectors.count_min",
            "CountMinDetector",
            "probabilistic",
            "Count-min sketch with threshold test; one-sided "
            "overestimation from collisions.",
        ),
        _entry(
            "netflow",
            "repro.detectors.netflow",
            "SampledNetFlow",
            "probabilistic",
            "Packet-sampled accounting in the style of sampled "
            "NetFlow.",
        ),
        _entry(
            "sample-and-hold",
            "repro.detectors.sample_and_hold",
            "SampleAndHold",
            "probabilistic",
            "Byte-probability sampling, then exact per-flow hold "
            "counters.",
        ),
        _entry(
            "mg-landmark",
            "repro.detectors.misra_gries",
            "LandmarkMisraGriesDetector",
            "deterministic-approximate",
            "Misra-Gries heavy hitters over landmark windows "
            "(epsilon = W/k underestimation bound).",
        ),
        _entry(
            "space-saving",
            "repro.detectors.space_saving",
            "SpaceSavingDetector",
            "deterministic-approximate",
            "Space-Saving stream summary; overestimate bounded by the "
            "minimum counter.",
        ),
        _entry(
            "lossy-counting",
            "repro.detectors.lossy_counting",
            "LossyCountingDetector",
            "deterministic-approximate",
            "Lossy Counting with per-bucket pruning and a deterministic "
            "undercount bound.",
        ),
        _entry(
            "sliding-mg",
            "repro.detectors.sliding_window",
            "SlidingWindowDetector",
            "deterministic-approximate",
            "Sliding-window heavy hitters via per-block Misra-Gries "
            "summaries.",
        ),
        _entry(
            "hybrid",
            "repro.detectors.hybrid",
            "HybridMonitor",
            "hybrid",
            "EARDet for large/small classification plus a statistical "
            "sampler for the medium band.",
        ),
    ]
)


def render_catalog(verbose: bool = False) -> str:
    """Human-readable catalog listing, one block per detector."""
    lines: List[str] = [f"{len(DETECTOR_CATALOG)} detectors:"]
    for name, entry in sorted(DETECTOR_CATALOG.items()):
        checkpoint = (
            "snapshot/restore" if entry.checkpointable else "no snapshot"
        )
        lines.append(f"  {name}  [{entry.exactness}]  ({checkpoint})")
        lines.append(f"    {entry.summary}")
        lines.append(f"    parameters: {', '.join(entry.parameters())}")
    if verbose:
        lines.append("")
        lines.append("exactness classes:")
        for exactness, meaning in EXACTNESS_CLASSES.items():
            lines.append(f"  {exactness}: {meaning}")
    return "\n".join(lines)
