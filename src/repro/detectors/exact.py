"""Exact per-flow leaky-bucket detector (the impractical ideal).

Section 2.3 of the paper notes that per-flow leaky buckets give exact,
instantaneous detection of large flows — at the cost of per-flow state,
which is precisely what EARDet avoids.  This detector is the library's
behavioural oracle: it flags a flow at the first packet at which some
window's volume strictly exceeds ``TH(t) = gamma t + beta``, with exact
integer arithmetic, and is used both as a baseline and by the ground-truth
labeler.
"""

from __future__ import annotations

from typing import Dict

from ..model.packet import FlowId, Packet
from ..model.thresholds import LeakyBucket, ThresholdFunction
from ..model.units import NS_PER_S
from .base import Detector


class ExactLeakyBucketDetector(Detector):
    """One leaky bucket per flow; exact arbitrary-window detection.

    A flow is flagged at the exact packet where its bucket (drain rate
    ``threshold.gamma``) first strictly exceeds ``threshold.beta`` —
    equivalently, where some window [t1, t2) first has
    ``vol > gamma (t2-t1) + beta``.
    """

    name = "exact"

    def __init__(self, threshold: ThresholdFunction):
        super().__init__()
        self.threshold = threshold
        self._buckets: Dict[FlowId, LeakyBucket] = {}
        self._beta_scaled = threshold.beta * NS_PER_S

    def _update(self, packet: Packet) -> bool:
        bucket = self._buckets.get(packet.fid)
        if bucket is None:
            bucket = LeakyBucket(self.threshold.gamma)
            bucket.last_time = packet.time
            self._buckets[packet.fid] = bucket
        level = bucket.add(packet.time, packet.size)
        return level > self._beta_scaled

    def _reset_state(self) -> None:
        self._buckets.clear()

    def counter_count(self) -> int:
        """Per-flow state: one bucket per flow seen so far."""
        return len(self._buckets)
