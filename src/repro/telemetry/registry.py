"""Typed, integer-exact metrics registry.

The detector's value proposition is *exactness*, and its observability
layer must not be the place where that property quietly leaks away: a
float-accumulating metrics pipeline turns "processed exactly 10^9
packets" into "processed about 10^9 packets".  Every primitive here
therefore stores plain Python integers:

- :class:`Counter` — monotone event count.  ``inc(n)`` adds; ``set_total``
  syncs from an external exact accumulator (e.g.
  :class:`~repro.core.eardet.EARDetStats`) and *enforces* monotonicity,
  so a buggy sync can never silently rewind a counter.
- :class:`Gauge` — a point-in-time integer (queue depth, blacklist
  occupancy, a first-loss timestamp).  May be ``None`` while genuinely
  unknown; exposition renders unknown as the documented sentinel.
- :class:`Histogram` — fixed integer bucket boundaries chosen at
  creation (latency in ns, batch sizes).  Observations, the running
  ``sum`` and ``count`` are all integers; bucket counts are cumulative
  in Prometheus ``le`` style.

Metrics live in families keyed by label values
(:class:`MetricFamily`), registered in a :class:`MetricRegistry`.  When
telemetry is off the service uses :data:`NULL_REGISTRY`, whose factory
methods all return the same inert metric object — the hot path pays one
no-op method call, nothing else (see ``tests/test_telemetry.py`` for
the fast-path contract and ``benchmarks/trajectory.py`` for the
measured overhead).

Thread-safety: single field updates (counter/gauge) ride CPython's
atomic int operations; histograms mutate several fields per observation
and take a per-family lock, as does a registry snapshot — an exposition
scrape never sees a half-applied observation.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
    "NullMetric",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "DEFAULT_SIZE_BUCKETS",
]

#: Prometheus-compatible metric / label name grammars.
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram boundaries for nanosecond latencies: 250ns to 1s in
#: roughly 1-2.5-5 decades — wide enough for a per-packet fast path and
#: a multi-ms checkpoint write on the same scale.
DEFAULT_LATENCY_BUCKETS_NS: Tuple[int, ...] = (
    250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
    25_000_000, 50_000_000, 100_000_000, 250_000_000, 500_000_000,
    1_000_000_000,
)

#: Default boundaries for cardinalities (batch sizes, queue depths).
DEFAULT_SIZE_BUCKETS: Tuple[int, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192,
    16_384, 65_536,
)

LabelValues = Tuple[str, ...]


class MetricError(ValueError):
    """Misuse of the metrics API (caller bug, raised loudly)."""


class Counter:
    """Monotone integer event counter.

    Two feeding modes, per metric (do not mix on one series):

    - :meth:`inc` for events counted at the telemetry layer itself;
    - :meth:`set_total` for series mirroring an *external* exact
      accumulator (``EARDetStats``, an engine's per-shard arrays).
    """

    __slots__ = ("_value", "_external")

    def __init__(self) -> None:
        self._value = 0
        # Last total seen by set_total — the external accumulator's
        # baseline for delta accumulation.
        self._external = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter increment must be >= 0, got {amount}")
        self._value += amount

    def set_total(self, total: int) -> None:
        """Sync from an external exact accumulator.

        Accumulates the *delta* since the last sync, so the exposed
        series is exactly the external total while the accumulator lives
        — and stays monotone when the accumulator rewinds (a supervised
        restart resumes the engine from its checkpoint boundary, below
        the pre-crash peak).  A rewind adopts the new baseline without
        decrementing, matching Prometheus counter-reset semantics.
        """
        if total < 0:
            raise MetricError(f"counter total must be >= 0, got {total}")
        if total > self._external:
            self._value += total - self._external
        self._external = total


class Gauge:
    """Point-in-time integer; ``None`` while genuinely unknown."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value: Optional[int] = None

    @property
    def value(self) -> Optional[int]:
        return self._value

    def set(self, value: Optional[int]) -> None:
        if value is not None and not isinstance(value, int):
            raise MetricError(f"gauge value must be an int or None, got {value!r}")
        self._value = value

    def inc(self, amount: int = 1) -> None:
        self._value = (self._value or 0) + amount

    def dec(self, amount: int = 1) -> None:
        self._value = (self._value or 0) - amount


class Histogram:
    """Fixed-boundary integer histogram with exact ``sum``/``count``.

    ``boundaries`` are inclusive upper bounds (Prometheus ``le``
    semantics) and must be strictly increasing positive integers; an
    implicit ``+Inf`` bucket catches the rest.
    """

    __slots__ = ("boundaries", "_bucket_counts", "_sum", "_count", "_lock")

    def __init__(self, boundaries: Sequence[int]):
        bounds = tuple(boundaries)
        if not bounds:
            raise MetricError("histogram needs at least one boundary")
        for value in bounds:
            if not isinstance(value, int):
                raise MetricError(
                    f"histogram boundaries must be integers, got {value!r}"
                )
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise MetricError(
                f"histogram boundaries must be strictly increasing: {bounds}"
            )
        self.boundaries = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +Inf at the end
        self._sum = 0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: int) -> None:
        """Record one integer observation."""
        bounds = self.boundaries
        # Binary search would win only past ~64 buckets; the defaults
        # have ~20 and the scan is branch-predictable.
        index = len(bounds)
        for position, bound in enumerate(bounds):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> int:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative_buckets(self) -> List[Tuple[Optional[int], int]]:
        """``(le, cumulative count)`` pairs, ending with ``(None, count)``
        for the ``+Inf`` bucket — exactly what exposition renders."""
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
        pairs: List[Tuple[Optional[int], int]] = []
        running = 0
        for bound, count in zip(self.boundaries, counts):
            running += count
            pairs.append((bound, running))
        pairs.append((None, total))
        return pairs


Metric = Union[Counter, Gauge, Histogram]

#: Metric type tags used by exposition.
METRIC_TYPES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricFamily:
    """All children of one metric name, keyed by label values.

    A family with no label names has exactly one child and proxies the
    metric API directly (``family.inc(...)``), so unlabeled metrics need
    no ``.labels()`` hop on the hot path.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        metric_type: type,
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[int]] = None,
    ):
        if not _METRIC_NAME.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_NAME.match(label):
                raise MetricError(f"invalid label name {label!r}")
            if label.startswith("__"):
                raise MetricError(f"label {label!r} is reserved")
        if metric_type is Histogram and buckets is None:
            raise MetricError(f"histogram {name!r} needs bucket boundaries")
        self.name = name
        self.help_text = help_text
        self.metric_type = metric_type
        self.label_names = tuple(label_names)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[LabelValues, Metric] = {}
        self._lock = threading.Lock()
        if not self.label_names:
            self._default: Optional[Metric] = self._make()
            self._children[()] = self._default
        else:
            self._default = None

    def _make(self) -> Metric:
        if self.metric_type is Histogram:
            assert self._buckets is not None
            return Histogram(self._buckets)
        return self.metric_type()

    def labels(self, *values: object, **kv: object) -> Metric:
        """The child for one label-value combination (created on first
        use).  Accepts positional values in declaration order or
        keywords; values are stringified."""
        if kv:
            if values:
                raise MetricError("pass label values positionally or by "
                                  "keyword, not both")
            try:
                values = tuple(kv[name] for name in self.label_names)
            except KeyError as error:
                raise MetricError(
                    f"missing label {error.args[0]!r} for {self.name!r} "
                    f"(declared: {self.label_names})"
                ) from None
            if len(kv) != len(self.label_names):
                extra = set(kv) - set(self.label_names)
                raise MetricError(
                    f"unknown labels {sorted(extra)} for {self.name!r}"
                )
        if len(values) != len(self.label_names):
            raise MetricError(
                f"{self.name!r} takes {len(self.label_names)} label values "
                f"({self.label_names}), got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._make()
        return child

    def collect(self) -> Iterator[Tuple[LabelValues, Metric]]:
        """Snapshot iteration of ``(label values, metric)`` pairs in
        insertion order (dict order is stable, and children are only ever
        added)."""
        return iter(list(self._children.items()))

    # -- unlabeled proxy ---------------------------------------------------

    def _only(self) -> Metric:
        if self._default is None:
            raise MetricError(
                f"{self.name!r} declares labels {self.label_names}; "
                "call .labels(...) first"
            )
        return self._default

    def inc(self, amount: int = 1) -> None:
        self._only().inc(amount)  # type: ignore[union-attr]

    def dec(self, amount: int = 1) -> None:
        self._only().dec(amount)  # type: ignore[union-attr]

    def set(self, value: Optional[int]) -> None:
        self._only().set(value)  # type: ignore[union-attr]

    def set_total(self, total: int) -> None:
        self._only().set_total(total)  # type: ignore[union-attr]

    def observe(self, value: int) -> None:
        self._only().observe(value)  # type: ignore[union-attr]

    @property
    def value(self) -> Optional[int]:
        return self._only().value  # type: ignore[union-attr]

    def __repr__(self) -> str:
        return (
            f"MetricFamily({self.name!r}, "
            f"type={METRIC_TYPES[self.metric_type]}, "
            f"children={len(self._children)})"
        )


class MetricRegistry:
    """Namespace of metric families; the object exposition renders.

    Re-declaring an existing name returns the existing family when the
    declaration matches (idempotent wiring — e.g. a supervisor restart
    rebuilding a service against the same registry) and raises when it
    conflicts.
    """

    #: Hot paths branch on this (vs :class:`NullRegistry`'s False) to
    #: decide whether clock reads are worth taking.
    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def counter(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, help_text, Counter, labels, None)

    def gauge(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, help_text, Gauge, labels, None)

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[int],
        labels: Sequence[str] = (),
    ) -> MetricFamily:
        return self._declare(name, help_text, Histogram, labels, buckets)

    def _declare(
        self,
        name: str,
        help_text: str,
        metric_type: type,
        labels: Sequence[str],
        buckets: Optional[Sequence[int]],
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (
                    existing.metric_type is not metric_type
                    or existing.label_names != tuple(labels)
                    or (
                        metric_type is Histogram
                        and existing._buckets != tuple(buckets or ())
                    )
                ):
                    raise MetricError(
                        f"metric {name!r} already registered with a "
                        "different declaration"
                    )
                return existing
            family = MetricFamily(name, help_text, metric_type, labels, buckets)
            self._families[name] = family
            return family

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def collect(self) -> Iterator[MetricFamily]:
        """Families in registration order (snapshot)."""
        with self._lock:
            return iter(list(self._families.values()))

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __repr__(self) -> str:
        return f"MetricRegistry(families={len(self._families)})"


class NullMetric:
    """Inert metric: every operation is a no-op, every query is inert.

    One shared instance backs every name in a :class:`NullRegistry`, so
    disabled telemetry costs a dict-free attribute call and nothing else.
    """

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def dec(self, amount: int = 1) -> None:
        pass

    def set(self, value: Optional[int]) -> None:
        pass

    def set_total(self, total: int) -> None:
        pass

    def observe(self, value: int) -> None:
        pass

    def labels(self, *values: object, **kv: object) -> "NullMetric":
        return self

    @property
    def value(self) -> None:
        return None

    def collect(self) -> Iterator[Tuple[LabelValues, Metric]]:
        return iter(())


_NULL_METRIC = NullMetric()


class NullRegistry:
    """The telemetry-off registry: every factory returns the shared
    :class:`NullMetric`; exposition sees no families."""

    __slots__ = ()

    #: Hot paths branch on this instead of probing types.
    enabled = False

    def counter(self, name: str, help_text: str,
                labels: Sequence[str] = ()) -> NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help_text: str,
              labels: Sequence[str] = ()) -> NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help_text: str, buckets: Sequence[int],
                  labels: Sequence[str] = ()) -> NullMetric:
        return _NULL_METRIC

    def get(self, name: str) -> None:
        return None

    def collect(self) -> Iterator[MetricFamily]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False


#: Process-wide shared no-op registry.
NULL_REGISTRY = NullRegistry()
