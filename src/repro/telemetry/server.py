"""Live exposition over HTTP, on the standard library only.

:class:`MetricsServer` runs a ``ThreadingHTTPServer`` on a daemon
thread next to the service and answers:

- ``GET /metrics``       — Prometheus text format 0.0.4;
- ``GET /metrics.json``  — the same registry as JSON, plus the tracer's
  recent spans (also reachable as ``/json``);
- ``GET /healthz``       — liveness probe, always ``ok``.

Scrapes read the registry concurrently with the serving thread's
writes; the registry's own locking (see
:mod:`repro.telemetry.registry`) keeps every sample internally
consistent.  Binding ``port=0`` lets the OS pick a free port
(:attr:`MetricsServer.port` reports the actual one) — how the tests and
``eardet serve --metrics-port 0`` avoid collisions.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Union

from .exposition import (
    CONTENT_TYPE_JSON,
    CONTENT_TYPE_PROMETHEUS,
    render_json,
    render_prometheus,
)
from .registry import MetricRegistry, NullRegistry
from .tracing import NullTracer, Tracer

__all__ = ["MetricsServer", "DEFAULT_METRICS_HOST"]

DEFAULT_METRICS_HOST = "127.0.0.1"


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one server's registry/tracer."""

    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(self.server.registry).encode("utf-8")
            self._reply(200, CONTENT_TYPE_PROMETHEUS, body)
        elif path in ("/metrics.json", "/json"):
            payload = render_json(self.server.registry, self.server.tracer)
            body = json.dumps(payload, indent=2).encode("utf-8")
            self._reply(200, CONTENT_TYPE_JSON, body)
        elif path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        else:
            self._reply(
                404,
                "text/plain; charset=utf-8",
                b"not found; try /metrics, /metrics.json or /healthz\n",
            )

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Scrapes are periodic; never spam the operator's terminal."""


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    #: Rebinding quickly after a restart must not fail with EADDRINUSE.
    allow_reuse_address = True

    registry: Union[MetricRegistry, NullRegistry]
    tracer: Union[Tracer, NullTracer]


class MetricsServer:
    """Serve a registry (and tracer) over HTTP from a daemon thread."""

    def __init__(
        self,
        registry: Union[MetricRegistry, NullRegistry],
        tracer: Union[Tracer, NullTracer, None] = None,
        host: str = DEFAULT_METRICS_HOST,
        port: int = 0,
    ):
        if not 0 <= port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {port}")
        self.registry = registry
        self.tracer = tracer if tracer is not None else NullTracer()
        self.host = host
        self._requested_port = port
        self._httpd: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves 0 to the OS-assigned one)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Bind and start answering; idempotent; returns self."""
        if self._httpd is not None:
            return self
        httpd = _Server((self.host, self._requested_port), _Handler)
        httpd.registry = self.registry
        httpd.tracer = self.tracer
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="eardet-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and release the port; idempotent."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = f"url={self.url!r}" if self.running else "stopped"
        return f"MetricsServer({state})"
