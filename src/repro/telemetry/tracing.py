"""Lightweight tracing spans over the monotonic clock.

A span is one timed region of the runtime — ``span("checkpoint.write")``,
``span("engine.ingest", shard=2)`` — measured with
``time.monotonic_ns`` (immune to wall-clock steps) and recorded two
ways:

- a bounded **ring buffer** of recent finished spans per tracer (the
  "what just happened" view the JSON endpoint serves), and
- a duration **histogram** per span name in the metric registry
  (``eardet_span_duration_ns{span="..."}``), so long-run latency
  distributions survive the ring buffer's horizon.

The tracer is nullable like everything else in this package:
:data:`NULL_TRACER` hands out a single reusable no-op span, so a
disabled trace point costs one method call and an empty ``with`` block.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from .registry import (
    DEFAULT_LATENCY_BUCKETS_NS,
    MetricRegistry,
    NullRegistry,
    NULL_REGISTRY,
)

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER",
           "DEFAULT_SPAN_CAPACITY"]

#: Default ring-buffer capacity for finished spans.
DEFAULT_SPAN_CAPACITY = 256


class Span:
    """One timed region; use as a context manager."""

    __slots__ = ("name", "tags", "start_ns", "duration_ns", "_tracer")

    def __init__(self, name: str, tags: Dict[str, str], tracer: "Tracer"):
        self.name = name
        self.tags = tags
        self.start_ns = 0
        self.duration_ns: Optional[int] = None
        self._tracer = tracer

    def __enter__(self) -> "Span":
        self.start_ns = time.monotonic_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.duration_ns = time.monotonic_ns() - self.start_ns
        self._tracer._finish(self)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "tags": dict(self.tags),
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, duration_ns={self.duration_ns})"


class Tracer:
    """Produces spans, keeps the recent ring, feeds the registry.

    ``registry`` may be a :class:`~repro.telemetry.registry.NullRegistry`
    — spans then still fill the ring buffer (useful standalone) but no
    histogram is kept.
    """

    def __init__(
        self,
        registry: "MetricRegistry | NullRegistry" = NULL_REGISTRY,
        capacity: int = DEFAULT_SPAN_CAPACITY,
    ):
        if capacity < 1:
            raise ValueError(f"span capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._recent: Deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.finished = 0
        self._durations = registry.histogram(
            "eardet_span_duration_ns",
            "Duration of traced runtime spans, nanoseconds.",
            buckets=DEFAULT_LATENCY_BUCKETS_NS,
            labels=("span",),
        )

    def span(self, name: str, **tags: object) -> Span:
        """A new unstarted span; enter it with ``with``."""
        return Span(name, {key: str(value) for key, value in tags.items()},
                    self)

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._recent.append(span)
            self.finished += 1
        if span.duration_ns is not None:
            self._durations.labels(span.name).observe(span.duration_ns)

    def recent(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans still in the ring, oldest first; optionally
        filtered by span name."""
        with self._lock:
            spans = list(self._recent)
        if name is not None:
            spans = [span for span in spans if span.name == name]
        return spans

    def as_dict(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "finished": self.finished,
            "recent": [span.as_dict() for span in self.recent()],
        }

    def __repr__(self) -> str:
        return f"Tracer(finished={self.finished}, capacity={self.capacity})"


class _NullSpan:
    """Reusable inert span (one per process)."""

    __slots__ = ()
    name = ""
    tags: Dict[str, str] = {}
    start_ns = 0
    duration_ns: Optional[int] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:
        return {"name": "", "tags": {}, "start_ns": 0, "duration_ns": None}


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Telemetry-off tracer: hands out the shared no-op span."""

    __slots__ = ()

    capacity = 0
    finished = 0

    def span(self, name: str, **tags: object) -> _NullSpan:
        return _NULL_SPAN

    def recent(self, name: Optional[str] = None) -> List[Span]:
        return []

    def as_dict(self) -> Dict[str, object]:
        return {"capacity": 0, "finished": 0, "recent": []}


#: Process-wide shared no-op tracer.
NULL_TRACER = NullTracer()
