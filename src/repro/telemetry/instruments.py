"""Pre-declared instrument bundles for the detection service.

This module is the bridge between the generic registry and the
service's hot paths.  Two design rules keep the ≤5% overhead budget
(measured by ``benchmarks/trajectory.py``):

1. **Exact counters are synced, not duplicated.**  The runtime already
   keeps exact integer accounting everywhere (``EARDetStats``, the
   engines' per-shard ``routed``/``dropped`` arrays,
   ``ValidationStats``, ``DeadLetterSink.total``).  Instruments copy
   those accumulators into the registry with ``set_total`` — monotone,
   exact, and one call per *batch* instead of one per packet — rather
   than double-counting events on the per-packet path.  This is how
   ``EARDet.observe`` is instrumented without touching its inner loop:
   its stats object *is* the instrumentation.
2. **Per-shard children are pre-resolved.**  ``labels()`` costs a dict
   probe; :meth:`ServiceInstruments.bind_shards` resolves every
   per-shard child once, so the per-batch sync loop touches plain
   attributes only.

The service holds ``instruments = None`` when telemetry is off, so the
disabled hot path pays a single ``is None`` test per batch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .registry import (
    DEFAULT_LATENCY_BUCKETS_NS,
    DEFAULT_SIZE_BUCKETS,
    MetricRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from .tracing import DEFAULT_SPAN_CAPACITY, NullTracer, NULL_TRACER, Tracer

__all__ = ["Telemetry", "ServiceInstruments"]

AnyRegistry = Union[MetricRegistry, NullRegistry]
AnyTracer = Union[Tracer, NullTracer]


class Telemetry:
    """One observability context: a registry plus a tracer.

    Construct with no arguments for a live context, or pass
    ``registry=NULL_REGISTRY`` (see :meth:`disabled`) for an inert one
    that any component can hold without branching.
    """

    def __init__(
        self,
        registry: Optional[AnyRegistry] = None,
        tracer: Optional[AnyTracer] = None,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
    ):
        self.registry: AnyRegistry = (
            registry if registry is not None else MetricRegistry()
        )
        if tracer is None:
            tracer = (
                Tracer(self.registry, capacity=span_capacity)
                if self.registry.enabled
                else NULL_TRACER
            )
        self.tracer: AnyTracer = tracer

    @classmethod
    def disabled(cls) -> "Telemetry":
        """An inert context (no-op registry and tracer)."""
        return cls(registry=NULL_REGISTRY, tracer=NULL_TRACER)

    @property
    def enabled(self) -> bool:
        return bool(self.registry.enabled)

    def serve(self, host: str = "127.0.0.1", port: int = 0):
        """A started :class:`~repro.telemetry.server.MetricsServer` over
        this context."""
        from .server import MetricsServer

        return MetricsServer(self.registry, self.tracer, host=host,
                             port=port).start()

    def render_prometheus(self) -> str:
        from .exposition import render_prometheus

        return render_prometheus(self.registry)

    def as_dict(self) -> Dict[str, object]:
        from .exposition import render_json

        return render_json(self.registry, self.tracer)

    def __repr__(self) -> str:
        return f"Telemetry(enabled={self.enabled})"


class _ShardChannel:
    """Pre-resolved per-shard metric children (plain attribute access on
    the sync path)."""

    __slots__ = (
        "ingested", "dropped", "queue_depth", "queue_high_water",
        "queue_capacity", "last_packet_ts", "exact", "first_loss",
        "detections", "blacklist_size", "counters_in_use", "evictions",
        "virtual_bytes", "blacklisted_packets", "invariant_checks",
        "invariant_check_ns", "degradation_level",
    )


#: Ladder-rung label -> numeric gauge value (matches
#: ``repro.service.overload.DegradationLevel``; kept as a plain map so
#: telemetry does not import the service package).
_LADDER_LEVELS = {"exact": 0, "deferred": 1, "aggregated": 2, "shedding": 3}


class ServiceInstruments:
    """Every metric the detection service exports, declared once.

    The full catalog (names, types, labels, meaning) is documented in
    ``docs/OBSERVABILITY.md``; keep the two in sync.
    """

    def __init__(self, telemetry: Telemetry):
        self.telemetry = telemetry
        self.enabled = telemetry.enabled
        self.tracer = telemetry.tracer
        reg = telemetry.registry
        shard = ("shard",)

        # -- ingest hot path (synced per batch) ---------------------------
        self.batches_total = reg.counter(
            "eardet_ingest_batches_total",
            "Batches pulled from the source and ingested.",
        )
        self.ingested_total = reg.counter(
            "eardet_ingested_packets_total",
            "Packets pulled from the source (includes checkpoint-resumed "
            "prefix).",
        )
        self.batch_packets = reg.histogram(
            "eardet_batch_packets",
            "Packets per ingested batch.",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self.packet_latency_ns = reg.histogram(
            "eardet_packet_latency_ns",
            "Per-packet ingest+process latency, nanoseconds (batch time "
            "divided by batch size; exact integer division).",
            buckets=DEFAULT_LATENCY_BUCKETS_NS,
        )

        # -- per-shard families -------------------------------------------
        self._shard_ingested = reg.counter(
            "eardet_shard_ingest_packets_total",
            "Packets routed to each shard (processed or still queued).",
            labels=shard,
        )
        self._shard_dropped = reg.counter(
            "eardet_shard_dropped_packets_total",
            "Packets each shard lost (queue overflow or injected drop).",
            labels=shard,
        )
        self._queue_depth = reg.gauge(
            "eardet_shard_queue_depth",
            "Pending packets (in-process) or in-flight chunks plus staged "
            "packets (multiprocess) per shard.",
            labels=shard,
        )
        self._queue_high_water = reg.gauge(
            "eardet_shard_queue_high_water",
            "Highest queue depth each shard has reached.",
            labels=shard,
        )
        self._queue_capacity = reg.gauge(
            "eardet_shard_queue_capacity",
            "Configured queue capacity per shard.",
            labels=shard,
        )
        self._last_packet_ts = reg.gauge(
            "eardet_shard_last_packet_ts_ns",
            "Stream timestamp of the last packet routed to each shard "
            "(NaN before the first).",
            labels=shard,
        )
        self._exact = reg.gauge(
            "eardet_shard_exact",
            "1 while the shard's no-FN/no-FP guarantee holds, 0 from its "
            "first lost packet onward.",
            labels=shard,
        )
        self._first_loss = reg.gauge(
            "eardet_shard_first_loss_time_ns",
            "Stream timestamp of the shard's first lost packet (NaN while "
            "exact).",
            labels=shard,
        )
        self._detections = reg.counter(
            "eardet_shard_detections_total",
            "Large flows each shard has reported.",
            labels=shard,
        )
        self._blacklist_size = reg.gauge(
            "eardet_shard_blacklist_size",
            "Flows currently on each shard's bounded blacklist.",
            labels=shard,
        )
        self._counters_in_use = reg.gauge(
            "eardet_shard_counters_in_use",
            "Occupied counter-store slots per shard (capacity is the "
            "configured n).",
            labels=shard,
        )
        self._evictions = reg.counter(
            "eardet_shard_store_evictions_total",
            "Counters evicted by decrement-all in each shard's store.",
            labels=shard,
        )
        self._virtual_bytes = reg.counter(
            "eardet_shard_virtual_bytes_total",
            "Virtual (idle-bandwidth) bytes each shard has injected.",
            labels=shard,
        )
        self._blacklisted_packets = reg.counter(
            "eardet_shard_blacklisted_packets_total",
            "Packets each shard short-circuited as already-blacklisted.",
            labels=shard,
        )
        self._invariant_checks = reg.counter(
            "eardet_shard_invariant_checks_total",
            "Full invariant sweeps each shard's checker has run.",
            labels=shard,
        )
        self._invariant_check_ns = reg.counter(
            "eardet_shard_invariant_check_ns_total",
            "Monotonic nanoseconds each shard has spent in invariant "
            "sweeps (the guard's measured sampling cost).",
            labels=shard,
        )

        # -- overload ladder ----------------------------------------------
        self._degradation_level = reg.gauge(
            "eardet_shard_degradation_level",
            "Current ladder rung per shard (0=exact, 1=deferred, "
            "2=aggregated, 3=shedding).",
            labels=shard,
        )
        self._overload_packets = reg.counter(
            "eardet_overload_packets_total",
            "Packets attributed to each ladder rung at admission; the "
            "rung sums equal the offered total exactly.",
            labels=("rung",),
        )
        self._overload_bytes = reg.counter(
            "eardet_overload_bytes_total",
            "Bytes attributed to each ladder rung at admission; the "
            "rung sums equal the offered total exactly.",
            labels=("rung",),
        )
        self.overload_transitions_total = reg.counter(
            "eardet_overload_transitions_total",
            "Ladder transitions across all shards (escalations plus "
            "de-escalations).",
        )
        self.overload_widening_ns = reg.gauge(
            "eardet_overload_max_widening_ns",
            "Largest aggregate re-stamp distance so far, nanoseconds "
            "(0 while no packet has been aggregated).",
        )
        self.overload_widening_bytes = reg.gauge(
            "eardet_overload_widening_bytes",
            "Ambiguity-region widening implied by aggregation: over any "
            "window a flow's measured traffic can shift by at most this "
            "many bytes (ceil(rho * max_widening_ns / 1e9)).",
        )
        self.overload_first_shed_ts = reg.gauge(
            "eardet_overload_first_shed_ts_ns",
            "Stream timestamp of the first shed packet (NaN while "
            "nothing has been shed; sheds void the exactness envelope).",
        )

        # -- ambiguity-region watcher stage -------------------------------
        self._watcher_occupancy = reg.gauge(
            "eardet_watcher_occupancy",
            "Counters/buckets each shard's ambiguity-region watcher "
            "currently holds (CLEF: live RLFD counters; LOFT: sketch "
            "aggregates plus watchlist entries).",
            labels=shard,
        )
        self._watcher_verdicts = reg.gauge(
            "eardet_watcher_shard_verdicts",
            "Probabilistic verdicts each shard's watcher has issued "
            "(kept strictly apart from the exact detection series).",
            labels=shard,
        )
        self.watcher_memory_counters = reg.gauge(
            "eardet_watcher_memory_counters",
            "Total watcher memory occupancy across shards, in counters.",
        )
        self.watcher_verdicts_total = reg.gauge(
            "eardet_watcher_verdicts",
            "Distinct flows with a probabilistic watcher verdict "
            "(merged across shards; never part of exact detections).",
        )
        self._watcher_churn = reg.counter(
            "eardet_watcher_churn_total",
            "Candidate churn in the watcher stage by event "
            "(promotions/evictions/demotions for LOFT, descents for "
            "CLEF's RLFDs).",
            labels=("event",),
        )

        # -- resharding ---------------------------------------------------
        self.migrations_total = reg.counter(
            "eardet_migrations_total",
            "Committed live shard migrations.",
        )
        self.migration_rollbacks_total = reg.counter(
            "eardet_migration_rollbacks_total",
            "Migrations that failed and were rolled back to the "
            "pre-migration layout.",
        )
        self.migration_pause_ns = reg.gauge(
            "eardet_migration_pause_ns",
            "Duration of the last migration's freeze-to-cutover pause, "
            "nanoseconds.",
        )
        self.layout_epoch = reg.gauge(
            "eardet_layout_epoch",
            "Version of the live slot-to-shard layout (0 = the initial "
            "layout; incremented by every committed migration).",
        )
        self.layout_shards = reg.gauge(
            "eardet_layout_shards",
            "Shards spanned by the live slot-to-shard layout.",
        )

        # -- adaptive control (guarded hot reconfiguration) ----------------
        self.config_epoch = reg.gauge(
            "eardet_config_epoch",
            "Version of the live detector configuration (0 = the launch "
            "config; incremented by every committed retune).",
        )
        self.retunes_total = reg.counter(
            "eardet_retunes_total",
            "Committed hot reconfigurations (config-epoch advances).",
        )
        self.retune_rollbacks_total = reg.counter(
            "eardet_retune_rollbacks_total",
            "Retunes that failed and were rolled back to the pre-retune "
            "configuration.",
        )
        self.retune_infeasibles_total = reg.counter(
            "eardet_retune_infeasibles_total",
            "Controller proposals the Appendix-A solver rejected as "
            "infeasible (recorded as incidents, never applied).",
        )
        self.retune_pause_ns = reg.gauge(
            "eardet_retune_pause_ns",
            "Duration of the last retune's freeze-to-commit pause, "
            "nanoseconds.",
        )

        # -- remote transport (the remote engine's TCP fleet) --------------
        self._net_frames_sent = reg.counter(
            "eardet_net_frames_sent_total",
            "Frames put on the wire per shard connection (includes "
            "retransmits and injected duplicates).",
            labels=shard,
        )
        self._net_retransmits = reg.counter(
            "eardet_net_retransmits_total",
            "Unacked frames replayed per shard connection (reconnect "
            "replays and gap-triggered resends; always safe — duplicates "
            "are discarded by sequence).",
            labels=shard,
        )
        self._net_reconnects = reg.counter(
            "eardet_net_reconnects_total",
            "Successful (re)connects per shard connection (1 is the "
            "initial connect).",
            labels=shard,
        )
        self._net_outages = reg.counter(
            "eardet_net_outages_total",
            "Distinct outages per shard endpoint (masked or voided).",
            labels=shard,
        )
        self._net_ring_depth = reg.gauge(
            "eardet_net_ring_depth",
            "Unacked frames currently held per shard connection.",
            labels=shard,
        )
        self._net_connected = reg.gauge(
            "eardet_net_connected",
            "1 while the shard connection is established, else 0.",
            labels=shard,
        )
        self._net_lost_packets = reg.counter(
            "eardet_net_lost_packets_total",
            "Packets the partition policy voided per shard (outages past "
            "the mask budget; every one is dead-lettered and voids that "
            "shard's envelope).",
            labels=shard,
        )

        # -- service lifecycle --------------------------------------------
        self.checkpoints_total = reg.counter(
            "eardet_checkpoints_written_total",
            "Checkpoints successfully written.",
        )
        self.checkpoint_duration_ns = reg.histogram(
            "eardet_checkpoint_duration_ns",
            "Wall time of one checkpoint write (drain + serialize + "
            "atomic replace), nanoseconds.",
            buckets=DEFAULT_LATENCY_BUCKETS_NS,
        )
        self.dead_letters_total = reg.counter(
            "eardet_dead_letters_total",
            "Packets captured by the dead-letter sink.",
        )
        self.restarts_total = reg.counter(
            "eardet_supervised_restarts_total",
            "Supervised engine restarts performed.",
        )
        self.backoff_ns_total = reg.counter(
            "eardet_supervisor_backoff_ns_total",
            "Cumulative supervisor backoff sleep, nanoseconds.",
        )
        self.incidents_total = reg.counter(
            "eardet_incidents_total",
            "Forensic incidents appended to the incident store, by class.",
            labels=("class",),
        )
        self.forensics_capture_ns = reg.histogram(
            "eardet_forensics_capture_ns",
            "Wall time to capture one replay bundle (serialize baseline + "
            "trace slice + write the CRC'd container), nanoseconds.",
            buckets=DEFAULT_LATENCY_BUCKETS_NS,
        )
        self.source_retries_total = reg.counter(
            "eardet_source_retries_total",
            "Transient source failures absorbed by retry wrappers.",
        )

        # -- ingest validation --------------------------------------------
        self.validation_examined_total = reg.counter(
            "eardet_validation_examined_total",
            "Packets screened by the ingest validator.",
        )
        self._validation_violations = reg.counter(
            "eardet_validation_violations_total",
            "Ingest violations by class.",
            labels=("violation",),
        )
        self.validation_mutations_total = reg.counter(
            "eardet_validation_mutated_total",
            "Packets the validator clamped or dropped (each voids "
            "exactness like a loss).",
        )
        self.validation_reordered_total = reg.counter(
            "eardet_validation_reordered_total",
            "Packets re-slotted into time order (multiset-preserving; "
            "does not void exactness).",
        )

        self._channels: List[_ShardChannel] = []
        self._watcher_channels: List[object] = []

    # -- wiring ------------------------------------------------------------

    def bind_shards(self, shard_count: int, queue_capacity: int) -> None:
        """Resolve per-shard children once (idempotent per shard count)."""
        if len(self._channels) == shard_count:
            return
        self._channels = []
        for index in range(shard_count):
            label = str(index)
            channel = _ShardChannel()
            channel.ingested = self._shard_ingested.labels(label)
            channel.dropped = self._shard_dropped.labels(label)
            channel.queue_depth = self._queue_depth.labels(label)
            channel.queue_high_water = self._queue_high_water.labels(label)
            channel.queue_capacity = self._queue_capacity.labels(label)
            channel.last_packet_ts = self._last_packet_ts.labels(label)
            channel.exact = self._exact.labels(label)
            channel.first_loss = self._first_loss.labels(label)
            channel.detections = self._detections.labels(label)
            channel.blacklist_size = self._blacklist_size.labels(label)
            channel.counters_in_use = self._counters_in_use.labels(label)
            channel.evictions = self._evictions.labels(label)
            channel.virtual_bytes = self._virtual_bytes.labels(label)
            channel.blacklisted_packets = self._blacklisted_packets.labels(
                label
            )
            channel.invariant_checks = self._invariant_checks.labels(label)
            channel.invariant_check_ns = self._invariant_check_ns.labels(
                label
            )
            channel.degradation_level = self._degradation_level.labels(label)
            channel.queue_capacity.set(queue_capacity)
            channel.exact.set(1)
            channel.degradation_level.set(0)
            self._channels.append(channel)

    # -- per-batch hot path --------------------------------------------------

    def on_batch(self, packets: int, duration_ns: int) -> None:
        """Account one ingested batch (one call per batch, not packet)."""
        self.batches_total.inc()
        self.batch_packets.observe(packets)
        if packets > 0:
            self.packet_latency_ns.observe(duration_ns // packets)

    def sync_engine(self, engine: object) -> None:
        """Copy the engine's cheap parent-side accounting into the
        registry.  Reads only fields both engines keep on the routing
        side — never triggers a snapshot barrier."""
        channels = self._channels
        routed: Sequence[int] = engine._routed  # type: ignore[attr-defined]
        dropped: Sequence[int] = engine._dropped  # type: ignore[attr-defined]
        first_loss = engine._first_loss  # type: ignore[attr-defined]
        depths: Sequence[int] = engine.queue_depths()  # type: ignore[attr-defined]
        high_water: Sequence[int] = engine.queue_high_water  # type: ignore[attr-defined]
        last_ts = engine.last_packet_ts  # type: ignore[attr-defined]
        for index, channel in enumerate(channels):
            channel.ingested.set_total(routed[index])
            channel.dropped.set_total(dropped[index])
            channel.queue_depth.set(depths[index])
            channel.queue_high_water.set(high_water[index])
            channel.last_packet_ts.set(last_ts[index])
            loss = first_loss[index]
            if loss is not None:
                channel.exact.set(0)
                channel.first_loss.set(loss)

    def sync_detectors(self, detectors: Sequence[object]) -> None:
        """Copy per-shard detector stats (in-process engines only — the
        multiprocess engine's detectors live in worker processes and
        surface through snapshots instead)."""
        for channel, detector in zip(self._channels, detectors):
            stats = detector.stats  # type: ignore[attr-defined]
            # len(sink) = distinct large flows reported — matches the
            # ShardHealth field, so sync_health can't rewind this series.
            channel.detections.set_total(
                len(detector.sink)  # type: ignore[attr-defined]
            )
            channel.virtual_bytes.set_total(stats.virtual_bytes)
            channel.blacklisted_packets.set_total(stats.blacklisted_packets)
            channel.blacklist_size.set(
                len(detector.blacklist)  # type: ignore[attr-defined]
            )
            channel.counters_in_use.set(
                detector.counters_in_use  # type: ignore[attr-defined]
            )
            evictions = getattr(detector, "store_evictions", None)
            if evictions is not None:
                channel.evictions.set_total(evictions)
            checker = getattr(detector, "checker", None)
            if checker is not None:
                channel.invariant_checks.set_total(checker.checks_run)
                channel.invariant_check_ns.set_total(checker.check_time_ns)

    def sync_detector_groups(self, groups: Sequence[Sequence[object]]) -> None:
        """Copy per-shard detector stats when a shard hosts *several*
        slot detectors (the resharding layout): gauges and totals are
        summed over the slots a shard currently hosts, so the per-shard
        series stay continuous across a migration."""
        for channel, detectors in zip(self._channels, groups):
            detections = blacklist = counters = 0
            virtual_bytes = blacklisted = evictions = 0
            checks = check_ns = 0
            has_evictions = has_checker = False
            for detector in detectors:
                stats = detector.stats  # type: ignore[attr-defined]
                detections += len(detector.sink)  # type: ignore[attr-defined]
                virtual_bytes += stats.virtual_bytes
                blacklisted += stats.blacklisted_packets
                blacklist += len(detector.blacklist)  # type: ignore[attr-defined]
                counters += detector.counters_in_use  # type: ignore[attr-defined]
                slot_evictions = getattr(detector, "store_evictions", None)
                if slot_evictions is not None:
                    has_evictions = True
                    evictions += slot_evictions
                checker = getattr(detector, "checker", None)
                if checker is not None:
                    has_checker = True
                    checks += checker.checks_run
                    check_ns += checker.check_time_ns
            channel.detections.set_total(detections)
            channel.virtual_bytes.set_total(virtual_bytes)
            channel.blacklisted_packets.set_total(blacklisted)
            channel.blacklist_size.set(blacklist)
            channel.counters_in_use.set(counters)
            if has_evictions:
                channel.evictions.set_total(evictions)
            if has_checker:
                channel.invariant_checks.set_total(checks)
                channel.invariant_check_ns.set_total(check_ns)

    def sync_reshard(self, reshard: Optional[dict]) -> None:
        """Copy the service's resharding summary (see
        :meth:`~repro.service.runtime.DetectionService.report`)."""
        if reshard is None:
            return
        self.migrations_total.set_total(reshard.get("migrations", 0))
        self.migration_rollbacks_total.set_total(
            reshard.get("rollbacks", 0)
        )
        pause = reshard.get("last_pause_ns")
        if pause is not None:
            self.migration_pause_ns.set(pause)
        layout = reshard.get("layout") or {}
        self.layout_epoch.set(layout.get("epoch", 0))
        self.layout_shards.set(layout.get("shards", 0))

    def sync_control(self, control: Optional[dict]) -> None:
        """Copy the service's adaptive-control summary (cheap scalars
        only — this runs once per ingested batch)."""
        if control is None:
            return
        self.config_epoch.set(control.get("epoch", 0))
        self.retunes_total.set_total(control.get("retunes", 0))
        self.retune_rollbacks_total.set_total(control.get("rollbacks", 0))
        self.retune_infeasibles_total.set_total(
            control.get("infeasibles", 0)
        )
        pause = control.get("last_pause_ns")
        if pause is not None:
            self.retune_pause_ns.set(pause)

    def sync_health(self, samples: Sequence[object]) -> None:
        """Copy a list of :class:`~repro.service.health.ShardHealth`
        samples — the per-shard view both engine kinds can produce (the
        multiprocess engine's detectors live out-of-process, so this is
        its only detection/blacklist source)."""
        for channel, sample in zip(self._channels, samples):
            channel.detections.set_total(
                sample.detections  # type: ignore[attr-defined]
            )
            channel.blacklist_size.set(
                sample.blacklist_size  # type: ignore[attr-defined]
            )
            channel.queue_high_water.set(
                sample.queue_high_water  # type: ignore[attr-defined]
            )

    def sync_validation(self, stats: object) -> None:
        """Copy a :class:`~repro.guard.ValidationStats` accumulator."""
        if stats is None:
            return
        self.validation_examined_total.set_total(
            stats.examined  # type: ignore[attr-defined]
        )
        self.validation_mutations_total.set_total(
            stats.mutated  # type: ignore[attr-defined]
        )
        self.validation_reordered_total.set_total(
            stats.reordered  # type: ignore[attr-defined]
        )
        for violation, count in stats.violations.items():  # type: ignore[attr-defined]
            self._validation_violations.labels(violation).set_total(count)

    def sync_dead_letters(self, total: int) -> None:
        self.dead_letters_total.set_total(total)

    def sync_watcher(self, stage: object) -> None:
        """Copy a :class:`~repro.service.pipeline.WatcherStage`'s
        occupancy, verdict, and churn accounting into the registry.
        Reads only the stage's own exact accumulators — never touches
        the exact detection series, so watcher metrics cannot be
        mistaken for (or pollute) the exactness envelope."""
        shard_count: int = stage.shard_count  # type: ignore[attr-defined]
        if len(self._watcher_channels) != shard_count:
            self._watcher_channels = [
                (
                    self._watcher_occupancy.labels(str(index)),
                    self._watcher_verdicts.labels(str(index)),
                )
                for index in range(shard_count)
            ]
        total_counters = 0
        for index, (occupancy, verdicts) in enumerate(
            self._watcher_channels
        ):
            held = stage.occupancy(index)  # type: ignore[attr-defined]
            occupancy.set(held)
            total_counters += held
            verdicts.set(
                len(stage.watcher(index).detected)  # type: ignore[attr-defined]
            )
        self.watcher_memory_counters.set(total_counters)
        self.watcher_verdicts_total.set(
            len(stage.verdicts())  # type: ignore[attr-defined]
        )
        for event, count in stage.churn().items():  # type: ignore[attr-defined]
            self._watcher_churn.labels(event).set_total(count)

    def sync_transport(self, reports: Sequence[Dict[str, object]]) -> None:
        """Copy a remote engine ``transport_report()`` — per-shard exact
        TCP transport counters — into the registry (no-op for the
        in-tree engines, which have no transport)."""
        for report in reports:
            label = str(report.get("shard", ""))
            self._net_frames_sent.labels(label).set_total(
                report.get("frames_sent", 0)  # type: ignore[arg-type]
            )
            self._net_retransmits.labels(label).set_total(
                report.get("retransmits", 0)  # type: ignore[arg-type]
            )
            self._net_reconnects.labels(label).set_total(
                report.get("reconnects", 0)  # type: ignore[arg-type]
            )
            self._net_outages.labels(label).set_total(
                report.get("outages", 0)  # type: ignore[arg-type]
            )
            self._net_ring_depth.labels(label).set(
                report.get("ring_depth", 0)  # type: ignore[arg-type]
            )
            self._net_connected.labels(label).set(
                1 if report.get("connected") else 0
            )
            self._net_lost_packets.labels(label).set_total(
                report.get("lost_packets", 0)  # type: ignore[arg-type]
            )

    def sync_overload(self, report: Optional[Dict[str, object]]) -> None:
        """Copy an engine ``overload_report()`` dict into the registry
        (no-op when no policy is armed).  Rung attribution comes from
        the merged :class:`~repro.service.overload.DegradationAccount`,
        so the exported rung totals inherit its integer identity
        ``exact + deferred + aggregated + shed == offered``."""
        if report is None:
            return
        account: Dict[str, object] = report["account"]  # type: ignore[assignment]
        for rung in _LADDER_LEVELS:
            field = "shed" if rung == "shedding" else rung
            self._overload_packets.labels(rung).set_total(
                account[field + "_packets"]  # type: ignore[arg-type]
            )
            self._overload_bytes.labels(rung).set_total(
                account[field + "_bytes"]  # type: ignore[arg-type]
            )
        self.overload_transitions_total.set_total(
            report["transitions"]  # type: ignore[arg-type]
        )
        self.overload_widening_ns.set(report["max_widening_ns"])  # type: ignore[arg-type]
        self.overload_widening_bytes.set(report["widening_bytes"])  # type: ignore[arg-type]
        first_shed = account.get("first_shed_ts")  # type: ignore[union-attr]
        if first_shed is not None:
            self.overload_first_shed_ts.set(first_shed)
        for channel, shard in zip(
            self._channels, report["shards"]  # type: ignore[arg-type]
        ):
            channel.degradation_level.set(
                _LADDER_LEVELS.get(shard["level"], 0)
            )

    # -- lifecycle events ----------------------------------------------------

    def on_checkpoint(self, duration_ns: int) -> None:
        self.checkpoints_total.inc()
        self.checkpoint_duration_ns.observe(duration_ns)

    def on_restart(self) -> None:
        self.restarts_total.inc()

    def on_backoff(self, delay_s: float) -> None:
        self.backoff_ns_total.inc(max(0, round(delay_s * 1_000_000_000)))

    def on_incident(self, incident_class: str = "restart") -> None:
        self.incidents_total.labels(incident_class).inc()

    def sync_incidents(self, totals_by_class: Dict[str, int]) -> None:
        """Make the labeled incident counter agree exactly with the
        incident store's per-class totals (the store is the source of
        truth, so counter and log can never disagree)."""
        for incident_class, total in totals_by_class.items():
            self.incidents_total.labels(incident_class).set_total(total)

    def on_capture(self, duration_ns: int) -> None:
        self.forensics_capture_ns.observe(duration_ns)

    def sync_source_retries(self, total: int) -> None:
        self.source_retries_total.set_total(total)

    def set_ingested(self, total: int) -> None:
        self.ingested_total.set_total(total)
