"""Zero-dependency observability for the detection runtime.

Four layers, each usable alone:

- :mod:`~repro.telemetry.registry` — typed, integer-exact metric
  primitives (counters, gauges, fixed-boundary histograms) behind a
  registry; a null registry makes every instrument a no-op when
  telemetry is off.
- :mod:`~repro.telemetry.tracing` — monotonic-clock spans with a ring
  buffer of recent timings plus per-span duration histograms.
- :mod:`~repro.telemetry.exposition` / :mod:`~repro.telemetry.server` —
  Prometheus text format 0.0.4 and JSON rendering, served live from a
  stdlib ``http.server`` daemon thread.
- :mod:`~repro.telemetry.instruments` — the pre-declared instrument
  bundle the detection service syncs its exact accumulators into.

See ``docs/OBSERVABILITY.md`` for the metric catalog and usage.
"""

from .exposition import (
    CONTENT_TYPE_JSON,
    CONTENT_TYPE_PROMETHEUS,
    render_json,
    render_prometheus,
)
from .instruments import ServiceInstruments, Telemetry
from .registry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_NS,
    DEFAULT_SIZE_BUCKETS,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricRegistry,
    NullMetric,
    NullRegistry,
    NULL_REGISTRY,
)
from .server import DEFAULT_METRICS_HOST, MetricsServer
from .tracing import (
    DEFAULT_SPAN_CAPACITY,
    NullTracer,
    NULL_TRACER,
    Span,
    Tracer,
)

__all__ = [
    "CONTENT_TYPE_JSON",
    "CONTENT_TYPE_PROMETHEUS",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "DEFAULT_METRICS_HOST",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_SPAN_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricFamily",
    "MetricRegistry",
    "MetricsServer",
    "NullMetric",
    "NullRegistry",
    "NullTracer",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "render_json",
    "render_prometheus",
    "ServiceInstruments",
    "Span",
    "Telemetry",
    "Tracer",
]
