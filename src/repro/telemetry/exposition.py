"""Render a metric registry: Prometheus text format 0.0.4 and JSON.

The text renderer follows the Prometheus exposition rules that matter
for correctness (and that ``tests/test_telemetry.py`` pins down):

- ``# HELP`` / ``# TYPE`` precede each family; help text escapes ``\\``
  and newlines;
- label values escape ``\\``, ``\"`` and newlines;
- histograms emit cumulative ``_bucket`` series with ascending integer
  ``le`` boundaries ending in ``le="+Inf"``, plus exact ``_sum`` and
  ``_count`` — with ``_count`` equal to the ``+Inf`` bucket;
- unknown gauges (value ``None``) render as ``NaN``, the Prometheus
  convention for "no meaningful sample yet" — every declared series
  stays present so dashboards keep a stable schema.

All sample values are integers formatted as integers; nothing passes
through float on the way out (``NaN`` excepted, which *is* the
documented non-value).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricRegistry,
    NullRegistry,
)
from .tracing import NullTracer, Tracer

__all__ = ["render_prometheus", "render_json", "CONTENT_TYPE_PROMETHEUS",
           "CONTENT_TYPE_JSON"]

CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"
CONTENT_TYPE_JSON = "application/json; charset=utf-8"

AnyRegistry = Union[MetricRegistry, NullRegistry]
AnyTracer = Union[Tracer, NullTracer]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_block(
    names: Sequence[str],
    values: Sequence[str],
    extra: Sequence[Tuple[str, str]] = (),
) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    pairs.extend(
        f'{name}="{_escape_label_value(value)}"' for name, value in extra
    )
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def _render_family(family: MetricFamily, lines: List[str]) -> None:
    name = family.name
    type_tag = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}[
        family.metric_type
    ]
    lines.append(f"# HELP {name} {_escape_help(family.help_text)}")
    lines.append(f"# TYPE {name} {type_tag}")
    for label_values, metric in family.collect():
        block = _label_block(family.label_names, label_values)
        if isinstance(metric, Counter):
            lines.append(f"{name}{block} {metric.value}")
        elif isinstance(metric, Gauge):
            value = metric.value
            lines.append(
                f"{name}{block} {value if value is not None else 'NaN'}"
            )
        else:
            for le, cumulative in metric.cumulative_buckets():
                le_text = "+Inf" if le is None else str(le)
                bucket_block = _label_block(
                    family.label_names, label_values, extra=(("le", le_text),)
                )
                lines.append(f"{name}_bucket{bucket_block} {cumulative}")
            lines.append(f"{name}_sum{block} {metric.sum}")
            lines.append(f"{name}_count{block} {metric.count}")


def render_prometheus(registry: AnyRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    lines: List[str] = []
    for family in registry.collect():
        _render_family(family, lines)
    return "\n".join(lines) + "\n" if lines else ""


def _metric_json(metric: Union[Counter, Gauge, Histogram]) -> Dict[str, object]:
    if isinstance(metric, Counter):
        return {"value": metric.value}
    if isinstance(metric, Gauge):
        return {"value": metric.value}
    return {
        "sum": metric.sum,
        "count": metric.count,
        "buckets": [
            {"le": le, "cumulative": cumulative}
            for le, cumulative in metric.cumulative_buckets()
        ],
    }


def render_json(
    registry: AnyRegistry, tracer: Optional[AnyTracer] = None
) -> Dict[str, object]:
    """JSON-safe dict of the whole registry (plus recent spans when a
    tracer is given) — the ``/metrics.json`` endpoint's payload."""
    families = []
    for family in registry.collect():
        type_tag = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}[
            family.metric_type
        ]
        families.append(
            {
                "name": family.name,
                "help": family.help_text,
                "type": type_tag,
                "label_names": list(family.label_names),
                "samples": [
                    {
                        "labels": dict(zip(family.label_names, values)),
                        **_metric_json(metric),
                    }
                    for values, metric in family.collect()
                ],
            }
        )
    payload: Dict[str, object] = {"metrics": families}
    if tracer is not None:
        payload["spans"] = tracer.as_dict()
    return payload
