"""Versioned binary checkpoints for exact state persistence.

A checkpoint file holds the complete, exact state of a detection engine at
a *packet boundary*: after exactly ``meta["packets"]`` packets of the
source have been ingested.  Because EARDet's state is all-integer, the
encoding below is lossless and restoring a checkpoint then replaying the
remaining packets is **bit-identical** to never having stopped.

File layout (all integers little-endian)::

    bytes 0-3   magic  b"ERCK"
    bytes 4-5   format version (uint16), currently 1
    bytes 6-9   payload length (uint32)
    bytes 10-   payload: one encoded value (the checkpoint dict)
    last 4      CRC-32 of the payload

The payload encoding is a small, self-describing tagged format (a
deliberately tiny CBOR-like scheme rather than pickle: no code execution
on load, stable across Python versions, and deterministic — equal states
produce equal bytes, which makes checkpoint files diffable and
content-addressable).  Supported values: ``None``, bools, arbitrary-
precision ints, floats, strings, bytes, tuples, lists, dicts, and
:class:`~repro.model.packet.FiveTuple` flow IDs.

Writes are atomic and termination-safe: the payload goes to a temp file
in the same directory (fsync'd before the atomic ``os.replace``, with the
directory fsync'd after), so a crash — or a SIGTERM/SIGKILL — at *any*
instant leaves either the complete previous checkpoint or the complete
new one, never a torn file; a failed attempt's temp file is removed.
``tests/test_checkpoint_hardening.py`` kills a writer mid-write at many
byte offsets and asserts the previous checkpoint stays loadable.

The value codec (:func:`dumps` / :func:`loads`) is also the payload
encoding of the multi-host frame protocol (:mod:`repro.service.net`):
batch and control frames carry one codec value each, under the frame
layer's own magic, sequence numbers and CRC.  Determinism matters there
too — equal payloads produce equal frames, so a retransmitted frame is
byte-identical to the original.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, Union

from ..model.packet import FiveTuple

PathLike = Union[str, Path]

MAGIC = b"ERCK"
#: Bump on any incompatible change to the file layout or value encoding.
FORMAT_VERSION = 1

_HEADER = struct.Struct("<4sHI")
_CRC = struct.Struct("<I")

# Value tags.
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_FIVETUPLE = 0x0A


class CheckpointError(ValueError):
    """Raised on malformed, truncated, or corrupt checkpoint data."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file is damaged: truncated, zero-byte, or failing its
    CRC.  Carries forensics for the operator:

    - ``offset`` — byte offset at which the damage was detected (for
      truncation, the file length);
    - ``expected_crc`` / ``actual_crc`` — the stored vs recomputed
      payload CRC-32, when the failure is a CRC mismatch.

    Distinct from a plain :class:`CheckpointError` (wrong magic, foreign
    file, unsupported version): a *corrupt* checkpoint was once valid,
    so the supervisor treats it as lost state and falls back to an
    earlier checkpoint or a from-scratch replay.
    """

    def __init__(
        self,
        message: str,
        offset: "int | None" = None,
        expected_crc: "int | None" = None,
        actual_crc: "int | None" = None,
    ):
        super().__init__(message)
        self.offset = offset
        self.expected_crc = expected_crc
        self.actual_crc = actual_crc


# -- varints ---------------------------------------------------------------


#: Single-byte varint encodings (values 0..127): the overwhelmingly
#: common case in snapshots, written with one allocation-free lookup.
_VARINT1 = tuple(bytes((v,)) for v in range(0x80))


def _write_uvarint(out: io.BytesIO, value: int) -> None:
    if value < 0x80:
        out.write(_VARINT1[value])
        return
    buf = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            out.write(buf)
            return


def _read_uvarint(data: memoryview, offset: int):
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CheckpointCorruptError(
                f"truncated varint at payload offset {offset}", offset=offset
            )
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


# Arbitrary-precision ints: fixed-width zigzag would overflow, so fold the
# sign into the low bit of the magnitude instead.
def _int_to_uint(value: int) -> int:
    return value << 1 if value >= 0 else ((-value) << 1) | 1


def _uint_to_int(value: int) -> int:
    return -(value >> 1) if value & 1 else value >> 1


# -- value encoding --------------------------------------------------------


# Pre-built one-byte tags (and tag+varint pairs for small ints): the
# encoder is on the checkpoint hot path and, via replay bundles, on the
# forensic capture path; per-call ``bytes((tag,))`` allocations were its
# dominant cost.  The wire format is unchanged.
_B_NONE = bytes((_T_NONE,))
_B_TRUE = bytes((_T_TRUE,))
_B_FALSE = bytes((_T_FALSE,))
_B_INT = bytes((_T_INT,))
_B_FLOAT = bytes((_T_FLOAT,))
_B_STR = bytes((_T_STR,))
_B_BYTES = bytes((_T_BYTES,))
_B_FIVETUPLE = bytes((_T_FIVETUPLE,))
_B_TUPLE = bytes((_T_TUPLE,))
_B_LIST = bytes((_T_LIST,))
_B_DICT = bytes((_T_DICT,))
_B_INT_SMALL = tuple(bytes((_T_INT, v)) for v in range(0x80))


def _encode(out: io.BytesIO, value: Any) -> None:
    if value is None:
        out.write(_B_NONE)
    elif value is True:
        out.write(_B_TRUE)
    elif value is False:
        out.write(_B_FALSE)
    elif isinstance(value, int):
        folded = value << 1 if value >= 0 else ((-value) << 1) | 1
        if folded < 0x80:
            out.write(_B_INT_SMALL[folded])
        else:
            out.write(_B_INT)
            _write_uvarint(out, folded)
    elif isinstance(value, float):
        out.write(_B_FLOAT)
        out.write(struct.pack("<d", value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.write(_B_STR)
        _write_uvarint(out, len(encoded))
        out.write(encoded)
    elif isinstance(value, bytes):
        out.write(_B_BYTES)
        _write_uvarint(out, len(value))
        out.write(value)
    elif isinstance(value, FiveTuple):
        out.write(_B_FIVETUPLE)
        for field in (value.src, value.dst, value.sport, value.dport, value.proto):
            _write_uvarint(out, _int_to_uint(field))
    elif isinstance(value, tuple):
        out.write(_B_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _encode(out, item)
    elif isinstance(value, list):
        out.write(_B_LIST)
        _write_uvarint(out, len(value))
        for item in value:
            _encode(out, item)
    elif isinstance(value, dict):
        out.write(_B_DICT)
        _write_uvarint(out, len(value))
        for key, item in value.items():
            _encode(out, key)
            _encode(out, item)
    else:
        raise CheckpointError(
            f"cannot serialize {type(value).__name__} value {value!r}"
        )


def _decode(data: memoryview, offset: int):
    if offset >= len(data):
        raise CheckpointCorruptError(
            f"truncated value at payload offset {offset}", offset=offset
        )
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        raw, offset = _read_uvarint(data, offset)
        return _uint_to_int(raw), offset
    if tag == _T_FLOAT:
        if offset + 8 > len(data):
            raise CheckpointCorruptError(
                f"truncated float at payload offset {offset}", offset=offset
            )
        return struct.unpack_from("<d", data, offset)[0], offset + 8
    if tag in (_T_STR, _T_BYTES):
        length, offset = _read_uvarint(data, offset)
        if offset + length > len(data):
            raise CheckpointCorruptError(
                f"truncated string/bytes at payload offset {offset}",
                offset=offset,
            )
        raw = bytes(data[offset : offset + length])
        offset += length
        return (raw.decode("utf-8") if tag == _T_STR else raw), offset
    if tag == _T_FIVETUPLE:
        fields = []
        for _ in range(5):
            raw, offset = _read_uvarint(data, offset)
            fields.append(_uint_to_int(raw))
        return FiveTuple(*fields), offset
    if tag in (_T_TUPLE, _T_LIST):
        count, offset = _read_uvarint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode(data, offset)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), offset
    if tag == _T_DICT:
        count, offset = _read_uvarint(data, offset)
        result = {}
        for _ in range(count):
            key, offset = _decode(data, offset)
            value, offset = _decode(data, offset)
            result[key] = value
        return result, offset
    raise CheckpointCorruptError(
        f"unknown value tag 0x{tag:02x} at payload offset {offset - 1}",
        offset=offset - 1,
    )


# -- public codec ----------------------------------------------------------


def dumps(value: Any) -> bytes:
    """Serialize a checkpoint value to framed, CRC-protected bytes."""
    payload = io.BytesIO()
    _encode(payload, value)
    body = payload.getvalue()
    return (
        _HEADER.pack(MAGIC, FORMAT_VERSION, len(body))
        + body
        + _CRC.pack(zlib.crc32(body))
    )


def loads(data: bytes) -> Any:
    """Parse bytes produced by :func:`dumps`, verifying magic, version,
    length and CRC."""
    if len(data) < _HEADER.size + _CRC.size:
        raise CheckpointCorruptError(
            f"checkpoint too short ({len(data)} bytes; a valid file is at "
            f"least {_HEADER.size + _CRC.size})",
            offset=len(data),
        )
    magic, version, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CheckpointError(f"bad magic {magic!r}; not a checkpoint file")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    body_end = _HEADER.size + length
    if body_end + _CRC.size != len(data):
        raise CheckpointCorruptError(
            f"length mismatch: header says {length} payload bytes, file has "
            f"{len(data) - _HEADER.size - _CRC.size}",
            offset=len(data),
        )
    body = data[_HEADER.size : body_end]
    (crc,) = _CRC.unpack_from(data, body_end)
    actual = zlib.crc32(body)
    if crc != actual:
        raise CheckpointCorruptError(
            f"CRC mismatch (stored 0x{crc:08x}, computed 0x{actual:08x}); "
            "checkpoint is corrupt",
            offset=body_end,
            expected_crc=crc,
            actual_crc=actual,
        )
    value, offset = _decode(memoryview(body), 0)
    if offset != len(body):
        raise CheckpointCorruptError(
            f"{len(body) - offset} trailing payload bytes", offset=offset
        )
    return value


# -- checkpoint files ------------------------------------------------------


def write_checkpoint(
    path: PathLike,
    payload: Dict[str, Any],
    retry=None,
    attempts: int = 3,
    sleep=None,
    durable: bool = True,
) -> int:
    """Atomically write a checkpoint dict; returns bytes written.

    The temp-file + rename dance guarantees readers (and crash recovery)
    only ever see a complete previous or complete new checkpoint.

    ``retry`` is an optional
    :class:`~repro.service.backoff.BackoffPolicy`: transient ``OSError``
    failures (a momentarily full or flaky filesystem) are retried up to
    ``attempts - 1`` times with the policy's delays before the last
    error propagates.  With ``retry=None`` (the default) a failure
    propagates immediately — the historical behaviour.  ``sleep`` is
    injectable for tests.

    ``durable=False`` skips the file and directory fsyncs while keeping
    the atomic rename: the old-or-new invariant against *process* death
    still holds, but the new file can be lost to a power failure.
    Replay-bundle capture uses this — a torn or missing bundle fails
    loudly on read (the container CRC), so durability there is a latency
    trade, not a correctness one; recovery checkpoints must keep the
    default.
    """
    path = Path(path)
    data = dumps(payload)
    # The temp name embeds the pid so a checkpoint directory shared by a
    # supervisor and the service it restarted never sees two writers
    # clobbering each other's in-progress file.
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    if sleep is None:
        import time

        sleep = time.sleep
    attempt = 0
    while True:
        try:
            try:
                with open(tmp, "wb") as handle:
                    handle.write(data)
                    if durable:
                        handle.flush()
                        os.fsync(handle.fileno())
                os.replace(tmp, path)
            except BaseException:
                # Never leave a torn temp file behind — neither on an
                # OSError (we may retry into a fresh one) nor on an
                # interrupt unwinding through here.  A SIGKILL skips this,
                # which is fine: the stray .tmp is inert and the real
                # checkpoint was never touched.
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            if durable:
                _fsync_directory(path.parent)
            return len(data)
        except OSError:
            if retry is None or attempt >= attempts - 1:
                raise
            sleep(retry.delay_s(attempt))
            attempt += 1


def _fsync_directory(directory: Path) -> None:
    """Flush the directory entry after a rename, so the *new* checkpoint
    survives power loss too (the rename itself already guarantees the
    old-or-new invariant against process death).  Best-effort: some
    filesystems refuse ``open(dir)``."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def read_checkpoint(path: PathLike) -> Dict[str, Any]:
    """Read and validate a checkpoint file."""
    with open(path, "rb") as handle:
        data = handle.read()
    payload = loads(data)
    if not isinstance(payload, dict) or "meta" not in payload:
        raise CheckpointError(f"{path}: payload is not a checkpoint dict")
    return payload


def _watcher_occupancy(state: Dict[str, Any]) -> int:
    """Watchlist size of one slot's watcher snapshot, kind-agnostic:
    LOFT keeps an explicit watch table; CLEF's twin RLFDs hold a fixed
    counter array, where occupancy = counters currently non-zero."""
    if "watch" in state:
        return len(state.get("watch") or [])
    if "fast" in state:
        total = 0
        for twin in ("fast", "slow"):
            counts = (state.get(twin) or {}).get("counts") or []
            total += sum(1 for count in counts if count)
        return total
    return 0


def summarize_checkpoint(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Structured per-shard state sizes for a checkpoint (the machine
    face of ``eardet checkpoint inspect --json``).

    Slot detector states are grouped onto the shard currently hosting
    them under the checkpoint's layout (identity when the checkpoint
    predates resharding), and each shard row reports counter occupancy,
    blacklist length, detections, packets and — when a watcher stage is
    armed — its watchlist size, plus a per-slot breakdown.
    """
    engine = payload.get("engine", {})
    slot_states = engine.get("shards", [])
    slots = int(engine.get("slots") or len(slot_states))
    layout = engine.get("layout") or {
        "slots": slots,
        "assignment": [
            slot % max(1, int(engine.get("shard_count") or 1))
            for slot in range(slots)
        ],
        "shards": int(engine.get("shard_count") or 1),
        "epoch": 0,
    }
    watcher = engine.get("watcher") or {}
    watcher_states = watcher.get("shards") or []
    assignment = list(layout.get("assignment", []))
    shard_rows = []
    for shard in range(int(layout.get("shards", 1))):
        hosted = [
            slot for slot, owner in enumerate(assignment) if owner == shard
        ]
        row = {
            "shard": shard,
            "slots": hosted,
            "counters_in_use": 0,
            "counter_capacity": 0,
            "blacklist": 0,
            "detections": 0,
            "packets": 0,
            "watcher_watchlist": 0,
            "per_slot": [],
        }
        for slot in hosted:
            state = slot_states[slot]
            store = state.get("store", {})
            entries = store.get("entries", [])
            capacity = store.get("capacity", 0)
            blacklist = len(state.get("blacklist", []))
            detections = len(state.get("sink", []))
            packets = state.get("stats", {}).get("packets", 0)
            watchlist = (
                _watcher_occupancy(watcher_states[slot])
                if slot < len(watcher_states)
                else 0
            )
            row["counters_in_use"] += len(entries)
            row["counter_capacity"] += capacity or 0
            row["blacklist"] += blacklist
            row["detections"] += detections
            row["packets"] += packets
            row["watcher_watchlist"] += watchlist
            row["per_slot"].append(
                {
                    "slot": slot,
                    "counters_in_use": len(entries),
                    "counter_capacity": capacity,
                    "blacklist": blacklist,
                    "detections": detections,
                    "packets": packets,
                    "watcher_watchlist": watchlist,
                }
            )
        shard_rows.append(row)
    summary: Dict[str, Any] = {
        "layout": layout,
        "shards": shard_rows,
    }
    if watcher:
        summary["watcher_kind"] = (watcher.get("policy") or {}).get("kind")
    return summary


def describe_checkpoint(payload: Dict[str, Any]) -> str:
    """Human-readable summary of a checkpoint (``eardet checkpoint
    inspect``)."""
    meta = payload.get("meta", {})
    lines = [f"checkpoint (format {FORMAT_VERSION})"]
    for key in sorted(meta):
        if key == "control":
            continue  # rendered structurally below
        value = meta[key]
        if isinstance(value, dict):
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(value.items()))
            lines.append(f"  {key}: {rendered}")
        else:
            lines.append(f"  {key}: {value}")
    control = meta.get("control")
    if control is None:
        if "config" in meta:
            lines.append("  config epoch: 0 (static; no retune recorded)")
    else:
        lines.append(f"  config epoch: {control.get('epoch', 0)}")
        inputs = control.get("inputs")
        if inputs:
            lines.append(
                "  solver inputs: "
                f"gamma_l={inputs.get('gamma_l')}, "
                f"beta_l={inputs.get('beta_l')}, "
                f"gamma_h={inputs.get('gamma_h')}, "
                f"t_upincb={inputs.get('t_upincb_seconds')}s, "
                f"alpha={inputs.get('alpha')}"
            )
        for entry in control.get("history") or []:
            cfg = entry.get("config") or {}
            lines.append(
                f"    epoch {entry.get('epoch')}: from packet "
                f"{entry.get('from_packets')} — n={cfg.get('n')}, "
                f"gamma_l={cfg.get('gamma_l')}, "
                f"beta_th={cfg.get('beta_th')}"
            )
    summary = summarize_checkpoint(payload)
    layout = summary["layout"]
    shard_rows = summary["shards"]
    lines.append(
        f"  engine layout: {layout.get('slots')} slots over "
        f"{layout.get('shards')} shards (epoch {layout.get('epoch', 0)})"
    )
    has_watcher = "watcher_kind" in summary
    for row in shard_rows:
        line = (
            f"    shard {row['shard']}: "
            f"{row['counters_in_use']}/{row['counter_capacity'] or '?'} "
            f"counters, {row['blacklist']} blacklisted, "
            f"{row['detections']} detections, {row['packets']} packets"
        )
        if has_watcher:
            line += f", watchlist {row['watcher_watchlist']}"
        if len(row["slots"]) != 1 or row["slots"] != [row["shard"]]:
            slots = ",".join(str(slot) for slot in row["slots"])
            line += f" (slots {slots or 'none — hot spare'})"
        lines.append(line)
        if len(row["slots"]) > 1:
            for slot_row in row["per_slot"]:
                lines.append(
                    f"      slot {slot_row['slot']}: "
                    f"{slot_row['counters_in_use']}/"
                    f"{slot_row['counter_capacity'] or '?'} counters, "
                    f"{slot_row['blacklist']} blacklisted, "
                    f"{slot_row['detections']} detections, "
                    f"{slot_row['packets']} packets"
                )
    engine = payload.get("engine", {})
    watcher = engine.get("watcher")
    if watcher:
        policy = watcher.get("policy", {})
        shards = watcher.get("shards", [])
        lines.append(
            f"  watcher stage: {policy.get('kind', '?')} across "
            f"{len(shards)} slots (probabilistic; separate from the "
            "exact detections above)"
        )
    return "\n".join(lines)
