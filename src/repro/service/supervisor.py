"""Supervised serving: restart-from-checkpoint with an exactness story.

EARDet's value is a *deterministic* no-FN/no-FP guarantee, which makes
fault tolerance unusually demanding: a recovery that merely "keeps
serving" is worthless if it silently voids the guarantee.  The
:class:`Supervisor` therefore recovers along exactly one of two paths,
and reports which:

1. **Exact recovery** — a shard worker died (or a queue stalled, or the
   source hiccuped transiently): tear the engine down, reload the last
   checkpoint, and replay the source suffix.  Checkpoints are exact and
   sources are replayable, so the recovered run's detections — flow ids
   *and* timestamps — are bit-identical to an unfailed run's.  A corrupt
   or missing checkpoint falls back to a from-scratch replay, which is
   slower but equally exact.
2. **Graceful degradation** — the stream itself is lost (permanent
   source failure) or restarts are exhausted while lossy faults keep
   packets from being processed: the supervisor drains what it has and
   returns a report whose per-shard exactness envelope says precisely
   where the guarantee stopped holding (``exact=False`` +
   first-loss timestamp), so downstream consumers widen their ambiguity
   region instead of trusting stale guarantees.

Restarts use bounded exponential backoff and a restart *budget*; when
the budget is exhausted the supervisor raises
:class:`~repro.service.errors.RestartBudgetExceededError` rather than
crash-looping.

Liveness is watched two ways: the engines surface dead workers as
:class:`~repro.service.errors.ShardCrashError` from the ingest path, and
the supervisor's per-batch monitor additionally compares worker
heartbeats against ``heartbeat_timeout_s`` to catch wedged-but-alive
shards (raised as :class:`~repro.service.errors.QueueStallError`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Union

from ..core.config import EARDetConfig
from ..model.packet import Packet
from .backoff import BackoffPolicy
from .checkpoint import CheckpointError
from .engine import DEFAULT_QUEUE_CAPACITY
from .errors import (
    InvariantViolation,
    PermanentSourceError,
    QueueStallError,
    RecoverableServiceError,
    RestartBudgetExceededError,
)
from .health import DeadLetterSink, ServiceReport
from .overload import OverloadPolicy
from .pipeline import WatcherPolicy
from .runtime import DetectionService
from .sources import DEFAULT_BATCH_SIZE, PacketSource, as_source


@dataclass(frozen=True)
class RestartPolicy:
    """How hard the supervisor tries before giving up.

    ``max_restarts`` bounds the *total* restarts across a run (the
    budget).  The delay schedule is the shared
    :class:`~repro.service.backoff.BackoffPolicy`: geometric growth from
    ``backoff_initial_s`` by ``backoff_factor``, capped at
    ``backoff_max_s``, with optional deterministic ``jitter`` seeded by
    ``seed`` (so a fleet of supervisors restarting off the same incident
    does not thundering-herd, yet every test replay sleeps identically).
    """

    max_restarts: int = 5
    backoff_initial_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter: float = 0.0
    seed: int = 0

    @property
    def backoff(self) -> BackoffPolicy:
        """The equivalent shared backoff policy."""
        return BackoffPolicy(
            initial_s=self.backoff_initial_s,
            factor=self.backoff_factor,
            max_s=self.backoff_max_s,
            jitter=self.jitter,
            seed=self.seed,
        )

    def delay_s(self, restart_index: int) -> float:
        """Backoff before restart number ``restart_index`` (0-based)."""
        return self.backoff.delay_s(restart_index)


class Supervisor:
    """Run a :class:`DetectionService` under supervised restart.

    Accepts the same construction parameters as the service, plus the
    supervision knobs.  ``checkpoint_path`` is strongly recommended:
    without it every recovery is a from-scratch replay (still exact,
    just linear in the stream position at the crash).

    Parameters beyond :class:`DetectionService`'s:

    policy:
        The :class:`RestartPolicy` (budget + backoff).
    heartbeat_timeout_s:
        When set and the engine exposes heartbeats (multiprocess), a
        shard whose heartbeat is older than this is treated as wedged
        and restarted (:class:`QueueStallError`).
    sleep / clock:
        Injectable for deterministic tests.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` context, threaded
        into every service this supervisor builds (fresh and recovered
        alike, so one registry spans restarts) and fed the supervisor's
        own restart/backoff/incident counters.
    forensics:
        Optional :class:`~repro.forensics.ForensicsLab`, threaded into
        every service this supervisor builds (one lab spans restarts, so
        a recovered service does not re-announce incidents it already
        explained).  The supervisor's own incidents — recoveries,
        restarts, source failures, invariant violations — are appended
        to the lab's store; without a lab they land in a memory-only
        :class:`~repro.forensics.IncidentStore` so ``report.incidents``
        is structured either way.
    """

    def __init__(
        self,
        config: EARDetConfig,
        shards: int = 1,
        engine: str = "inprocess",
        seed: int = 0,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        overflow: str = "block",
        policy: Optional[RestartPolicy] = None,
        fault_plan=None,
        dead_letter: Optional[DeadLetterSink] = None,
        heartbeat_timeout_s: Optional[float] = None,
        invariant_every: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.perf_counter,
        telemetry=None,
        overload: Optional[OverloadPolicy] = None,
        checkpoint_backoff: Optional[BackoffPolicy] = None,
        watcher: Optional[WatcherPolicy] = None,
        slots: Optional[int] = None,
        coordinator=None,
        engine_options: Optional[Dict[str, object]] = None,
        forensics=None,
        controller=None,
    ):
        self.config = config
        self.engine_options = engine_options
        self.shards = shards
        self.slots = slots
        self.coordinator = coordinator
        #: A :class:`~repro.control.ControlPolicy` (each restarted
        #: service builds a fresh controller from it — hysteresis state
        #: does not survive a crash, by design) or a live controller.
        self.controller = controller
        self.engine_kind = engine
        self.seed = seed
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.batch_size = batch_size
        self.queue_capacity = queue_capacity
        self.overflow = overflow
        self.policy = policy or RestartPolicy()
        self.fault_plan = fault_plan
        self.dead_letter = dead_letter or DeadLetterSink()
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.invariant_every = invariant_every
        self.overload = overload
        self.checkpoint_backoff = checkpoint_backoff
        self.watcher = watcher
        self._drain_requested = False
        self._sleep = sleep
        self._clock = clock
        self.restarts = 0
        self.forensics = forensics
        # Deferred import: repro.forensics depends on service submodules
        # (checkpoint), so a module-level import here would cycle.
        from ..forensics.incidents import Incident, IncidentStore

        #: Structured incident records (:class:`~repro.forensics.
        #: Incident`).  ``str()`` of each record is the historical
        #: rendered line, and substring ``in`` checks search it, so code
        #: written against the plain-string log keeps working.
        self.incidents: List[Incident] = []
        self._store = (
            forensics.store if forensics is not None else IncidentStore()
        )
        self._service: Optional[DetectionService] = None
        self.telemetry = telemetry
        self._instruments = None
        if telemetry is not None and telemetry.enabled:
            from ..telemetry import ServiceInstruments

            self._instruments = ServiceInstruments(telemetry)

    def _note_incident(
        self,
        message: str,
        incident_class: str = "restart",
        severity: str = "warning",
        packet_index: Optional[int] = None,
        payload: Optional[Dict[str, object]] = None,
        bundle: Optional[str] = None,
    ) -> None:
        record = self._store.append(
            incident_class,
            message,
            severity=severity,
            packet_index=packet_index,
            payload=payload,
            bundle=bundle,
        )
        self.incidents.append(record)
        if self._instruments is not None:
            self._instruments.on_incident(incident_class)

    # -- construction helpers ----------------------------------------------

    def _fresh_service(self) -> DetectionService:
        return DetectionService(
            self.config,
            shards=self.shards,
            engine=self.engine_kind,
            seed=self.seed,
            checkpoint_path=self.checkpoint_path,
            checkpoint_every=self.checkpoint_every,
            batch_size=self.batch_size,
            queue_capacity=self.queue_capacity,
            overflow=self.overflow,
            fault_plan=self.fault_plan,
            dead_letter=self.dead_letter,
            invariant_every=self.invariant_every,
            telemetry=self.telemetry,
            overload=self.overload,
            checkpoint_backoff=self.checkpoint_backoff,
            watcher=self.watcher,
            slots=self.slots,
            coordinator=self.coordinator,
            engine_options=self.engine_options,
            forensics=self.forensics,
            controller=self.controller,
        )

    def _recovered_service(self) -> DetectionService:
        """Resume from the last checkpoint; fall back to a from-scratch
        replay when there is no checkpoint or it is corrupt (both paths
        are exact — the fallback just replays more)."""
        path = self.checkpoint_path
        if path is not None and os.path.exists(path):
            try:
                service = DetectionService.resume(
                    path,
                    engine=self.engine_kind,
                    checkpoint_every=self.checkpoint_every,
                    batch_size=self.batch_size,
                    queue_capacity=self.queue_capacity,
                    overflow=self.overflow,
                    fault_plan=self.fault_plan,
                    dead_letter=self.dead_letter,
                    telemetry=self.telemetry,
                    invariant_every=self.invariant_every,
                    overload=self.overload,
                    checkpoint_backoff=self.checkpoint_backoff,
                    watcher=self.watcher,
                    coordinator=self.coordinator,
                    engine_options=self.engine_options,
                    forensics=self.forensics,
                    controller=self.controller,
                )
                self._note_incident(
                    f"recovered from checkpoint at packet {service.ingested}",
                    incident_class="recovery",
                    severity="info",
                    packet_index=service.ingested,
                )
                return service
            except CheckpointError as error:
                self._note_incident(
                    f"checkpoint unusable ({error}); replaying from scratch",
                    incident_class="recovery",
                    severity="warning",
                    payload={"error": str(error)},
                )
        else:
            self._note_incident(
                "no checkpoint available; replaying from scratch",
                incident_class="recovery",
                severity="warning",
            )
        return self._fresh_service()

    # -- monitoring --------------------------------------------------------

    def _monitor(self, service: DetectionService) -> None:
        """Per-batch liveness probe, installed as ``serve(on_progress=)``."""
        engine = service.engine
        check = getattr(engine, "check_workers", None)
        if check is not None:
            check()
        if self.heartbeat_timeout_s is not None:
            ages = getattr(engine, "heartbeat_ages", None)
            if ages is not None:
                for shard, age in enumerate(ages()):
                    if age > self.heartbeat_timeout_s:
                        raise QueueStallError(
                            f"shard {shard} heartbeat is {age:.1f}s old "
                            f"(timeout {self.heartbeat_timeout_s:.1f}s)",
                            shard=shard,
                            stalled_s=age,
                        )

    # -- the supervised run ------------------------------------------------

    def run(
        self,
        source: Union[PacketSource, Iterable[Packet]],
        max_packets: Optional[int] = None,
    ) -> ServiceReport:
        """Serve ``source`` to exhaustion under supervision.

        ``max_packets`` bounds the run in *total stream packets* (so it
        means the same thing across restarts).  Returns the final
        :class:`ServiceReport`, annotated with restart count, incident
        log, and the exactness envelope.
        """
        source = as_source(source)
        if not source.replayable:
            raise PermanentSourceError(
                f"source {source.name!r} is not replayable; supervised "
                "restart could not recover it exactly — wrap it in a "
                "replayable source (trace file, broker) to supervise"
            )
        started = self._clock()
        service = self._service = self._fresh_service()
        if self._drain_requested:
            service.request_drain()
        while True:
            try:
                remaining = (
                    None if max_packets is None
                    else max(0, max_packets - service.ingested)
                )
                report = service.serve(
                    source, max_packets=remaining, on_progress=self._monitor
                )
                return self._annotate(report, service, source, started)
            except PermanentSourceError as error:
                # The stream itself is gone: degrade, don't spin.  Drain
                # what was ingested and state exactly what is still
                # guaranteed.
                self._note_incident(
                    f"permanent source failure: {error}",
                    incident_class="source-failure",
                    severity="error",
                    packet_index=service.ingested,
                    payload={"position": getattr(error, "position", None)},
                )
                service.engine.flush()
                report = service.report(
                    duration_s=self._clock() - started
                )
                report = self._annotate(report, service, source, started)
                for entry in report.envelope:
                    entry.exact = False
                    if not entry.reason:
                        entry.reason = (
                            "stream truncated by permanent source failure "
                            f"at packet {error.position}"
                        )
                return report
            except InvariantViolation as error:
                # Corrupted algorithm state: a restart (from the same
                # logic, or a checkpoint taken by it) cannot fix this.
                # Record the forensics and abort — never restart-loop on
                # a permanent error.
                bundle = None
                bundle_incomplete = False
                if self.forensics is not None:
                    # Snapshot the replay bundle before aborting: the
                    # capture ring still holds the batches that tripped
                    # the invariant.
                    bundle, bundle_incomplete = (
                        self.forensics.capture_violation(service, error)
                    )
                self._note_incident(
                    f"InvariantViolation ({error.check}): {error} "
                    f"(at ~packet {service.ingested}; permanent, aborting)",
                    incident_class="invariant-violation",
                    severity="critical",
                    packet_index=service.ingested,
                    payload={
                        "check": error.check,
                        "incomplete": bundle_incomplete,
                    },
                    bundle=bundle,
                )
                service.abort()
                raise
            except RecoverableServiceError as error:
                self._note_incident(
                    f"{type(error).__name__}: {error} "
                    f"(at ~packet {service.ingested})",
                    incident_class="restart",
                    severity="warning",
                    packet_index=service.ingested,
                    payload={"error_type": type(error).__name__},
                )
                service.abort()
                if self.restarts >= self.policy.max_restarts:
                    raise RestartBudgetExceededError(
                        f"gave up after {self.restarts} supervised restarts "
                        f"(budget {self.policy.max_restarts}); last cause: "
                        f"{error}",
                        restarts=self.restarts,
                        last_cause=error,
                    ) from error
                delay_s = self.policy.delay_s(self.restarts)
                if self._instruments is not None:
                    self._instruments.on_backoff(delay_s)
                self._sleep(delay_s)
                self.restarts += 1
                if self._instruments is not None:
                    self._instruments.on_restart()
                service = self._service = self._recovered_service()
                if self._drain_requested:
                    # A drain that arrived mid-recovery still applies to
                    # the recovered service: it will flush and stop at
                    # its first batch boundary.
                    service.request_drain()

    @property
    def drain_requested(self) -> bool:
        return self._drain_requested

    def request_drain(self) -> None:
        """Forward a graceful-drain request (e.g. from a SIGTERM handler)
        to the currently running service; survives restarts.  Safe to
        call from a signal handler; idempotent."""
        self._drain_requested = True
        if self._service is not None:
            self._service.request_drain()

    def shutdown(self, drain: bool = False) -> None:
        """Tear down the most recent underlying service (idempotent)."""
        if self._service is not None:
            self._service.shutdown(drain=drain)

    def _annotate(
        self,
        report: ServiceReport,
        service: DetectionService,
        source: PacketSource,
        started: float,
    ) -> ServiceReport:
        report.packets = service.ingested
        report.duration_s = self._clock() - started
        report.restarts = self.restarts
        report.incidents = list(self.incidents)
        report.dead_letters = self.dead_letter.total
        report.source_retries = _source_retries(source)
        if self._instruments is not None:
            self._instruments.sync_source_retries(report.source_retries)
        return report


def _source_retries(source) -> int:
    """Total transient failures absorbed anywhere in a source wrapper
    chain (each wrapper holds the next source as ``_inner``)."""
    total = 0
    seen = set()
    while source is not None and id(source) not in seen:
        seen.add(id(source))
        total += getattr(source, "retries", 0)
        source = getattr(source, "_inner", None)
    return total
