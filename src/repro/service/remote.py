"""Multi-host sharded engine: one TCP shard server per shard.

:class:`RemoteEngine` is the third engine behind the common interface
(:class:`~repro.service.engine.InProcessEngine` is the reference,
:class:`~repro.service.workers.MultiprocessEngine` the one-host
throughput deployment): the parent routes packets exactly as the
multiprocess parent does — memoized flow→slot hashing, slot→shard
assignment, wire-tuple staging buffers, parent-side watcher and loss
accounting — but ships chunks as exactly-once ``BATCH`` frames over
:mod:`repro.service.net` to shard servers that may live on other hosts
(``eardet worker --listen``).

Determinism is inherited: slots are independent and each processes its
hash sub-stream in arrival order no matter which host serves it, so
detections are bit-identical to the in-process engine's — the network
may duplicate, reorder, or replay frames, but the sequence discipline
reduces all of that to exactly-once in-order application.

**The partition policy** is where networks genuinely differ from
``multiprocessing`` queues, and it mirrors the per-shard exactness
envelope the service has had since PR 2:

- While a shard's endpoint is unreachable, the outage is **masked
  exactly**: frames accumulate in the connection's unacked ring (bounded
  by ``mask_frame_limit``) while reconnects run under the shared
  :class:`~repro.service.backoff.BackoffPolicy`, up to
  ``mask_deadline_s`` from the first failed send.  A reconnect inside
  that budget replays the ring and nothing was ever lost.
- Beyond either bound the shard's exactness envelope is **voided from
  the first unsendable packet**: that packet and every routed successor
  during the outage is dead-lettered with reason ``"partition"`` and
  counted (integer identity: every routed packet is either applied
  exactly once by its server or accounted here).  Frames already in the
  ring are *not* loss — they replay on reconnect.

Everything else — snapshots via control barriers at exact stream
prefixes, the two-phase migration primitives, graceful drain — works
like the multiprocess engine, so live resharding across hosts and the
interchangeable checkpoint schema come for free.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.blacklist import ReportSink
from ..core.config import EARDetConfig
from ..detectors.hashing import StageHash
from ..model.packet import FlowId, Packet
from .backoff import BackoffPolicy
from .engine import ENGINE_SNAPSHOT_FORMAT, FlowRouter
from .errors import MigrationError, TransportError
from .health import DeadLetterSink, ExactnessEnvelope, ShardHealth
from .net import (
    FT_BATCH,
    FT_CONTROL,
    ShardConnection,
    next_session_id,
    parse_endpoint,
)
from .reshard import MigrationPlan, ShardLayout
from .workers import (
    DEFAULT_CHUNK_SIZE,
    WorkerError,
    _invariant_from_payload,
)

#: Default bound on how long an endpoint outage is masked exactly before
#: the shard's envelope is voided (seconds from the first failed send).
DEFAULT_MASK_DEADLINE_S = 5.0

#: Default bound on unacked frames buffered per connection while an
#: outage is masked (also the connected-side backpressure watermark).
DEFAULT_MASK_FRAME_LIMIT = 256

#: Default deadline for one control barrier (snapshot / extract /
#: install / stop), reconnects and replays included.
DEFAULT_BARRIER_TIMEOUT_S = 60.0

Endpoint = Union[str, Tuple[str, int]]


def _as_endpoint(value: Endpoint) -> Tuple[str, int]:
    if isinstance(value, str):
        return parse_endpoint(value)
    host, port = value
    return str(host), int(port)


class RemoteEngine:
    """Sharded EARDet across TCP shard servers, same interface and
    snapshot schema as the in-tree engines — including the live
    migration primitives (slots move between hosts through exactly-once
    extract/install control barriers).

    ``endpoints`` lists one ``host:port`` (or ``(host, port)``) per
    shard, in shard order; connections are established lazily on first
    ingestion (so :meth:`restore` can precede them, exactly like the
    multiprocess engine).  A layout restored from a checkpoint may use
    fewer shards than there are endpoints — the spares idle until a
    migration grows onto them; it may never need more.
    """

    def __init__(
        self,
        config: EARDetConfig,
        endpoints: Sequence[Endpoint],
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        fault_plan=None,
        dead_letter: Optional[DeadLetterSink] = None,
        invariant_every: Optional[int] = None,
        overload=None,
        watcher=None,
        slots: Optional[int] = None,
        shards: Optional[int] = None,
        backoff: Optional[BackoffPolicy] = None,
        mask_deadline_s: float = DEFAULT_MASK_DEADLINE_S,
        mask_frame_limit: int = DEFAULT_MASK_FRAME_LIMIT,
        connect_timeout_s: float = 5.0,
        barrier_timeout_s: float = DEFAULT_BARRIER_TIMEOUT_S,
    ):
        self._endpoints = [_as_endpoint(value) for value in endpoints]
        if not self._endpoints:
            raise ValueError("need at least one worker endpoint")
        if shards is None:
            shards = len(self._endpoints)
        if not 1 <= shards <= len(self._endpoints):
            raise ValueError(
                f"shards must be between 1 and the {len(self._endpoints)} "
                f"worker endpoints provided, got {shards}"
            )
        if overload is not None:
            raise ValueError(
                "the remote engine does not support the overload ladder; "
                "the partition policy (mask_deadline_s / mask_frame_limit) "
                "is its accounted degradation path"
            )
        if slots is None:
            slots = shards
        if slots < shards:
            raise ValueError(
                f"need at least as many slots as shards, got {slots} slots "
                f"for {shards} shards"
            )
        if chunk_size < 1:
            raise ValueError(f"chunk size must be positive, got {chunk_size}")
        if mask_deadline_s < 0:
            raise ValueError(
                f"mask_deadline_s must be >= 0, got {mask_deadline_s}"
            )
        if mask_frame_limit < 1:
            raise ValueError(
                f"mask_frame_limit must be >= 1, got {mask_frame_limit}"
            )
        self.config = config
        self.chunk_size = chunk_size
        self.mask_deadline_s = mask_deadline_s
        self.mask_frame_limit = mask_frame_limit
        self.connect_timeout_s = connect_timeout_s
        self.barrier_timeout_s = barrier_timeout_s
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.invariant_every = invariant_every
        self._plan = fault_plan
        self._dead_letter = dead_letter
        self._shards = shards
        self._layout = ShardLayout.default(slots, shards)
        self._assignment: List[int] = list(self._layout.assignment)
        self._hash = StageHash(seed=seed, buckets=slots)
        self._route = FlowRouter(self._hash)
        self._buffers: List[list] = [[] for _ in range(shards)]
        # Shard-local arrival index of each staged tuple (parallel to
        # _buffers), so a voided partition can dead-letter the exact
        # positional tuple the forensics replay needs.
        self._buffer_indices: List[list] = [[] for _ in range(shards)]
        self._accepted = 0
        self._slot_states: Optional[List] = None
        self._final_snapshot: Optional[Dict[str, object]] = None
        self._routed = [0] * shards
        self._dropped = [0] * shards
        self._first_loss: List[Optional[int]] = [None] * shards
        self._loss_reason = [""] * shards
        self._queue_high_water = [0] * shards
        self._last_packet_ts: List[Optional[int]] = [None] * shards
        # Partition-policy state: when the current outage began (None
        # while reachable) and how many outages each shard has seen.
        self._outage_since: List[Optional[float]] = [None] * shards
        self._outages = [0] * shards
        self._connections: Optional[List[ShardConnection]] = None
        self._closed_reports: Optional[List[Dict[str, object]]] = None
        self._session: Optional[int] = None
        if watcher is not None and watcher.shard_count != slots:
            raise ValueError(
                f"watcher stage has {watcher.shard_count} watchers, engine "
                f"has {slots} slots (the stage is slot-granular)"
            )
        self.watcher = watcher

    # -- introspection -----------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self._layout.shards

    @property
    def slot_count(self) -> int:
        return self._layout.slots

    @property
    def layout(self) -> ShardLayout:
        return self._layout

    @property
    def seed(self) -> int:
        return self._hash.seed

    @property
    def accepted(self) -> int:
        return self._accepted

    @property
    def dropped(self) -> int:
        """Packets accounted as lost parent-side (injected drops plus
        partition-policy loss)."""
        return sum(self._dropped)

    @property
    def routed(self) -> List[int]:
        return list(self._routed)

    @property
    def running(self) -> bool:
        return self._connections is not None

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        return list(self._endpoints)

    def slot_of(self, fid: FlowId) -> int:
        return self._route(fid)

    def shard_of(self, fid: FlowId) -> int:
        return self._assignment[self._route(fid)]

    def queue_depths(self) -> List[int]:
        """Staged packets plus unacked in-flight frames per shard."""
        depths = []
        for index in range(self._shards):
            depth = len(self._buffers[index])
            if self._connections is not None:
                depth += self._connections[index].ring_depth
            depths.append(depth)
        return depths

    @property
    def queue_high_water(self) -> List[int]:
        return list(self._queue_high_water)

    @property
    def last_packet_ts(self) -> List[Optional[int]]:
        return list(self._last_packet_ts)

    # -- liveness ----------------------------------------------------------

    def dead_shards(self) -> List[int]:
        """Shards whose endpoint is currently unreachable *and* whose
        mask budget is exhausted (i.e. actively accounting loss)."""
        if self._connections is None:
            return []
        return [
            index
            for index in range(self._shards)
            if not self._connections[index].connected
            and not self._mask_allows(index)
        ]

    def check_workers(self) -> None:
        """Surface a fatal in-band reply (an invariant violation shipped
        by a dying server) as the permanent error it is.  Mere
        unreachability is *not* raised here — the partition policy
        masks or accounts it instead."""
        if self._connections is None:
            return
        for conn in self._connections:
            self._check_fatal(conn)

    def heartbeat_ages(self) -> List[float]:
        """Seconds each shard has been silent while something is
        outstanding: 0 for a reachable shard with an empty ring (idle is
        not dead), the outage duration for an unreachable one."""
        if self._connections is None:
            return [0.0] * self._shards
        now = time.monotonic()
        ages = []
        for index, conn in enumerate(self._connections):
            since = self._outage_since[index]
            if since is not None:
                ages.append(max(0.0, now - since))
            elif conn.ring_depth > 0:
                ages.append(conn.seconds_since_recv())
            else:
                ages.append(0.0)
        return ages

    # -- lifecycle ---------------------------------------------------------

    def _start(self) -> None:
        if self._connections is not None:
            return
        if self._final_snapshot is not None:
            raise RuntimeError("engine already closed")
        self._session = next_session_id()
        self._connections = [
            ShardConnection(
                shard=index,
                host=host,
                port=port,
                backoff=self.backoff,
                fault_plan=self._plan,
                connect_timeout_s=self.connect_timeout_s,
            )
            for index, (host, port) in enumerate(self._endpoints)
        ]
        for index in range(self._layout.shards):
            self._assign_shard(index)
        self._slot_states = None

    def _assign_shard(self, index: int) -> None:
        """Connect shard ``index`` and deliver its configuration + any
        restored slot states (blocking, with reconnect-under-backoff up
        to the barrier deadline — a fleet that cannot even start is an
        error, not an outage to mask)."""
        slot_ids = self._layout.slots_of(index)
        states = {}
        if self._slot_states is not None:
            states = {
                slot: self._slot_states[slot]
                for slot in slot_ids
                if self._slot_states[slot] is not None
            }
        config = self.config
        reply = self._control(index, {
            "op": "assign",
            "config": {
                "rho": config.rho,
                "n": config.n,
                "beta_th": config.beta_th,
                "alpha": config.alpha,
                "beta_l": config.beta_l,
                "gamma_l": config.gamma_l,
                "virtual_unit": config.virtual_unit,
            },
            "seed": self._hash.seed,
            "slots": self._layout.slots,
            "slot_ids": list(slot_ids),
            "states": states,
            "invariant_every": self.invariant_every,
        })
        if reply.get("op") != "assigned":
            raise TransportError(
                f"shard {index} rejected its assignment: {reply!r}",
                shard=index,
            )

    def close(self, drain: bool = False) -> Dict[str, object]:
        """Graceful stop: flush, stop every shard server (collecting
        final exact states), return the final engine snapshot.  With
        ``drain=True`` CLI-run servers exit with the drain code."""
        if self._final_snapshot is not None:
            return self._final_snapshot
        self._start()
        self.flush()
        states: Dict[int, Dict] = {}
        for index in range(self._layout.shards):
            reply = self._control(index, {"op": "stop", "drain": drain})
            if reply.get("op") != "done":
                raise TransportError(
                    f"shard {index} stop returned {reply!r}", shard=index
                )
            states[index] = {
                int(slot): state
                for slot, state in reply["states"].items()
            }
        self._final_snapshot = self._assemble(states)
        self._teardown()
        return self._final_snapshot

    def terminate(self) -> None:
        """Drop every connection without stopping the servers (crash
        teardown; in-flight state on the servers is abandoned — a
        restarted coordinator session replaces it)."""
        self._teardown()

    def _teardown(self) -> None:
        if self._connections is not None:
            self._closed_reports = [
                conn.report() for conn in self._connections
            ]
            for conn in self._connections:
                conn.close_socket()
        self._connections = None

    # -- ingest ------------------------------------------------------------

    def ingest(self, batch: List[Packet]) -> None:
        """Route packets into per-shard staging buffers, shipping each
        buffer as an exactly-once frame once it fills."""
        self._start()
        self.check_workers()
        buffers = self._buffers
        route = self._route
        assignment = self._assignment
        routed = self._routed
        last_ts = self._last_packet_ts
        chunk_size = self.chunk_size
        plan = self._plan
        watcher = self.watcher
        for packet in batch:
            fid = packet.fid
            slot = route(fid)
            index = assignment[slot]
            routed[index] += 1
            last_ts[index] = packet.time
            if watcher is not None:
                watcher.observe(packet, slot)
            if plan is not None and plan.should_drop(index, routed[index]):
                self._record_loss(
                    index, packet, "injected-drop", slot=slot,
                    arrival=routed[index],
                )
                continue
            buffer = buffers[index]
            buffer.append((packet.time, packet.size, fid))
            self._buffer_indices[index].append(routed[index])
            if len(buffer) >= chunk_size:
                self._ship(index)
        self._accepted += len(batch)

    def flush(self) -> None:
        """Ship all staged partial chunks (and any reorder-stashed
        frame).  Does not wait for acks — barriers prove the prefix."""
        if self._connections is None:
            return
        for index in range(self._shards):
            if self._buffers[index]:
                self._ship(index)
            conn = self._connections[index]
            if conn.connected:
                conn.flush_stash()
                conn.poll()

    def _ship(self, index: int) -> None:
        """Send shard ``index``'s staged buffer as one BATCH frame,
        applying the partition policy when the endpoint is unreachable."""
        tuples = self._buffers[index]
        arrivals = self._buffer_indices[index]
        self._buffers[index] = []
        self._buffer_indices[index] = []
        if not tuples:
            return
        conn = self._connections[index]
        self._check_fatal(conn)
        if not conn.connected:
            self._try_reconnect(index)
        if not conn.connected and not self._mask_allows(index):
            # The mask budget is gone: the envelope is void from this —
            # the first unsendable — packet onward, and the loss is
            # accounted to the integer identity.
            for (time_ns, size, fid), arrival in zip(tuples, arrivals):
                self._record_loss(
                    index, Packet(time_ns, size, fid), "partition",
                    slot=self._route(fid), arrival=arrival,
                )
            return
        try:
            conn.send(FT_BATCH, tuples)
            conn.poll()
            self._outage_since[index] = None
        except TransportError:
            # The frame is in the unacked ring either way — the outage
            # is masked from here until reconnect or budget exhaustion.
            self._note_outage(index)
        self._note_high_water(index)
        if conn.connected and conn.ring_depth > self.mask_frame_limit:
            # Connected but the server is far behind: apply backpressure
            # the way the bounded multiprocess queues do, by blocking
            # until the ring drains below the watermark.
            try:
                conn.wait_acks(self.mask_frame_limit, self.barrier_timeout_s)
            except TransportError:
                self._note_outage(index)

    def _note_outage(self, index: int) -> None:
        if self._outage_since[index] is None:
            self._outage_since[index] = time.monotonic()
            self._outages[index] += 1

    def _mask_allows(self, index: int) -> bool:
        """Whether shard ``index``'s current outage is still inside the
        exact-masking budget (deadline from first failure + ring bound)."""
        since = self._outage_since[index]
        if since is not None:
            if time.monotonic() - since > self.mask_deadline_s:
                return False
        conn = self._connections[index]
        return conn.ring_depth < self.mask_frame_limit

    def _try_reconnect(self, index: int) -> None:
        """One non-blocking-ish reconnect attempt, paced by the shared
        backoff policy (measured against the outage clock)."""
        conn = self._connections[index]
        since = self._outage_since[index]
        if since is not None:
            # Pace attempts: skip until the backoff delay for the next
            # attempt has elapsed since the outage began.
            elapsed = time.monotonic() - since
            if elapsed < conn.reconnect_delay_s():
                return
        try:
            conn.connect(hello_extra={"session": self._session})
            self._outage_since[index] = None
        except TransportError:
            self._note_outage(index)

    def _record_loss(
        self,
        index: int,
        packet: Packet,
        reason: str,
        slot: Optional[int] = None,
        arrival: Optional[int] = None,
    ) -> None:
        self._dropped[index] += 1
        if self._first_loss[index] is None:
            self._first_loss[index] = packet.time
            self._loss_reason[index] = reason
        if self._dead_letter is not None:
            # The consistent dead-letter tuple: shard, slot, 1-based
            # shard-local arrival index.  Partition losses surface at
            # ship time, so the arrival index travels with the staged
            # tuple instead of being read off the live routed counter.
            self._dead_letter.record(
                packet, index, reason, slot=slot, index=arrival
            )

    def _note_high_water(self, index: int) -> None:
        depth = self._connections[index].ring_depth
        if depth > self._queue_high_water[index]:
            self._queue_high_water[index] = depth

    def _check_fatal(self, conn: ShardConnection) -> None:
        if conn.fatal is not None:
            raise _invariant_from_payload(conn.fatal.get("payload") or {})

    # -- control barriers --------------------------------------------------

    def _control(self, index: int, payload: Dict) -> Dict:
        """Send one control frame and block for its reply, reconnecting
        and replaying as needed up to the barrier deadline.  The reply
        acks the whole prefix (the server applies in order), so a
        returned barrier proves every earlier batch was applied."""
        conn = self._connections[index]
        deadline = time.monotonic() + self.barrier_timeout_s
        seq: Optional[int] = None
        while True:
            self._check_fatal(conn)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError(
                    f"barrier {payload.get('op')!r} on shard {index} missed "
                    f"its {self.barrier_timeout_s}s deadline",
                    shard=index,
                    endpoint=conn.endpoint,
                )
            if not conn.connected:
                try:
                    conn.connect(hello_extra={"session": self._session})
                    self._outage_since[index] = None
                except TransportError:
                    self._note_outage(index)
                    time.sleep(
                        min(conn.reconnect_delay_s(), max(remaining, 0.0),
                            0.5)
                    )
                    continue
            try:
                if seq is None:
                    seq = conn.send(FT_CONTROL, payload)
                reply = conn.wait_reply(seq, remaining)
                break
            except TransportError:
                self._check_fatal(conn)
                continue
        if not isinstance(reply, dict):
            raise TransportError(
                f"malformed barrier reply from shard {index}: {reply!r}",
                shard=index,
            )
        if reply.get("op") == "invariant":
            raise _invariant_from_payload(reply.get("payload") or {})
        if reply.get("op") == "error":
            raise WorkerError(
                f"shard {index} failed {payload.get('op')!r}:\n"
                f"{reply.get('traceback') or reply.get('message')}",
                shard=index,
            )
        return reply

    # -- hot reconfiguration -----------------------------------------------

    def apply_config(self, config: EARDetConfig) -> None:
        """Swap every hosted slot detector onto ``config`` through an
        exactly-once ``reconfig`` control barrier per shard server (see
        :meth:`~repro.service.engine.InProcessEngine.apply_config`).

        Each server is individually atomic; a partial fleet failure
        raises :class:`~repro.core.eardet.ReconfigurationError` and the
        retune executor's rollback (``apply_config(old_config)``)
        restores consistency.
        """
        if self._final_snapshot is not None:
            raise RuntimeError("engine already closed")
        if self._connections is None:
            from ..core.eardet import reconfigure_state

            if self._slot_states is not None:
                self._slot_states = [
                    reconfigure_state(state, config)
                    if state is not None
                    else None
                    for state in self._slot_states
                ]
            self.config = config
            return
        self.check_workers()
        self.flush()
        payload = {
            "op": "reconfig",
            "config": {
                "rho": config.rho,
                "n": config.n,
                "beta_th": config.beta_th,
                "alpha": config.alpha,
                "beta_l": config.beta_l,
                "gamma_l": config.gamma_l,
                "virtual_unit": config.virtual_unit,
            },
        }
        failures: Dict[int, str] = {}
        for index in range(self._layout.shards):
            reply = self._control(index, dict(payload))
            if reply.get("op") != "reconfigured" or not reply.get("ok"):
                failures[index] = str(
                    reply.get("message") or reply.get("error") or reply
                ).strip().splitlines()[-1]
        if failures:
            from ..core.eardet import ReconfigurationError

            detail = "; ".join(
                f"shard {index}: {error}"
                for index, error in sorted(failures.items())
            )
            raise ReconfigurationError(
                f"{len(failures)}/{self._layout.shards} shard servers "
                f"refused the new configuration ({detail}); fleet may be "
                "mixed — roll back by re-applying the previous config"
            )
        self.config = config

    # -- live migration ----------------------------------------------------

    def prepare_migration(self, plan: MigrationPlan) -> None:
        plan.validate(self._layout)
        self._start()
        self.check_workers()
        self.flush()
        self._ensure_shards(plan.target_shards)

    def extract_slots(
        self, slot_ids: List[int]
    ) -> Dict[int, Dict[str, object]]:
        by_shard: Dict[int, List[int]] = {}
        for slot in slot_ids:
            by_shard.setdefault(self._assignment[slot], []).append(slot)
        return self._extract_from(by_shard)

    def _extract_from(
        self, by_shard: Dict[int, List[int]]
    ) -> Dict[int, Dict[str, object]]:
        extracted: Dict[int, Dict[str, object]] = {}
        for index, slots in by_shard.items():
            reply = self._control(
                index, {"op": "extract", "slots": list(slots)}
            )
            for slot, state in reply.get("states", {}).items():
                extracted[int(slot)] = state
        return extracted

    def install_slots(
        self,
        slot_states: Dict[int, Dict[str, object]],
        assignment: Dict[int, int],
    ) -> None:
        by_shard: Dict[int, Dict[int, Dict[str, object]]] = {}
        for slot, state in slot_states.items():
            shard = assignment[int(slot)]
            if shard >= self._shards:
                raise ValueError(
                    f"slot {slot} targets shard {shard}, which was never "
                    f"provisioned (prepare_migration not run?)"
                )
            by_shard.setdefault(shard, {})[int(slot)] = state
        for index, states in by_shard.items():
            self._control(index, {"op": "install", "states": states})

    def commit_layout(self, layout: ShardLayout) -> None:
        if layout.slots != self._layout.slots:
            raise ValueError(
                f"layout has {layout.slots} slots, engine has "
                f"{self._layout.slots}"
            )
        if layout.shards > self._shards:
            raise ValueError(
                f"layout spans {layout.shards} shards but only "
                f"{self._shards} are provisioned"
            )
        self._layout = layout
        self._assignment = list(layout.assignment)

    def abort_migration(
        self,
        plan: MigrationPlan,
        extracted: Dict[int, Dict[str, object]],
    ) -> None:
        targets: Dict[int, List[int]] = {}
        for move in plan.moves:
            if move.target < self._shards:
                targets.setdefault(move.target, []).append(move.slot)
        self._extract_from(targets)  # discard partial installs
        if extracted:
            self.install_slots(extracted, plan.assignment_before())

    def _ensure_shards(self, shards: int) -> None:
        """Activate spare endpoints for shards up to ``shards - 1``.
        Unlike the multiprocess engine, a remote fleet cannot mint new
        hosts — growth is bounded by the endpoint list."""
        if shards <= self._shards:
            return
        if shards > len(self._endpoints):
            raise MigrationError(
                f"cannot grow to {shards} shards: only "
                f"{len(self._endpoints)} worker endpoints were provided",
                phase="freeze",
                rolled_back=True,
            )
        grow = shards - self._shards
        self._buffers.extend([] for _ in range(grow))
        self._buffer_indices.extend([] for _ in range(grow))
        self._routed.extend([0] * grow)
        self._dropped.extend([0] * grow)
        self._first_loss.extend([None] * grow)
        self._loss_reason.extend([""] * grow)
        self._queue_high_water.extend([0] * grow)
        self._last_packet_ts.extend([None] * grow)
        self._outage_since.extend([None] * grow)
        self._outages.extend([0] * grow)
        first_new = self._shards
        self._shards = shards
        if self._connections is not None:
            for index in range(first_new, shards):
                self._assign_shard(index)

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Exact engine state via a control barrier on every shard."""
        if self._final_snapshot is not None:
            return self._final_snapshot
        self._start()
        self.flush()
        states: Dict[int, Dict] = {}
        for index in range(self._layout.shards):
            reply = self._control(index, {"op": "snapshot"})
            states[index] = {
                int(slot): state
                for slot, state in reply["states"].items()
            }
        return self._assemble(states)

    def restore(self, state: Dict[str, object]) -> None:
        """Stage a snapshot for the (not yet connected) servers; adopts
        the snapshot's layout exactly like the other engines."""
        if self._connections is not None or self._final_snapshot is not None:
            raise RuntimeError("restore() must precede any ingestion")
        fmt = state.get("format")
        if fmt != ENGINE_SNAPSHOT_FORMAT:
            raise ValueError(f"unsupported engine snapshot format {fmt!r}")
        if state["seed"] != self._hash.seed:
            raise ValueError(
                f"snapshot hash seed {state['seed']} != engine seed "
                f"{self._hash.seed}; flows would route to different slots"
            )
        slot_states = list(state["shards"])
        slots = int(state.get("slots") or len(slot_states))
        if slots != self._layout.slots:
            raise ValueError(
                f"snapshot has {slots} slots, engine has "
                f"{self._layout.slots}; flows would route to different "
                "sub-streams"
            )
        if len(slot_states) != slots:
            raise ValueError(
                f"snapshot carries {len(slot_states)} slot states for "
                f"{slots} slots"
            )
        layout_state = state.get("layout")
        if layout_state is not None:
            layout = ShardLayout.from_dict(layout_state)
        else:
            layout = ShardLayout.default(slots, int(state["shard_count"]))
        if layout.shards > len(self._endpoints):
            raise ValueError(
                f"snapshot layout spans {layout.shards} shards but only "
                f"{len(self._endpoints)} worker endpoints were provided"
            )
        self._layout = layout
        self._assignment = list(layout.assignment)
        shards = layout.shards
        self._shards = shards
        self._buffers = [[] for _ in range(shards)]
        self._buffer_indices = [[] for _ in range(shards)]
        self._slot_states = slot_states
        self._accepted = state["accepted"]

        def _per_shard(key, default):
            values = state.get(key)
            if not values:
                return [default] * shards
            values = list(values)
            return values + [default] * (shards - len(values))

        self._dropped = _per_shard("dropped", 0)
        self._first_loss = _per_shard("first_loss", None)
        self._loss_reason = _per_shard("loss_reason", "")
        self._queue_high_water = _per_shard("queue_high_water", 0)
        self._last_packet_ts = _per_shard("last_packet_ts", None)
        self._outage_since = [None] * shards
        self._outages = [0] * shards
        routed = state.get("routed")
        if routed is not None:
            self._routed = list(routed) + [0] * (shards - len(routed))
        else:
            self._routed = [
                slot_state["stats"]["packets"] + dropped
                for slot_state, dropped in zip(slot_states, self._dropped)
            ]
        watcher_state = state.get("watcher")
        if watcher_state is not None and self.watcher is not None:
            self.watcher.restore(watcher_state)

    def _assemble(self, states: Dict[int, Dict]) -> Dict[str, object]:
        layout = self._layout
        slot_states: List = [None] * layout.slots
        for mapping in states.values():
            for slot, slot_state in mapping.items():
                slot_states[int(slot)] = slot_state
        missing = [
            slot for slot, value in enumerate(slot_states) if value is None
        ]
        if missing:
            raise WorkerError(
                f"snapshot barrier returned no state for slots {missing}"
            )
        return {
            "format": ENGINE_SNAPSHOT_FORMAT,
            "seed": self._hash.seed,
            "shard_count": layout.shards,
            "accepted": self._accepted,
            "dropped": list(self._dropped),
            "first_loss": list(self._first_loss),
            "loss_reason": list(self._loss_reason),
            "queue_high_water": list(self._queue_high_water),
            "last_packet_ts": list(self._last_packet_ts),
            "routed": list(self._routed),
            "overload": None,
            "watcher": (
                self.watcher.snapshot() if self.watcher is not None else None
            ),
            "slots": layout.slots,
            "layout": layout.as_dict(),
            "layout_epoch": layout.epoch,
            "shards": slot_states,
        }

    # -- results -----------------------------------------------------------

    def detections(self) -> Dict[FlowId, int]:
        sink = ReportSink()
        for slot_state in self.snapshot()["shards"]:
            slot_sink = ReportSink()
            slot_sink.restore(slot_state["sink"])
            sink.merge(slot_sink)
        return sink.as_dict()

    def health(self) -> List[ShardHealth]:
        snapshot = self.snapshot()
        slot_states = snapshot["shards"]
        layout = self._layout
        watcher = self.watcher
        samples = []
        for index in range(layout.shards):
            slots = layout.slots_of(index)
            states = [slot_states[slot] for slot in slots]
            depth = len(self._buffers[index]) if self._buffers else 0
            if self._connections is not None:
                depth += self._connections[index].ring_depth
            samples.append(
                ShardHealth(
                    shard=index,
                    packets=sum(s["stats"]["packets"] for s in states),
                    queue_depth=depth,
                    queue_capacity=self.mask_frame_limit,
                    detections=sum(len(s["sink"]) for s in states),
                    blacklist_size=sum(len(s["blacklist"]) for s in states),
                    dropped=self._dropped[index],
                    queue_high_water=self._queue_high_water[index],
                    last_packet_ts_ns=self._last_packet_ts[index],
                    degradation_level="exact",
                    watcher_occupancy=(
                        sum(watcher.occupancy(slot) for slot in slots)
                        if watcher is not None
                        else 0
                    ),
                    watcher_verdicts=(
                        sum(
                            len(watcher.watcher(slot).detected)
                            for slot in slots
                        )
                        if watcher is not None
                        else 0
                    ),
                    slot_count=len(slots),
                )
            )
        return samples

    def overload_report(self) -> Optional[Dict[str, object]]:
        return None

    def envelope(self) -> List[ExactnessEnvelope]:
        return [
            ExactnessEnvelope(
                shard=index,
                exact=self._dropped[index] == 0,
                lost_packets=self._dropped[index],
                first_loss_time_ns=self._first_loss[index],
                reason=self._loss_reason[index],
            )
            for index in range(self._shards)
        ]

    # -- transport introspection ------------------------------------------

    def transport_report(self) -> List[Dict[str, object]]:
        """Per-shard exact transport counters (frames, retransmits,
        reconnects, ring depth, reconnect pauses) plus the partition
        accounting — the source for ``eardet_net_*`` metrics and the
        ``--net`` benchmark's reconnect-pause percentiles."""
        reports = []
        for index in range(self._shards):
            if self._connections is not None:
                report = self._connections[index].report()
            elif self._closed_reports and index < len(self._closed_reports):
                report = dict(self._closed_reports[index])
                report["connected"] = False
            else:
                host, port = self._endpoints[index]
                report = {"endpoint": f"{host}:{port}", "connected": False}
            report["shard"] = index
            report["outages"] = self._outages[index]
            report["masking"] = self._outage_since[index] is not None
            report["lost_packets"] = self._dropped[index]
            reports.append(report)
        return reports

    def scrape_workers(self) -> List[Dict[str, int]]:
        """Server-side counters via a ``scrape`` control barrier on
        every active shard (the remote telemetry scrape)."""
        self._start()
        metrics = []
        for index in range(self._layout.shards):
            reply = self._control(index, {"op": "scrape"})
            metrics.append(dict(reply.get("metrics") or {}))
        return metrics

    def __repr__(self) -> str:
        return (
            f"RemoteEngine(shards={self._shards}, "
            f"slots={self._layout.slots}, epoch={self._layout.epoch}, "
            f"accepted={self._accepted}, running={self.running})"
        )
