"""Service lifecycle: serve a source, checkpoint periodically, recover.

:class:`DetectionService` ties the pieces together into the deployable
runtime behind ``eardet serve``:

- pulls batches from a :class:`~repro.service.sources.PacketSource`;
- feeds a sharded engine (in-process or multiprocess);
- writes an exact checkpoint every ``checkpoint_every`` ingested packets
  (aligned to batch boundaries, atomically, to ``checkpoint_path``);
- on shutdown, drains the queues gracefully and reports per-shard health;
- on restart after a crash, :meth:`DetectionService.resume` reloads the
  last checkpoint and replays the source from the checkpoint boundary —
  and because the snapshot layer is exact, the recovered run's
  detections, detection timestamps, counters and stats are identical to
  an uninterrupted run's (asserted end-to-end in
  ``tests/test_service.py``).

The checkpoint's ``meta`` block records everything needed to rebuild a
compatible service (config primitives, shard count, hash seed, engine
kind) plus the stream position; ``eardet checkpoint inspect`` renders it.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Union

from ..core.config import EARDetConfig
from ..model.packet import Packet
from .backoff import BackoffPolicy
from .checkpoint import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from .engine import DEFAULT_QUEUE_CAPACITY, InProcessEngine
from .errors import MigrationError, RetuneError
from .health import DeadLetterSink, ServiceReport, ShardHealth
from .overload import OverloadPolicy
from .pipeline import WatcherPolicy, WatcherStage
from .reshard import (
    Coordinator,
    CoordinatorPolicy,
    MigrationPlan,
    MigrationReport,
    execute_migration,
)
from .sources import DEFAULT_BATCH_SIZE, PacketSource, as_source
from .workers import MultiprocessEngine

#: Checkpoint meta schema version.
CHECKPOINT_META_FORMAT = 1

ENGINE_KINDS = ("inprocess", "multiprocess", "remote")


def _config_dict(config: EARDetConfig) -> Dict[str, object]:
    """The seven-field checkpoint/wire form (``EARDetConfig(**d)``
    round-trips)."""
    return {
        "rho": config.rho,
        "n": config.n,
        "beta_th": config.beta_th,
        "alpha": config.alpha,
        "beta_l": config.beta_l,
        "gamma_l": config.gamma_l,
        "virtual_unit": config.virtual_unit,
    }


class _NamedSource:
    """Stand-in source for out-of-loop checkpoint writes — only the
    recorded source name matters at that point."""

    def __init__(self, name: str):
        self.name = name


def _build_engine(
    kind: str,
    config: EARDetConfig,
    shards: int,
    seed: int,
    queue_capacity: int,
    overflow: str,
    fault_plan=None,
    dead_letter: Optional[DeadLetterSink] = None,
    invariant_every: Optional[int] = None,
    overload: Optional[OverloadPolicy] = None,
    watcher: Optional[WatcherStage] = None,
    slots: Optional[int] = None,
    engine_options: Optional[Dict[str, object]] = None,
):
    options = dict(engine_options or {})
    if kind == "remote":
        from .remote import RemoteEngine

        workers = options.pop("workers", None)
        if not workers:
            raise ValueError(
                "the remote engine needs worker endpoints: pass "
                "engine_options={'workers': ['host:port', ...]} "
                "(the --workers flag)"
            )
        if overflow != "block":
            raise ValueError(
                "the remote engine only supports overflow='block' "
                "(its unacked-frame rings backpressure the producer)"
            )
        return RemoteEngine(
            config,
            workers,
            seed=seed,
            fault_plan=fault_plan,
            dead_letter=dead_letter,
            invariant_every=invariant_every,
            overload=overload,
            watcher=watcher,
            slots=slots,
            shards=shards,
            **options,
        )
    if kind == "inprocess":
        if options:
            raise ValueError(
                f"the in-process engine takes no engine options, got "
                f"{sorted(options)}"
            )
        return InProcessEngine(
            config,
            shards=shards,
            seed=seed,
            queue_capacity=queue_capacity,
            overflow=overflow,
            fault_plan=fault_plan,
            dead_letter=dead_letter,
            invariant_every=invariant_every,
            overload=overload,
            watcher=watcher,
            slots=slots,
        )
    if kind == "multiprocess":
        if overflow != "block":
            raise ValueError(
                "the multiprocess engine only supports overflow='block' "
                "(its bounded queues block the producer)"
            )
        return MultiprocessEngine(
            config,
            shards=shards,
            seed=seed,
            fault_plan=fault_plan,
            dead_letter=dead_letter,
            invariant_every=invariant_every,
            overload=overload,
            watcher=watcher,
            slots=slots,
            **options,
        )
    raise ValueError(f"engine must be one of {ENGINE_KINDS}, got {kind!r}")


class DetectionService:
    """A long-lived sharded detection runtime with exact checkpoints.

    Parameters
    ----------
    config:
        EARDet configuration applied to every shard.
    shards:
        Worker shard count.
    engine:
        ``"inprocess"`` (deterministic, single-threaded),
        ``"multiprocess"`` (one process per shard, for throughput) or
        ``"remote"`` (one TCP shard server per shard, possibly on other
        hosts; see :mod:`repro.service.remote`).
    seed:
        Flow-to-shard hash seed.
    checkpoint_path:
        Where to write checkpoints; None disables checkpointing.
    checkpoint_every:
        Checkpoint interval in ingested packets (aligned down to batch
        boundaries); None checkpoints only on graceful shutdown.
    batch_size:
        Packets pulled from the source per batch.
    queue_capacity / overflow:
        Forwarded to the engine (see :mod:`repro.service.engine`).
    fault_plan:
        Optional :class:`~repro.service.faults.FaultPlan`; forwarded to
        the engine (kills/stalls/drops) and consulted after every
        checkpoint write (checkpoint-corruption faults).
    dead_letter:
        Optional :class:`~repro.service.health.DeadLetterSink` shared
        with the engine; its total is surfaced in the report.
    invariant_every:
        When set, every shard detector runs under an
        :class:`~repro.guard.invariants.InvariantChecker` sampling the
        paper's algorithm-state invariants once per that many
        shard-local packets (see :mod:`repro.guard`).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` context.  When given
        (and enabled), the service syncs its exact accumulators into the
        metric registry once per ingested batch and traces checkpoint
        writes; when None (the default) the hot path pays a single
        ``is None`` test per batch.  Telemetry never alters detection
        behaviour — runs with and without it are bit-identical.
    overload:
        Optional :class:`~repro.service.overload.OverloadPolicy`
        arming the degradation ladder on the engine (see
        :mod:`repro.service.overload`).  On the in-process engine the
        serve loop additionally pumps each shard's queue under the
        policy's ``drain_budget`` per batch.
    checkpoint_backoff:
        Optional :class:`~repro.service.backoff.BackoffPolicy` retrying
        transient checkpoint-write failures (``OSError``); None keeps
        the historical fail-fast behaviour.
    watcher:
        Optional :class:`~repro.service.pipeline.WatcherPolicy` arming a
        per-shard ambiguity-region watcher stage (CLEF's twin RLFDs or
        LOFT).  The stage taps the routing point, never feeds the exact
        shards, and its probabilistic verdicts are reported in the
        :class:`ServiceReport`'s separate ``watcher`` section — exact
        detections stay bit-identical with or without it.  The stage's
        state checkpoints and resumes with the engine.
    slots:
        Flow-keyed routing granularity (see
        :mod:`repro.service.reshard`).  Flows hash into ``slots``
        sub-streams; a versioned layout maps slots onto shards, and live
        migrations move whole slots between shards without perturbing
        detections.  Defaults to ``shards`` (one slot per shard — the
        historical layout, with no resharding headroom).  Like the seed,
        it must never change across a resume.
    engine_options:
        Engine-specific constructor options.  The multiprocess engine
        accepts ``terminate_grace_s`` (the ``--terminate-grace`` flag);
        the remote engine **requires** ``workers`` (a list of
        ``host:port`` endpoints, the ``--workers`` flag) and accepts its
        partition-policy knobs (``mask_deadline_s``,
        ``mask_frame_limit``, ``backoff``, ...).  Deployment-specific —
        never recorded in checkpoints, so pass it again on resume.
    coordinator:
        Optional :class:`~repro.service.reshard.CoordinatorPolicy`
        arming the elastic coordinator: per-shard load is observed once
        per batch and, when skew persists past the policy's hysteresis,
        a split/merge plan is executed through :meth:`apply_migration`
        at the batch boundary.  A rolled-back migration is an incident,
        not a crash — the serve loop keeps going on the old layout.
    controller:
        Optional :class:`~repro.control.ControlPolicy` (or a
        pre-built :class:`~repro.control.Controller`) arming the
        adaptive control plane: once per ``every_batches`` batches the
        controller scrapes the telemetry registry, evaluates the SLO
        burn-rate rules, and — under sustained pressure or slack —
        proposes a new configuration via the Appendix-A solver, which
        the serve loop executes through :meth:`apply_retune` at the
        batch boundary.  Each committed retune advances the **config
        epoch**; a rolled-back retune is an incident, not a crash.
        Requires enabled ``telemetry`` (the controller reads only the
        registry, never the hot path).
    forensics:
        Optional :class:`~repro.forensics.ForensicsLab` (the
        ``--forensics-dir`` flag).  Once per batch the serve loop feeds
        the lab's capture ring and scans the engine's forensic surfaces
        for new events; every checkpoint re-baselines the capture window
        at zero extra snapshot cost.  When armed without an explicit
        ``dead_letter`` sink, one is created automatically — positional
        losses must be recorded for replay bundles to re-inject them.
        Forensics never alters detection behaviour: runs with and
        without it are bit-identical.
    """

    def __init__(
        self,
        config: EARDetConfig,
        shards: int = 1,
        engine: str = "inprocess",
        seed: int = 0,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        overflow: str = "block",
        clock: Callable[[], float] = time.perf_counter,
        fault_plan=None,
        dead_letter: Optional[DeadLetterSink] = None,
        invariant_every: Optional[int] = None,
        telemetry=None,
        overload: Optional[OverloadPolicy] = None,
        checkpoint_backoff: Optional[BackoffPolicy] = None,
        watcher: Optional[WatcherPolicy] = None,
        slots: Optional[int] = None,
        coordinator: Optional[CoordinatorPolicy] = None,
        engine_options: Optional[Dict[str, object]] = None,
        forensics=None,
        controller=None,
    ):
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint interval must be positive, got {checkpoint_every}"
            )
        if checkpoint_every is not None and checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
        self.config = config
        self.engine_kind = engine
        self.shards = shards
        self.slots = slots if slots is not None else shards
        self.seed = seed
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.batch_size = batch_size
        self.fault_plan = fault_plan
        self.forensics = forensics
        if forensics is not None and dead_letter is None:
            # Replay bundles re-inject positional losses from the
            # dead-letter detail; forensics without a sink would capture
            # provably-incomplete bundles whenever anything is dropped.
            dead_letter = DeadLetterSink()
        self.dead_letter = dead_letter
        self.invariant_every = invariant_every
        self.overload = overload
        self.checkpoint_backoff = checkpoint_backoff
        self._clock = clock
        self.watcher_policy = watcher
        # The watcher stage is slot-granular: each slot's watcher sees
        # that slot's hash sub-stream no matter which shard hosts it, so
        # watcher verdicts are layout-invariant too.
        self._watcher = (
            WatcherStage(watcher, config, self.slots)
            if watcher is not None
            else None
        )
        self.engine_options = engine_options
        self._engine = _build_engine(
            engine, config, shards, seed, queue_capacity, overflow,
            fault_plan=fault_plan, dead_letter=dead_letter,
            invariant_every=invariant_every, overload=overload,
            watcher=self._watcher, slots=slots,
            engine_options=engine_options,
        )
        self.coordinator_policy = coordinator
        self._coordinator = (
            Coordinator(coordinator) if coordinator is not None else None
        )
        self._controller = None
        if controller is not None:
            # Lazy import: repro.control imports service submodules, so a
            # top-level import here would cycle through the package init.
            from ..control.controller import ControlPolicy, Controller

            if isinstance(controller, ControlPolicy):
                controller = Controller(controller)
            if not isinstance(controller, Controller):
                raise ValueError(
                    "controller must be a ControlPolicy or Controller, "
                    f"got {type(controller).__name__}"
                )
            if telemetry is None or not telemetry.enabled:
                raise ValueError(
                    "the adaptive controller requires enabled telemetry "
                    "(it retunes from registry scrapes, never the hot path)"
                )
            self._controller = controller
        self._config_epoch = 0
        self._retunes = 0
        self._retune_rollbacks = 0
        self._retune_infeasibles = 0
        self._retune_index = 0
        self._last_retune_pause_ns: Optional[int] = None
        #: Solver inputs of the last committed plan — the checkpoint's
        #: ``inputs`` fallback for controller-less manual retunes
        #: (``eardet tune --apply``).
        self._last_retune_inputs: Optional[Dict[str, object]] = None
        self._epoch_history: List[Dict[str, object]] = [
            {"epoch": 0, "from_packets": 0, "config": _config_dict(config)}
        ]
        self._migrations = 0
        self._rollbacks = 0
        self._last_pause_ns: Optional[int] = None
        self._migration_index = 0
        self._ingested = 0
        self._resumed_from = 0
        self._checkpoints_written = 0
        self._last_source: Optional[PacketSource] = None
        self._drain_requested = False
        self._drained = False
        self.telemetry = telemetry
        self._instruments = None
        if telemetry is not None and telemetry.enabled:
            from ..telemetry import ServiceInstruments

            self._instruments = ServiceInstruments(telemetry)
            self._instruments.bind_shards(shards, queue_capacity)
        if forensics is not None and self._instruments is not None:
            forensics.bind_instruments(self._instruments)

    # -- recovery ----------------------------------------------------------

    @classmethod
    def resume(
        cls,
        checkpoint_path: str,
        engine: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        overflow: str = "block",
        fault_plan=None,
        dead_letter: Optional[DeadLetterSink] = None,
        invariant_every: Optional[int] = None,
        telemetry=None,
        overload: Optional[OverloadPolicy] = None,
        checkpoint_backoff: Optional[BackoffPolicy] = None,
        watcher: Optional[WatcherPolicy] = None,
        coordinator: Optional[CoordinatorPolicy] = None,
        engine_options: Optional[Dict[str, object]] = None,
        forensics=None,
        controller=None,
    ) -> "DetectionService":
        """Rebuild a service from its last checkpoint.

        The engine kind may be switched on resume (snapshots are engine-
        agnostic); shard count, slot count, hash seed and config come
        from the checkpoint because changing them would re-route flows
        and void exactness (the engine additionally adopts the
        checkpoint's live layout, which a past migration may have moved
        off the identity assignment).  The watcher policy likewise comes
        from the checkpoint (its state rides in the engine snapshot); an
        explicit ``watcher`` argument overrides it but must match the
        recorded policy for the saved stage state to restore.
        """
        payload = read_checkpoint(checkpoint_path)
        meta = payload["meta"]
        if meta.get("format") != CHECKPOINT_META_FORMAT:
            raise CheckpointError(
                f"unsupported checkpoint meta format {meta.get('format')!r}"
            )
        config = EARDetConfig(**meta["config"])
        if watcher is None and meta.get("watcher") is not None:
            watcher = WatcherPolicy.from_dict(meta["watcher"])
        service = cls(
            config,
            shards=meta["shards"],
            engine=engine or meta["engine"],
            seed=meta["seed"],
            checkpoint_path=checkpoint_path,
            checkpoint_every=(
                checkpoint_every
                if checkpoint_every is not None
                else meta.get("checkpoint_every")
            ),
            batch_size=batch_size,
            queue_capacity=queue_capacity,
            overflow=overflow,
            fault_plan=fault_plan,
            dead_letter=dead_letter,
            invariant_every=invariant_every,
            telemetry=telemetry,
            overload=overload,
            checkpoint_backoff=checkpoint_backoff,
            watcher=watcher,
            slots=meta.get("slots"),
            coordinator=coordinator,
            engine_options=engine_options,
            forensics=forensics,
            controller=controller,
        )
        service._engine.restore(payload["engine"])
        service._ingested = meta["packets"]
        service._resumed_from = meta["packets"]
        control_meta = meta.get("control")
        if control_meta is not None:
            # The checkpoint's config IS the newest epoch's config (the
            # service above was built under it); restoring the epoch
            # number and history keeps report stamps and future capture
            # bundles consistent across the resume.
            service._config_epoch = control_meta.get("epoch", 0)
            history = control_meta.get("history")
            if history:
                service._epoch_history = [dict(entry) for entry in history]
            inputs = control_meta.get("inputs")
            if inputs is not None:
                service._last_retune_inputs = dict(inputs)
        return service

    # -- properties --------------------------------------------------------

    @property
    def ingested(self) -> int:
        """Packets pulled from the source so far (including any prefix
        covered by a resumed checkpoint)."""
        return self._ingested

    @property
    def engine(self):
        """The underlying engine (for inspection and tests)."""
        return self._engine

    @property
    def watcher(self) -> Optional[WatcherStage]:
        """The armed ambiguity-region watcher stage, or None."""
        return self._watcher

    @property
    def coordinator(self) -> Optional[Coordinator]:
        """The armed elastic coordinator, or None."""
        return self._coordinator

    def health(self) -> List[ShardHealth]:
        """Live per-shard health."""
        return self._engine.health()

    # -- resharding --------------------------------------------------------

    def apply_migration(
        self,
        plan: MigrationPlan,
        attempts: Optional[int] = None,
        timeout_s: Optional[float] = None,
        backoff: Optional[BackoffPolicy] = None,
    ) -> MigrationReport:
        """Execute a migration plan at the current batch boundary.

        Runs the two-phase freeze/extract → install/cutover protocol
        (see :func:`repro.service.reshard.execute_migration`) with this
        service's fault plan armed, counts the outcome, and — on a
        rolled-back failure — records a forensic event in the
        dead-letter sink before re-raising the
        :class:`~repro.service.errors.MigrationError`.
        """
        policy = self.coordinator_policy
        if attempts is None:
            attempts = policy.attempts if policy is not None else 3
        if timeout_s is None:
            timeout_s = policy.timeout_s if policy is not None else 30.0
        self._migration_index += 1
        try:
            report = execute_migration(
                self._engine,
                plan,
                attempts=attempts,
                backoff=backoff,
                timeout_s=timeout_s,
                fault_plan=self.fault_plan,
                migration_index=self._migration_index,
            )
        except MigrationError as error:
            self._rollbacks += 1
            if self._coordinator is not None:
                self._coordinator.note_result(committed=False)
            if self.dead_letter is not None:
                self.dead_letter.record_event(
                    "migration-rollback",
                    {
                        "phase": error.phase,
                        "attempts": error.attempts,
                        "rolled_back": error.rolled_back,
                        "plan": plan.describe(),
                        "error": str(error),
                    },
                )
            raise
        self._migrations += 1
        self._last_pause_ns = report.pause_ns
        if self._coordinator is not None:
            self._coordinator.note_result(committed=True)
        if self._instruments is not None:
            # Re-bind per-shard channels if the migration grew the fleet,
            # then refresh the reshard gauges immediately.
            self._instruments.bind_shards(
                self._engine.shard_count,
                getattr(
                    self._engine, "queue_capacity", DEFAULT_QUEUE_CAPACITY
                ),
            )
            self._instruments.sync_reshard(self._reshard_report())
        return report

    def _reshard_report(self) -> Optional[Dict[str, object]]:
        """The report's resharding section, or None while trivial (the
        initial identity layout, no coordinator, no migrations ever)."""
        layout = getattr(self._engine, "layout", None)
        if layout is None:  # pragma: no cover - every engine has a layout
            return None
        trivial = (
            layout.epoch == 0
            and layout.is_identity
            and self._coordinator is None
            and self._migrations == 0
            and self._rollbacks == 0
        )
        if trivial:
            return None
        return {
            "layout": layout.as_dict(),
            "migrations": self._migrations,
            "rollbacks": self._rollbacks,
            "last_pause_ns": self._last_pause_ns,
            "coordinator": (
                self._coordinator.report()
                if self._coordinator is not None
                else None
            ),
        }

    def _coordinate(self) -> None:
        """Per-batch coordinator tick: observe load, execute a proposed
        plan, absorb a rolled-back failure as an incident."""
        plan = self._coordinator.observe(self._engine)
        if plan is None:
            return
        try:
            self.apply_migration(plan)
        except MigrationError as error:
            if not error.rolled_back:
                # The rollback itself failed — state is suspect, so this
                # is not absorbable; let the supervisor take over.
                raise
            # Rolled back cleanly: the old layout is intact and serving
            # stays exact; the forensic record is in the dead-letter
            # sink and the coordinator's cooldown is re-armed.

    # -- adaptive control (hot reconfiguration) ----------------------------

    @property
    def controller(self):
        """The armed adaptive controller, or None."""
        return self._controller

    @property
    def config_epoch(self) -> int:
        """The current configuration epoch (0 until the first committed
        retune; each commit increments it)."""
        return self._config_epoch

    def apply_retune(
        self,
        plan,
        attempts: Optional[int] = None,
        timeout_s: Optional[float] = None,
        backoff: Optional[BackoffPolicy] = None,
    ):
        """Execute a retune plan at the current batch boundary.

        Runs the five-phase propose → freeze → apply → verify → commit
        protocol (see :func:`repro.control.retune.execute_retune`) with
        this service's fault plan armed.  On commit the config epoch
        advances and the transition is recorded in the epoch history
        (which checkpoints, and which forensic capture bundles carry so
        replay re-derives the transition); on a rolled-back failure a
        forensic event lands in the dead-letter sink before the
        :class:`~repro.service.errors.RetuneError` is re-raised.
        """
        from ..control.retune import execute_retune

        policy = (
            self._controller.policy if self._controller is not None else None
        )
        if attempts is None:
            attempts = policy.attempts if policy is not None else 3
        if timeout_s is None:
            timeout_s = policy.timeout_s if policy is not None else 30.0
        self._retune_index += 1
        try:
            report = execute_retune(
                self._engine,
                plan,
                attempts=attempts,
                backoff=backoff,
                timeout_s=timeout_s,
                fault_plan=self.fault_plan,
                retune_index=self._retune_index,
                from_epoch=self._config_epoch,
            )
        except RetuneError as error:
            self._retune_rollbacks += 1
            if self._controller is not None:
                self._controller.note_result(committed=False, plan=plan)
            if self.dead_letter is not None:
                self.dead_letter.record_event(
                    "retune-rollback",
                    {
                        "phase": error.phase,
                        "attempts": error.attempts,
                        "rolled_back": error.rolled_back,
                        "plan": plan.describe(),
                        "error": str(error),
                    },
                )
            raise
        self._retunes += 1
        self._config_epoch = report.to_epoch
        self.config = plan.new_config
        self._last_retune_pause_ns = report.pause_ns
        self._last_retune_inputs = dict(plan.inputs)
        self._epoch_history.append(
            {
                "epoch": report.to_epoch,
                "from_packets": self._ingested,
                "config": _config_dict(plan.new_config),
            }
        )
        if self.dead_letter is not None:
            self.dead_letter.record_event(
                "retune",
                {
                    "from_epoch": report.from_epoch,
                    "to_epoch": report.to_epoch,
                    "from_packets": self._ingested,
                    "plan": plan.describe(),
                    "reason": plan.reason,
                    "pause_ns": report.pause_ns,
                },
            )
        if self._controller is not None:
            self._controller.note_result(committed=True, plan=plan)
        if self._instruments is not None:
            self._instruments.sync_control(self._control_summary())
        return report

    def _control_tick(self) -> None:
        """Per-batch controller tick: scrape telemetry on cadence,
        execute a proposed retune, absorb a rolled-back failure as an
        incident (mirrors :meth:`_coordinate`)."""
        controller = self._controller
        plan = controller.tick(self.telemetry.registry, self.config)
        infeasible = controller.take_infeasible()
        if infeasible is not None:
            self._retune_infeasibles += 1
            if self.dead_letter is not None:
                self.dead_letter.record_event("retune-infeasible", infeasible)
        if plan is None:
            return
        try:
            self.apply_retune(plan)
        except RetuneError as error:
            if not error.rolled_back:
                # The rollback itself failed — the configuration is
                # suspect, so this is not absorbable; let the supervisor
                # restore from the last checkpoint.
                raise
            # Rolled back cleanly: detections are bit-identical to never
            # having attempted the retune; the forensic record is in the
            # dead-letter sink and the controller's cooldown is re-armed.

    def config_dict_at(self, packets: int) -> Dict[str, object]:
        """The seven-field config in force at stream position
        ``packets`` (the newest epoch whose ``from_packets`` is ≤ it) —
        what a replay starting from that position must begin under."""
        current = self._epoch_history[0]["config"]
        for entry in self._epoch_history:
            if entry["from_packets"] <= packets:
                current = entry["config"]
            else:
                break
        return dict(current)

    def config_transitions_after(self, packets: int) -> List[Dict[str, object]]:
        """Epoch transitions strictly after stream position ``packets``
        (for capture bundles: the transitions a replay of the window
        ``(packets, ingested]`` must re-apply, in order)."""
        return [
            dict(entry)
            for entry in self._epoch_history
            if entry["from_packets"] > packets
        ]

    def _control_summary(self) -> Dict[str, object]:
        """Cheap per-batch scalars for the telemetry instruments (no
        history copies — this runs on the hot path's sync)."""
        return {
            "epoch": self._config_epoch,
            "retunes": self._retunes,
            "rollbacks": self._retune_rollbacks,
            "infeasibles": self._retune_infeasibles,
            "last_pause_ns": self._last_retune_pause_ns,
        }

    def _control_report(self) -> Optional[Dict[str, object]]:
        """The report's control section, or None while trivial (epoch 0,
        no controller, no retune ever attempted)."""
        trivial = (
            self._config_epoch == 0
            and self._controller is None
            and self._retunes == 0
            and self._retune_rollbacks == 0
            and self._retune_infeasibles == 0
        )
        if trivial:
            return None
        return {
            "epoch": self._config_epoch,
            "config": _config_dict(self.config),
            "retunes": self._retunes,
            "rollbacks": self._retune_rollbacks,
            "infeasibles": self._retune_infeasibles,
            "last_pause_ns": self._last_retune_pause_ns,
            "history": [dict(entry) for entry in self._epoch_history],
            "controller": (
                self._controller.report()
                if self._controller is not None
                else None
            ),
        }

    # -- graceful drain ----------------------------------------------------

    @property
    def drain_requested(self) -> bool:
        return self._drain_requested

    def request_drain(self) -> None:
        """Ask the serve loop to stop at the next batch boundary and
        drain: flush in-flight batches (including ladder rung buffers),
        emit final detections, and write the terminal checkpoint.

        Safe to call from a signal handler or another thread — it only
        sets a flag the serve loop polls once per batch.  Idempotent.
        """
        self._drain_requested = True

    # -- serving -----------------------------------------------------------

    def serve(
        self,
        source: Union[PacketSource, Iterable[Packet]],
        max_packets: Optional[int] = None,
        final_checkpoint: bool = True,
        on_progress: Optional[Callable[["DetectionService"], None]] = None,
    ) -> ServiceReport:
        """Pull the source to exhaustion (or ``max_packets``), then drain.

        Periodic checkpoints are written whenever the ingested count
        crosses a multiple of ``checkpoint_every``; a final checkpoint on
        graceful shutdown captures the fully-drained state.  ``max_packets``
        bounds this call (useful for tests and for incremental serving);
        the service object can keep serving afterwards.  ``on_progress``
        is invoked after every ingested batch — the supervisor's monitor
        hook (it may raise to abort the serve loop, e.g. on a stale
        heartbeat).
        """
        source = as_source(source)
        self._last_source = source
        forensics = self.forensics
        if forensics is not None:
            forensics.on_serve_start(self)
        instruments = self._instruments
        validation = None
        if instruments is not None:
            from .sources import validation_stats

            validation = validation_stats(source)
        started = self._clock()
        served = 0
        next_boundary = self._next_boundary()
        # Under an armed overload policy the in-process engine does not
        # drain synchronously; the serve loop pumps each shard within the
        # policy's drain budget once per batch (the capacity model).  An
        # armed controller also needs a per-batch pump: its telemetry
        # scrape reads per-detector gauges (occupancy, evictions), which
        # only move when the shard queues actually drain — without the
        # pump the control loop would steer on stale zeros.
        pump = (
            getattr(self._engine, "pump", None)
            if self.overload is not None or self._controller is not None
            else None
        )
        if self._drain_requested:
            # Drain requested before (or between) serve calls: flush and
            # report without pulling anything more from the source.
            self._finish_drain(source, final_checkpoint, instruments, validation)
            return self.report(
                packets=served, duration_s=self._clock() - started
            )
        for batch in source.batches(self.batch_size, skip=self._ingested):
            if max_packets is not None and served + len(batch) > max_packets:
                batch = batch[: max_packets - served]
                if not batch:
                    break
            if forensics is not None:
                forensics.observe_batch(batch, self._ingested)
            if instruments is None:
                self._engine.ingest(batch)
            else:
                ingest_started = time.monotonic_ns()
                self._engine.ingest(batch)
                instruments.on_batch(
                    len(batch), time.monotonic_ns() - ingest_started
                )
            if pump is not None:
                pump()
            self._ingested += len(batch)
            served += len(batch)
            if instruments is not None:
                self._sync_instruments(validation)
            if on_progress is not None:
                on_progress(self)
            if self._coordinator is not None:
                self._coordinate()
            if self._controller is not None:
                # After the coordinator: a retune this batch lands at the
                # same boundary, and its forensic events are scanned by
                # the lab pass just below (same batch, same baseline).
                self._control_tick()
            if forensics is not None:
                # Scan before any checkpoint rebaseline below: new
                # incidents must capture their bundles against the
                # baseline that covers them, not the fresh one.
                forensics.scan(self)
            if next_boundary is not None and self._ingested >= next_boundary:
                self._write_checkpoint(source)
                next_boundary = self._next_boundary()
            if self._drain_requested:
                break
            if max_packets is not None and served >= max_packets:
                break
        self._finish_drain(source, final_checkpoint, instruments, validation)
        return self.report(packets=served, duration_s=self._clock() - started)

    def _finish_drain(
        self, source, final_checkpoint, instruments, validation
    ) -> None:
        """Common tail of every serve episode: flush everything pending
        (the graceful-drain step), write the terminal checkpoint, and do
        a final telemetry sync."""
        self._engine.flush()
        if self.forensics is not None:
            self.forensics.scan(self)
        if final_checkpoint and self.checkpoint_path is not None:
            self._write_checkpoint(source)
        if instruments is not None:
            self._sync_instruments(validation)
        if self._drain_requested:
            self._drained = True

    def report(self, packets: Optional[int] = None,
               duration_s: float = 0.0) -> ServiceReport:
        """A :class:`ServiceReport` of the service's current state.

        ``serve`` calls this at the end of a run; the supervisor also
        calls it directly to report what a *degraded* service (e.g. one
        whose source failed permanently) managed to process.
        """
        envelope = (
            self._engine.envelope() if hasattr(self._engine, "envelope")
            else []
        )
        from .sources import validation_stats

        stats = validation_stats(self._last_source)
        shard_health = self._engine.health()
        overload = (
            self._engine.overload_report()
            if hasattr(self._engine, "overload_report")
            else None
        )
        if self._instruments is not None:
            # The health sample is the only per-detector view the
            # multiprocess engine can offer the registry (its detectors
            # live out-of-process); harmless duplication in-process.
            self._instruments.sync_health(shard_health)
            if stats is not None:
                self._instruments.sync_validation(stats)
            self._instruments.sync_overload(overload)
        return ServiceReport(
            packets=self._ingested if packets is None else packets,
            duration_s=duration_s,
            detections=self._engine.detections(),
            shard_health=shard_health,
            dropped=self._engine.dropped,
            checkpoints_written=self._checkpoints_written,
            resumed_from=self._resumed_from,
            envelope=envelope,
            dead_letters=(
                self.dead_letter.total if self.dead_letter is not None else 0
            ),
            validation=stats.as_dict() if stats is not None else None,
            overload=overload,
            drained=self._drained,
            watcher=(
                self._watcher.report() if self._watcher is not None else None
            ),
            reshard=self._reshard_report(),
            control=self._control_report(),
        )

    def shutdown(self, drain: bool = False) -> None:
        """Graceful drain and engine teardown (idempotent).  With
        ``drain=True`` the teardown is marked as a requested drain:
        multiprocess workers exit with
        :data:`~repro.service.workers.DRAIN_EXIT_CODE` instead of 0."""
        if drain:
            self._drain_requested = True
            self._drained = True
        self._engine.close(drain=drain)

    def abort(self) -> None:
        """Crash-path teardown: discard queued work and kill workers
        without draining (the supervisor's cleanup before a restart —
        the checkpoint on disk, not the wreckage, is the recovery
        state)."""
        terminate = getattr(self._engine, "terminate", None)
        if terminate is not None:
            terminate()
        else:  # pragma: no cover - every engine has terminate today
            self._engine.close()

    def _sync_instruments(self, validation=None) -> None:
        """Copy the runtime's exact accumulators into the metric
        registry (one pass of cheap attribute reads; never triggers a
        multiprocess snapshot barrier)."""
        instruments = self._instruments
        instruments.set_ingested(self._ingested)
        instruments.sync_engine(self._engine)
        groups = getattr(self._engine, "detector_groups", None)
        if groups is not None:  # in-process: rich per-shard stats
            instruments.sync_detector_groups(groups())
        instruments.sync_reshard(self._reshard_report())
        instruments.sync_control(self._control_summary())
        if self.dead_letter is not None:
            instruments.sync_dead_letters(self.dead_letter.total)
        if self._watcher is not None:
            instruments.sync_watcher(self._watcher)
        transport_report = getattr(self._engine, "transport_report", None)
        if transport_report is not None:  # remote engine only
            instruments.sync_transport(transport_report())
        if validation is not None:
            instruments.sync_validation(validation)
        if self.forensics is not None:
            # Exact set_total sync from the store's per-class totals —
            # the counter and the incident log can never disagree.
            instruments.sync_incidents(self.forensics.store.totals_by_class)
        if self.overload is not None:
            overload_report = getattr(self._engine, "overload_report", None)
            if overload_report is not None:
                instruments.sync_overload(overload_report())

    def _checkpoint_control_meta(self) -> Optional[Dict[str, object]]:
        """The checkpoint's control block, or None while no retune ever
        happened (keeps old checkpoints byte-stable in the common case).

        ``eardet checkpoint inspect`` renders the epoch and the solver
        inputs; resume() restores the epoch and history so a resumed
        service keeps stamping reports with the right epoch.
        """
        if self._config_epoch == 0 and self._controller is None:
            return None
        if self._controller is not None:
            inputs = self._controller.solver_inputs(self.config)
        else:
            inputs = self._last_retune_inputs
        return {
            "epoch": self._config_epoch,
            "history": [dict(entry) for entry in self._epoch_history],
            "inputs": inputs,
        }

    def _next_boundary(self) -> Optional[int]:
        if self.checkpoint_every is None:
            return None
        every = self.checkpoint_every
        return (self._ingested // every + 1) * every

    def _write_checkpoint(self, source: PacketSource) -> None:
        instruments = self._instruments
        if instruments is None:
            self._write_checkpoint_now(source)
            return
        with instruments.tracer.span("checkpoint.write") as span:
            self._write_checkpoint_now(source)
        if span.duration_ns is not None:
            instruments.on_checkpoint(span.duration_ns)

    def checkpoint_now(self, source_name: str = "tune") -> None:
        """Write a checkpoint at the current boundary, outside the serve
        loop (the ``eardet tune --apply`` path: persist a committed
        config epoch durably without serving any traffic)."""
        if self.checkpoint_path is None:
            raise ValueError("checkpoint_now requires a checkpoint path")
        self._write_checkpoint_now(_NamedSource(source_name))

    def _write_checkpoint_now(self, source: PacketSource) -> None:
        payload = {
            "meta": {
                "format": CHECKPOINT_META_FORMAT,
                "kind": "eardet-service",
                "packets": self._ingested,
                "shards": self.shards,
                "slots": self.slots,
                "seed": self.seed,
                "engine": self.engine_kind,
                "checkpoint_every": self.checkpoint_every,
                "source": source.name,
                "watcher": (
                    self.watcher_policy.as_dict()
                    if self.watcher_policy is not None
                    else None
                ),
                # The CURRENT (newest-epoch) config: resume() rebuilds
                # the service under it directly.
                "config": _config_dict(self.config),
                "control": self._checkpoint_control_meta(),
            },
            # snapshot() drains the engine first, so the state matches the
            # ingested count exactly — the checkpoint boundary.
            "engine": self._engine.snapshot(),
        }
        write_checkpoint(
            self.checkpoint_path, payload, retry=self.checkpoint_backoff
        )
        self._checkpoints_written += 1
        if self.forensics is not None:
            # Reuse the checkpoint's engine snapshot as the new capture
            # baseline (zero extra snapshot cost; the ring restarts
            # here, so future bundles stay small).
            self.forensics.rebaseline(self, engine_snapshot=payload["engine"])
        if self.fault_plan is not None:
            # Injected checkpoint corruption (chaos testing the recovery
            # path): damage the file right after a successful write.
            self.fault_plan.corrupt_checkpoint(
                self.checkpoint_path, self._checkpoints_written
            )
