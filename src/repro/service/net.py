"""TCP transport for multi-host engines: frames, exactly-once delivery,
and the shard server behind ``eardet worker --listen``.

The in-tree engines shard within one process tree; this module carries
the same wire tuples over TCP so one coordinator
(:class:`~repro.service.remote.RemoteEngine`) can drive shard servers on
other hosts with the same bit-identical-detections discipline.  Networks
fail in ways ``multiprocessing`` queues never do — partitions, half-open
connections, duplicated and reordered frames — so the protocol is built
to make every such failure either *masked exactly* or *accounted in the
exactness envelope*.

Frame layout (all integers little-endian)::

    bytes 0-3    magic  b"ERNF"
    byte  4      frame type (uint8)
    bytes 5-12   sequence number (uint64)
    bytes 13-16  payload length (uint32)
    bytes 17-    payload — one value in the checkpoint codec
                 (:func:`repro.service.checkpoint.dumps`)
    last 4       CRC-32 over type + sequence + payload

Exactly-once batch delivery rests on three rules:

1. **Monotonic sequences.**  Every state-carrying frame (a ``BATCH`` of
   wire tuples, or a ``CONTROL`` request) takes the connection's next
   sequence number.  ``HELLO``/``WELCOME``/``ACK`` ride outside the
   stream (sequence 0 for HELLO/WELCOME; an ACK's sequence *is* the
   cumulative ack).
2. **Cumulative acks.**  The server applies a frame only when its
   sequence is exactly ``applied + 1`` and then acks ``applied``
   cumulatively.  A duplicate (``seq <= applied``) is discarded and
   re-acked — for a CONTROL frame, the cached reply is resent, so a
   retried request observes the original effect exactly once.  A gap
   (``seq > applied + 1``) is discarded and the current ack repeated,
   which tells the sender to replay.
3. **The unacked-frame ring.**  The sender keeps every frame beyond the
   cumulative ack and replays the tail on reconnect (and whenever a
   sync round discovers the server is behind).  Replayed duplicates are
   discarded by rule 2, so a retransmit is always safe.

The server (:class:`ShardServer`) mirrors the multiprocess worker's
in-band protocol one-to-one: ``assign`` (configuration + initial slot
states), ``packets`` batches, ``snapshot`` / ``extract`` / ``install``
migration barriers, ``stop`` (optionally draining), plus ``ping``
liveness and a ``scrape`` of server-side counters.  Because TCP delivers
in order within a connection and the sequence rules span reconnects,
every barrier keeps the exact-stream-prefix property the in-tree
engines' snapshots have.

Deterministic network chaos: a :class:`~repro.service.faults.FaultPlan`
``net:`` clause fires at an exact frame send index on one connection —
drop, duplicate, reorder, delay, partition, half-open — implemented on
the sender path of :class:`ShardConnection`, so a failing run replays
bit for bit.
"""

from __future__ import annotations

import itertools
import os
import socket
import struct
import threading
import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.blacklist import ReportSink
from ..core.config import EARDetConfig
from ..core.eardet import EARDet, reconfigure_state
from ..detectors.hashing import StageHash
from ..model.packet import Packet
from .backoff import BackoffPolicy
from .checkpoint import CheckpointError, dumps, loads
from .engine import FlowRouter
from .errors import FrameCorruptError, HandshakeError, TransportError
from .workers import DRAIN_EXIT_CODE, INVARIANT_EXIT_CODE

#: Frame magic — distinct from the checkpoint file magic so a frame
#: stream can never be mistaken for a checkpoint (or vice versa).
FRAME_MAGIC = b"ERNF"

#: Bump on any incompatible change to the frame layout or the control
#: vocabulary.  Both ends send it in the handshake and refuse mismatches
#: permanently (:class:`~repro.service.errors.HandshakeError`).
NET_PROTOCOL_VERSION = 1

#: Exit code the shard server uses when the transport fails permanently:
#: a handshake the two ends can never agree on (protocol version,
#: detector seed, slot count, or configuration) or an unrecoverable
#: protocol violation.  Distinct from a crash and from the drain /
#: invariant codes so a process supervisor can tell "restarting cannot
#: help until the deployment is fixed" from "restart me".  76 is
#: ``EX_PROTOCOL`` in BSD sysexits.
TRANSPORT_ABORT_EXIT_CODE = 76

# Frame types.
FT_HELLO = 1
FT_WELCOME = 2
FT_BATCH = 3
FT_ACK = 4
FT_CONTROL = 5
FT_REPLY = 6

_FRAME_TYPES = (FT_HELLO, FT_WELCOME, FT_BATCH, FT_ACK, FT_CONTROL, FT_REPLY)

_HEADER = struct.Struct("<4sBQI")
_CRC = struct.Struct("<I")

#: Ceiling on a single frame's payload (64 MiB) — a length field beyond
#: this is treated as corruption, not as a request to allocate.
MAX_PAYLOAD = 64 * 1024 * 1024

#: Default deadline for one blocking read of a complete frame.
DEFAULT_FRAME_TIMEOUT_S = 30.0

#: Consecutive ack-less one-second poll intervals (each followed by a
#: full tail replay that changed nothing) after which a blocked sender
#: presumes the connection is half-open — TCP writes that vanish into a
#: dead peer report no error — and tears it down so the reconnect path
#: can replay the ring on a fresh socket.
HALF_OPEN_POLL_LIMIT = 3

_session_counter = itertools.count(1)


def next_session_id() -> int:
    """A coordinator-session id: unique across supervisor restarts of
    the same process *and* across coordinator processes.  A new session
    tells the shard servers to reset their exactly-once sequence state
    and adopt the coordinator's (checkpoint-restored) view wholesale —
    cross-session exactness comes from the checkpoint replay discipline,
    exactly as it does when multiprocess workers are respawned."""
    return (os.getpid() << 20) | next(_session_counter)


def encode_frame(ftype: int, seq: int, payload: Any) -> bytes:
    """Encode one frame.  ``payload`` is any checkpoint-codec value."""
    if ftype not in _FRAME_TYPES:
        raise ValueError(f"unknown frame type {ftype!r}")
    if seq < 0:
        raise ValueError(f"sequence must be >= 0, got {seq}")
    body = dumps(payload)
    if len(body) > MAX_PAYLOAD:
        raise ValueError(f"frame payload too large: {len(body)} bytes")
    head = _HEADER.pack(FRAME_MAGIC, ftype, seq, len(body))
    crc = zlib.crc32(head[4:] + body) & 0xFFFFFFFF
    return head + body + _CRC.pack(crc)


def decode_frame(data: bytes) -> Tuple[int, int, Any]:
    """Decode one complete frame; returns ``(type, seq, payload)``.

    Raises :class:`~repro.service.errors.FrameCorruptError` with the
    failing byte offset on any integrity violation.
    """
    if len(data) < _HEADER.size + _CRC.size:
        raise FrameCorruptError(
            f"truncated frame: {len(data)} bytes", offset=len(data)
        )
    magic, ftype, seq, length = _HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise FrameCorruptError(f"bad frame magic {magic!r}", offset=0)
    if ftype not in _FRAME_TYPES:
        raise FrameCorruptError(f"unknown frame type {ftype}", offset=4)
    if length > MAX_PAYLOAD:
        raise FrameCorruptError(
            f"impossible payload length {length}", offset=13
        )
    expected = _HEADER.size + length + _CRC.size
    if len(data) != expected:
        raise FrameCorruptError(
            f"frame length mismatch: {len(data)} bytes for a "
            f"{length}-byte payload",
            offset=len(data),
        )
    body = data[_HEADER.size:_HEADER.size + length]
    (stored,) = _CRC.unpack_from(data, _HEADER.size + length)
    actual = zlib.crc32(data[4:_HEADER.size + length]) & 0xFFFFFFFF
    if stored != actual:
        raise FrameCorruptError(
            f"frame CRC mismatch: stored {stored:#010x}, "
            f"computed {actual:#010x}",
            offset=_HEADER.size + length,
        )
    try:
        payload = loads(body)
    except CheckpointError as error:
        raise FrameCorruptError(
            f"undecodable frame payload: {error}", offset=_HEADER.size
        ) from error
    return ftype, seq, payload


def read_frame(sock: socket.socket,
               timeout_s: float = DEFAULT_FRAME_TIMEOUT_S
               ) -> Tuple[int, int, Any]:
    """Read exactly one frame from ``sock``.

    Raises :class:`TransportError` on EOF/timeout and
    :class:`~repro.service.errors.FrameCorruptError` on damage.
    """
    sock.settimeout(timeout_s)
    head = _read_exact(sock, _HEADER.size)
    magic, ftype, _seq, length = _HEADER.unpack(head)
    if magic != FRAME_MAGIC:
        raise FrameCorruptError(f"bad frame magic {magic!r}", offset=0)
    if length > MAX_PAYLOAD:
        raise FrameCorruptError(
            f"impossible payload length {length}", offset=13
        )
    rest = _read_exact(sock, length + _CRC.size)
    return decode_frame(head + rest)


def _read_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout as error:
            raise TransportError(
                f"timed out reading a frame ({count - remaining}/{count} "
                f"bytes arrived)"
            ) from error
        except OSError as error:
            raise TransportError(f"socket error mid-frame: {error}") from error
        if not chunk:
            raise TransportError(
                f"connection closed mid-frame ({count - remaining}/{count} "
                f"bytes arrived)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def parse_endpoint(spec: str) -> Tuple[str, int]:
    """Parse ``host:port``; a bare port means loopback."""
    spec = spec.strip()
    host, sep, port = spec.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", spec
    host = host.strip() or "127.0.0.1"
    try:
        number = int(port)
    except ValueError:
        raise ValueError(f"bad endpoint {spec!r}: port must be an integer")
    if not 0 <= number <= 65535:
        raise ValueError(f"bad endpoint {spec!r}: port out of range")
    return host, number


def parse_endpoints(spec: str) -> List[Tuple[str, int]]:
    """Parse a comma-separated endpoint list (the ``--workers`` flag)."""
    endpoints = [
        parse_endpoint(part) for part in spec.split(",") if part.strip()
    ]
    if not endpoints:
        raise ValueError(f"no endpoints in {spec!r}")
    return endpoints


# -- sender side -----------------------------------------------------------


class ShardConnection:
    """One coordinator→shard-server connection with exactly-once framing.

    Owns the sequence counter, the unacked-frame ring, reconnect under a
    :class:`~repro.service.backoff.BackoffPolicy`, and the deterministic
    ``net:`` fault hooks.  The owning engine decides *policy* (when an
    outage stops being masked and becomes accounted loss); this class
    only ever reports failure, it never drops a frame on its own.
    """

    def __init__(
        self,
        shard: int,
        host: str,
        port: int,
        backoff: Optional[BackoffPolicy] = None,
        fault_plan=None,
        connect_timeout_s: float = 5.0,
        frame_timeout_s: float = DEFAULT_FRAME_TIMEOUT_S,
    ):
        self.shard = shard
        self.host = host
        self.port = port
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self._plan = fault_plan
        self.connect_timeout_s = connect_timeout_s
        self.frame_timeout_s = frame_timeout_s
        self._sock: Optional[socket.socket] = None
        self._seq = 0  # last sequence number assigned
        self._acked = 0  # highest cumulative ack received
        self._ring: List[Tuple[int, bytes]] = []  # unacked (seq, frame)
        self._send_attempts = 0  # 1-based frame send index (fault hook)
        self._reorder_stash: Optional[bytes] = None
        self._half_open = False
        self._partition_until = 0.0
        self._reconnect_attempt = 0
        self._last_recv_monotonic = time.monotonic()
        self._replies: List[Tuple[int, Any]] = []  # undelivered (seq, payload)
        #: Set when the server shipped a fatal in-band reply (an
        #: invariant violation's forensics) before dying.
        self.fatal: Optional[Dict[str, Any]] = None
        # Exact transport accounting (integers; exposed via
        # RemoteEngine.transport_report and eardet_net_* metrics).
        self.frames_sent = 0
        self.retransmits = 0
        self.reconnects = 0
        self.acks_received = 0
        self.faults_injected = 0
        self.reconnect_pauses_ns: List[int] = []

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def acked_seq(self) -> int:
        return self._acked

    @property
    def highest_seq(self) -> int:
        return self._seq

    @property
    def ring_depth(self) -> int:
        return len(self._ring)

    def seconds_since_recv(self) -> float:
        return max(0.0, time.monotonic() - self._last_recv_monotonic)

    # -- connection lifecycle ---------------------------------------------

    def connect(self, hello_extra: Optional[Dict[str, Any]] = None) -> Dict:
        """(Re)connect, handshake, and replay the unacked ring.

        Returns the server's WELCOME payload.  Raises
        :class:`TransportError` when the endpoint is unreachable (or an
        injected partition still refuses reconnects) and
        :class:`~repro.service.errors.HandshakeError` on a permanent
        protocol disagreement.
        """
        if self._sock is not None:
            return {"proto": NET_PROTOCOL_VERSION, "acked": self._acked}
        now = time.monotonic()
        if now < self._partition_until:
            raise TransportError(
                f"shard {self.shard} endpoint {self.endpoint} partitioned "
                f"for another {self._partition_until - now:.3f}s (injected)",
                shard=self.shard,
                endpoint=self.endpoint,
            )
        started_ns = time.monotonic_ns()
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s
            )
        except OSError as error:
            self._reconnect_attempt += 1
            raise TransportError(
                f"cannot connect to shard {self.shard} at {self.endpoint}: "
                f"{error}",
                shard=self.shard,
                endpoint=self.endpoint,
            ) from error
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._half_open = False
        try:
            hello = {
                "proto": NET_PROTOCOL_VERSION,
                "shard": self.shard,
                "seq": self._seq,
            }
            if hello_extra:
                hello.update(hello_extra)
            self._raw_send(encode_frame(FT_HELLO, 0, hello))
            ftype, _seq, welcome = read_frame(sock, self.frame_timeout_s)
            if ftype != FT_WELCOME or not isinstance(welcome, dict):
                raise FrameCorruptError(
                    f"expected WELCOME, got frame type {ftype}",
                    shard=self.shard, endpoint=self.endpoint,
                )
            if welcome.get("error"):
                self.close_socket()
                raise HandshakeError(
                    f"shard {self.shard} at {self.endpoint} refused the "
                    f"handshake: {welcome['error']}",
                    shard=self.shard, endpoint=self.endpoint,
                )
            if welcome.get("proto") != NET_PROTOCOL_VERSION:
                self.close_socket()
                raise HandshakeError(
                    f"shard {self.shard} at {self.endpoint} speaks protocol "
                    f"{welcome.get('proto')!r}, this coordinator speaks "
                    f"{NET_PROTOCOL_VERSION}",
                    shard=self.shard, endpoint=self.endpoint,
                )
            self._last_recv_monotonic = time.monotonic()
            acked = int(welcome.get("acked", 0))
            self._absorb_ack(acked)
            self.reconnects += 1
            self._reconnect_attempt = 0
            self.reconnect_pauses_ns.append(time.monotonic_ns() - started_ns)
            # Replay everything the server has not applied, in order.
            for seq, frame in list(self._ring):
                self.retransmits += 1
                self._transmit(frame)
            return welcome
        except (TransportError, HandshakeError):
            raise
        except OSError as error:
            self.close_socket()
            raise TransportError(
                f"handshake with shard {self.shard} at {self.endpoint} "
                f"failed: {error}",
                shard=self.shard, endpoint=self.endpoint,
            ) from error

    def reconnect_delay_s(self) -> float:
        """Backoff delay before the next reconnect attempt."""
        return self.backoff.delay_s(self._reconnect_attempt)

    def close_socket(self) -> None:
        """Drop the socket (the ring survives for the next connect)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass
            self._sock = None
        self._reorder_stash = None
        self._half_open = False

    # -- sending -----------------------------------------------------------

    def send(self, ftype: int, payload: Any) -> int:
        """Assign the next sequence number, ring the frame, and try to
        put it on the wire.  Returns the sequence number.  Raises
        :class:`TransportError` when disconnected — the frame stays in
        the ring either way, so the caller's policy decides whether to
        mask (reconnect later and replay) or to account loss."""
        self._seq += 1
        seq = self._seq
        frame = encode_frame(ftype, seq, payload)
        self._ring.append((seq, frame))
        self._transmit(frame)
        return seq

    def _transmit(self, frame: bytes) -> None:
        """One send attempt: the ``net:`` fault hook, then the socket."""
        if self._sock is None:
            raise TransportError(
                f"shard {self.shard} connection is down",
                shard=self.shard, endpoint=self.endpoint,
            )
        if self._reorder_stash is not None:
            stashed, self._reorder_stash = self._reorder_stash, None
            self._apply_fault_and_send(frame)
            self._raw_send(stashed)
            return
        self._apply_fault_and_send(frame)

    def _apply_fault_and_send(self, frame: bytes) -> None:
        self._send_attempts += 1
        fault = None
        if self._plan is not None:
            fault = self._plan.take_net(self.shard, self._send_attempts)
        if fault is None:
            if not self._half_open:
                self._raw_send(frame)
            return
        self.faults_injected += 1
        kind = fault.kind
        if kind == "drop":
            return  # vanished on the wire; the ring will replay it
        if kind == "dup":
            self._raw_send(frame)
            self._raw_send(frame)
            return
        if kind == "reorder":
            self._reorder_stash = frame  # swaps with the next frame
            return
        if kind == "delay":
            time.sleep(fault.duration_s)
            self._raw_send(frame)
            return
        if kind == "partition":
            self.close_socket()
            self._partition_until = time.monotonic() + fault.duration_s
            raise TransportError(
                f"injected partition severed shard {self.shard} at frame "
                f"{self._send_attempts}",
                shard=self.shard, endpoint=self.endpoint,
                frame_seq=self._seq,
            )
        if kind == "halfopen":
            self._half_open = True  # writes vanish until reconnect
            return
        raise AssertionError(f"unhandled net fault kind {kind!r}")

    def _raw_send(self, frame: bytes) -> None:
        if self._sock is None:
            raise TransportError(
                f"shard {self.shard} connection is down",
                shard=self.shard, endpoint=self.endpoint,
            )
        try:
            self._sock.sendall(frame)
            self.frames_sent += 1
        except OSError as error:
            self.close_socket()
            raise TransportError(
                f"send to shard {self.shard} at {self.endpoint} failed: "
                f"{error}",
                shard=self.shard, endpoint=self.endpoint,
            ) from error

    def flush_stash(self) -> None:
        """Put a reorder-stashed frame on the wire (barriers call this so
        a stash cannot outlive the stream it belongs to)."""
        if self._reorder_stash is not None and self._sock is not None:
            stashed, self._reorder_stash = self._reorder_stash, None
            self._raw_send(stashed)

    # -- receiving ---------------------------------------------------------

    def poll(self) -> None:
        """Drain whatever frames are ready without blocking (acks trim
        the ring; replies queue for :meth:`wait_reply`)."""
        while self._sock is not None:
            try:
                self._sock.settimeout(0.0)
                peek = self._sock.recv(1, socket.MSG_PEEK)
            except (BlockingIOError, socket.timeout):
                return
            except OSError:
                self.close_socket()
                return
            if not peek:
                self.close_socket()
                return
            try:
                self._absorb(read_frame(self._sock, self.frame_timeout_s))
            except TransportError:
                self.close_socket()
                return

    def wait_reply(self, seq: int, deadline_s: float) -> Any:
        """Block until the REPLY for control frame ``seq`` arrives,
        absorbing acks on the way and re-syncing (replay) when the
        server reports it is behind.  Raises :class:`TransportError` on
        deadline or when the connection is presumed half-open (see
        :data:`HALF_OPEN_POLL_LIMIT`)."""
        deadline = time.monotonic() + deadline_s
        stalled = 0
        while True:
            for index, (reply_seq, payload) in enumerate(self._replies):
                if reply_seq == seq:
                    del self._replies[index]
                    return payload
            if self._sock is None:
                raise TransportError(
                    f"shard {self.shard} connection lost while waiting for "
                    f"reply {seq}",
                    shard=self.shard, endpoint=self.endpoint, frame_seq=seq,
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError(
                    f"timed out waiting for reply {seq} from shard "
                    f"{self.shard} at {self.endpoint} "
                    f"(acked {self._acked}/{self._seq})",
                    shard=self.shard, endpoint=self.endpoint, frame_seq=seq,
                )
            try:
                self._absorb(
                    read_frame(self._sock, min(remaining, 1.0))
                )
                stalled = 0
            except TransportError as error:
                if "timed out" in str(error):
                    # Nothing arrived for a whole poll interval: a frame
                    # before the reply may have vanished (an injected
                    # drop).  Retransmit the unacked tail — duplicates
                    # are discarded by sequence, so this is always safe.
                    stalled += 1
                    if stalled >= HALF_OPEN_POLL_LIMIT:
                        # Replays changed nothing either: the connection
                        # is presumed half-open (our writes vanish).
                        # Tear it down so the caller's reconnect path —
                        # which replays the ring on a fresh socket —
                        # takes over.
                        self._presume_half_open(f"reply {seq}")
                    self._replay_tail()
                    continue
                self.close_socket()
                raise

    def wait_acks(self, max_ring: int, deadline_s: float) -> None:
        """Block until the unacked ring drains to ``max_ring`` frames or
        fewer — connected-side backpressure, the analogue of blocking on
        a full multiprocess queue.  Raises :class:`TransportError` on
        deadline or a lost connection (the caller's partition policy
        takes over)."""
        deadline = time.monotonic() + deadline_s
        stalled = 0
        while len(self._ring) > max_ring:
            if self._sock is None:
                raise TransportError(
                    f"shard {self.shard} connection lost with "
                    f"{len(self._ring)} frames unacked",
                    shard=self.shard, endpoint=self.endpoint,
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError(
                    f"shard {self.shard} at {self.endpoint} still "
                    f"{len(self._ring)} frames behind after {deadline_s}s "
                    f"(acked {self._acked}/{self._seq})",
                    shard=self.shard, endpoint=self.endpoint,
                )
            try:
                self._absorb(read_frame(self._sock, min(remaining, 1.0)))
                stalled = 0
            except TransportError as error:
                if "timed out" in str(error):
                    stalled += 1
                    if stalled >= HALF_OPEN_POLL_LIMIT:
                        self._presume_half_open(
                            f"{len(self._ring)} unacked frames"
                        )
                    self._replay_tail()
                    continue
                self.close_socket()
                raise

    def _presume_half_open(self, waiting_for: str) -> None:
        """Tear down a connection that acks nothing despite replays."""
        self.close_socket()
        raise TransportError(
            f"shard {self.shard} at {self.endpoint} acked nothing for "
            f"{HALF_OPEN_POLL_LIMIT} poll intervals while waiting for "
            f"{waiting_for}: presumed half-open",
            shard=self.shard, endpoint=self.endpoint,
        )

    def _absorb(self, frame: Tuple[int, int, Any]) -> None:
        ftype, seq, payload = frame
        self._last_recv_monotonic = time.monotonic()
        if ftype == FT_ACK:
            self.acks_received += 1
            self._absorb_ack(seq)
            if payload == "gap" and seq < self._seq:
                # The server discarded an out-of-order frame and told us
                # its high-water mark: replay the tail it is missing.
                # (Plain trailing acks are normal pipelining — replaying
                # on those would be a retransmit storm.)
                self._replay_tail()
        elif ftype == FT_REPLY:
            self._absorb_ack(seq)
            if isinstance(payload, dict) and payload.get("op") == "invariant":
                self.fatal = payload
            self._replies.append((seq, payload))
        else:
            raise FrameCorruptError(
                f"unexpected frame type {ftype} from shard {self.shard}",
                shard=self.shard, endpoint=self.endpoint,
            )

    def _absorb_ack(self, acked: int) -> None:
        if acked > self._acked:
            self._acked = acked
        while self._ring and self._ring[0][0] <= self._acked:
            self._ring.pop(0)

    def _replay_tail(self) -> None:
        for seq, frame in list(self._ring):
            if seq > self._acked:
                self.retransmits += 1
                try:
                    self._transmit(frame)
                except TransportError:
                    return

    def report(self) -> Dict[str, Any]:
        """Exact per-connection transport counters."""
        return {
            "endpoint": self.endpoint,
            "connected": self.connected,
            "frames_sent": self.frames_sent,
            "retransmits": self.retransmits,
            "reconnects": self.reconnects,
            "acks_received": self.acks_received,
            "faults_injected": self.faults_injected,
            "highest_seq": self._seq,
            "acked_seq": self._acked,
            "ring_depth": len(self._ring),
            "reconnect_pauses_ns": list(self.reconnect_pauses_ns),
        }


# -- server side -----------------------------------------------------------


class ShardServer:
    """One remote shard: EARDet detectors behind a TCP listener.

    Unconfigured at start — the coordinator's ``assign`` control frame
    delivers the detector configuration, the hash seed/slot space, the
    hosted slot ids, and any restored slot states, so ``eardet worker
    --listen`` needs no detector flags and cannot drift from the
    coordinator.  One coordinator connection is active at a time; a new
    accept replaces a dead one (the reconnect path), and the
    exactly-once sequence state spans connections.

    Run blocking via :meth:`serve_forever` (the CLI) or on a daemon
    thread via :meth:`start` (tests, benchmarks, single-host fleets).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 frame_timeout_s: float = DEFAULT_FRAME_TIMEOUT_S):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(4)
        self.host, self.port = self._listener.getsockname()[:2]
        self.frame_timeout_s = frame_timeout_s
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self.exit_code: Optional[int] = None
        # Detection state (populated by "assign").
        self._config: Optional[EARDetConfig] = None
        self._seed = 0
        self._slots = 0
        self._invariant_every: Optional[int] = None
        self._detectors: Dict[int, EARDet] = {}
        self._router: Optional[Callable] = None
        self._solo: Optional[EARDet] = None
        # Exactly-once state (spans connections within one coordinator
        # session; a new session id in HELLO resets it — see
        # :func:`next_session_id`).
        self._session: Optional[int] = None
        self._applied_seq = 0
        self._reply_cache: Dict[int, bytes] = {}
        # Exact server-side counters (the "scrape" control op).
        self.frames_received = 0
        self.duplicates_discarded = 0
        self.gaps_discarded = 0
        self.batches_applied = 0
        self.packets_processed = 0
        self.connections_accepted = 0

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShardServer":
        """Serve on a daemon thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Tear the server down from outside (tests/cleanup)."""
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def serve_forever(self) -> int:
        """Accept coordinator connections until a ``stop`` control frame
        (or :meth:`stop`).  Returns the process exit code the CLI should
        use: 0 (end of stream), :data:`~repro.service.workers.
        DRAIN_EXIT_CODE` (graceful drain), :data:`~repro.service.
        workers.INVARIANT_EXIT_CODE` (corrupted algorithm state) or
        :data:`TRANSPORT_ABORT_EXIT_CODE` (permanent protocol
        disagreement)."""
        try:
            while not self._stopped.is_set():
                try:
                    conn, _addr = self._listener.accept()
                except OSError:
                    break  # listener closed by stop()
                self.connections_accepted += 1
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                try:
                    self._serve_connection(conn)
                except _ServerExit as final:
                    self.exit_code = final.exit_code
                    self._stopped.set()
                except (TransportError, FrameCorruptError, OSError):
                    # A torn or corrupt connection (including a broken
                    # pipe mid-ack): drop it and await the coordinator's
                    # reconnect — the sequence discipline makes this
                    # lossless.
                    pass
                finally:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover
                        pass
        finally:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        if self.exit_code is None:
            self.exit_code = 0
        return self.exit_code

    # -- per-connection loop ----------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        ftype, _seq, hello = read_frame(conn, self.frame_timeout_s)
        if ftype != FT_HELLO or not isinstance(hello, dict):
            raise FrameCorruptError(f"expected HELLO, got type {ftype}")
        if hello.get("proto") != NET_PROTOCOL_VERSION:
            conn.sendall(encode_frame(FT_WELCOME, 0, {
                "proto": NET_PROTOCOL_VERSION,
                "error": (
                    f"protocol {hello.get('proto')!r} != "
                    f"{NET_PROTOCOL_VERSION}"
                ),
            }))
            raise _ServerExit(TRANSPORT_ABORT_EXIT_CODE)
        session = hello.get("session")
        if session != self._session:
            # A new coordinator session (fresh start or a supervised
            # restart-from-checkpoint): reset the exactly-once state —
            # the coming ``assign`` replaces the hosted detectors with
            # the coordinator's restored view.
            self._session = session
            self._applied_seq = 0
            self._reply_cache = {}
        conn.sendall(encode_frame(FT_WELCOME, 0, {
            "proto": NET_PROTOCOL_VERSION,
            "acked": self._applied_seq,
            "processed": self.packets_processed,
        }))
        while True:
            try:
                ftype, seq, payload = read_frame(conn, self.frame_timeout_s)
            except TransportError as error:
                if "(0/" in str(error) and "timed out" in str(error):
                    continue  # idle coordinator, not a dead one
                raise
            self.frames_received += 1
            if ftype not in (FT_BATCH, FT_CONTROL):
                raise FrameCorruptError(
                    f"unexpected frame type {ftype} on the server side"
                )
            if seq <= self._applied_seq:
                # Exactly-once: a duplicate is discarded; the cached
                # reply (if the original was a control frame) or a
                # cumulative ack tells the sender where we are.
                self.duplicates_discarded += 1
                cached = self._reply_cache.get(seq)
                if cached is not None:
                    conn.sendall(cached)
                else:
                    conn.sendall(
                        encode_frame(FT_ACK, self._applied_seq, None)
                    )
                continue
            if seq > self._applied_seq + 1:
                # A gap: something before this frame vanished.  Discard
                # it and send a gap-marked cumulative ack — the marker
                # (not mere ack lag, which is normal while pipelining)
                # is what triggers the sender's replay.
                self.gaps_discarded += 1
                conn.sendall(encode_frame(FT_ACK, self._applied_seq, "gap"))
                continue
            # seq == applied + 1: apply exactly once.
            try:
                if ftype == FT_BATCH:
                    self._apply_batch(payload)
                    self._applied_seq = seq
                    conn.sendall(encode_frame(FT_ACK, seq, None))
                else:
                    reply, final = self._apply_control(seq, payload)
                    self._applied_seq = seq
                    frame = encode_frame(FT_REPLY, seq, reply)
                    # Cache only the latest control reply: the sender
                    # issues control frames synchronously, so only the
                    # newest can ever be re-requested.
                    self._reply_cache = {seq: frame}
                    conn.sendall(frame)
                    if final is not None:
                        raise _ServerExit(final)
            except _InvariantSignal as signal:
                # Corrupted algorithm state is permanent: ship the
                # forensics in-band (mirroring the multiprocess
                # worker), then die with the invariant exit code.
                try:
                    conn.sendall(encode_frame(FT_REPLY, seq, {
                        "op": "invariant",
                        "payload": signal.violation.as_dict(),
                    }))
                except OSError:  # pragma: no cover - peer already gone
                    pass
                raise _ServerExit(INVARIANT_EXIT_CODE)

    # -- frame application -------------------------------------------------

    def _apply_batch(self, tuples) -> None:
        if self._config is None:
            raise FrameCorruptError("BATCH before assign")
        try:
            if self._solo is not None:
                observe = self._solo.observe
                for time_ns, size, fid in tuples:
                    observe(Packet(time_ns, size, fid))
            else:
                detectors = self._detectors
                router = self._router
                for time_ns, size, fid in tuples:
                    detectors[router(fid)].observe(Packet(time_ns, size, fid))
        except _InvariantSignal:  # pragma: no cover - re-raise shape
            raise
        except Exception as error:
            if _is_invariant(error):
                raise _InvariantSignal(error) from error
            raise
        self.batches_applied += 1
        self.packets_processed += len(tuples)

    def _apply_control(
        self, seq: int, payload
    ) -> Tuple[Dict[str, Any], Optional[int]]:
        """Apply one control op; returns ``(reply, exit_code_or_None)``."""
        if not isinstance(payload, dict) or "op" not in payload:
            raise FrameCorruptError(f"malformed control frame {payload!r}")
        op = payload["op"]
        try:
            if op == "assign":
                return self._op_assign(payload), None
            if self._config is None and op not in ("ping", "scrape", "stop"):
                raise FrameCorruptError(f"control {op!r} before assign")
            if op == "ping":
                return {
                    "op": "pong",
                    "acked": seq,
                    "processed": self.packets_processed,
                }, None
            if op == "scrape":
                return {"op": "metrics", "metrics": self.scrape()}, None
            if op == "snapshot":
                return {
                    "op": "snapshot",
                    "states": {
                        slot: det.snapshot()
                        for slot, det in self._detectors.items()
                    },
                }, None
            if op == "extract":
                taken = {}
                for slot in payload["slots"]:
                    detector = self._detectors.pop(int(slot), None)
                    if detector is not None:
                        taken[int(slot)] = detector.snapshot()
                self._refresh_solo()
                return {"op": "extracted", "states": taken}, None
            if op == "install":
                for slot, state in payload["states"].items():
                    self._detectors[int(slot)] = self._build(state)
                self._refresh_solo()
                return {
                    "op": "installed",
                    "slots": sorted(self._detectors),
                }, None
            if op == "reconfig":
                # Hot reconfiguration: rebuild every hosted slot under
                # the new config at this exact sequence point (the frame
                # discipline is the batch barrier).  Build-all-then-swap;
                # a refusal leaves the old detectors serving and reports
                # the failure in-band — the server stays up.
                new_config = _decode_config(payload["config"])
                old_config = self._config
                self._config = new_config
                try:
                    rebuilt = {
                        slot: self._build(
                            reconfigure_state(det.snapshot(), new_config)
                        )
                        for slot, det in self._detectors.items()
                    }
                except Exception as error:
                    self._config = old_config
                    if _is_invariant(error):
                        raise _InvariantSignal(error) from error
                    import traceback

                    return {
                        "op": "reconfigured",
                        "ok": False,
                        "error": traceback.format_exc(),
                        "message": str(error),
                    }, None
                self._detectors = rebuilt
                self._refresh_solo()
                return {
                    "op": "reconfigured",
                    "ok": True,
                    "slots": sorted(rebuilt),
                }, None
            if op == "stop":
                reply = {
                    "op": "done",
                    "states": {
                        slot: det.snapshot()
                        for slot, det in self._detectors.items()
                    },
                }
                code = (
                    DRAIN_EXIT_CODE if payload.get("drain") else 0
                )
                return reply, code
        except (_InvariantSignal, _ServerExit):
            raise
        except (FrameCorruptError, HandshakeError):
            raise
        except Exception as error:
            if _is_invariant(error):
                raise _InvariantSignal(error) from error
            import traceback

            return {"op": "error", "traceback": traceback.format_exc(),
                    "message": str(error)}, None
        raise FrameCorruptError(f"unknown control op {op!r}")

    def _op_assign(self, payload) -> Dict[str, Any]:
        config = _decode_config(payload["config"])
        seed = int(payload["seed"])
        slots = int(payload["slots"])
        if self._config is not None and (seed, slots) != (
            self._seed, self._slots
        ):
            # A coordinator whose hash deployment (seed / slot space)
            # disagrees with what this server was built for is a
            # permanent condition: restarting either side reproduces it.
            # Abort with the transport code.  The *detector config* is
            # deliberately not part of this check — a supervised restart
            # after a rolled-back retune legitimately reassigns with the
            # checkpoint's previous-epoch config, and the assign replaces
            # the hosted detectors wholesale either way.
            raise _ServerExit(TRANSPORT_ABORT_EXIT_CODE)
        # (Re)build wholesale: within a session the sequence discipline
        # guarantees this runs once; across sessions the coordinator's
        # restored view *replaces* whatever this server hosted.
        self._config = config
        self._seed = seed
        self._slots = slots
        self._invariant_every = payload.get("invariant_every")
        self._router = FlowRouter(StageHash(seed=seed, buckets=slots))
        states = payload.get("states") or {}
        self._detectors = {
            int(slot): self._build(states.get(slot)) for slot in
            payload["slot_ids"]
        }
        self._refresh_solo()
        return {"op": "assigned", "slots": sorted(self._detectors)}

    def _build(self, state=None) -> EARDet:
        detector = EARDet(self._config)
        if self._invariant_every is not None:
            from ..guard import InvariantChecker

            detector.attach_checker(
                InvariantChecker(int(self._invariant_every))
            )
        if state is not None:
            detector.restore(state)
        return detector

    def _refresh_solo(self) -> None:
        self._solo = (
            next(iter(self._detectors.values()))
            if len(self._detectors) == 1 else None
        )

    # -- introspection -----------------------------------------------------

    def scrape(self) -> Dict[str, int]:
        """Server-side exact counters (the telemetry scrape)."""
        return {
            "frames_received": self.frames_received,
            "duplicates_discarded": self.duplicates_discarded,
            "gaps_discarded": self.gaps_discarded,
            "batches_applied": self.batches_applied,
            "packets_processed": self.packets_processed,
            "connections_accepted": self.connections_accepted,
            "applied_seq": self._applied_seq,
            "detections": sum(
                len(det.snapshot()["sink"])
                for det in self._detectors.values()
            ),
        }

    def detections(self) -> Dict:
        """Merged detections of the hosted slots (local introspection —
        the coordinator gets these via snapshot frames)."""
        sink = ReportSink()
        for detector in self._detectors.values():
            slot_sink = ReportSink()
            slot_sink.restore(detector.snapshot()["sink"])
            sink.merge(slot_sink)
        return sink.as_dict()


def _decode_config(data: Dict[str, Any]) -> EARDetConfig:
    """Rebuild an :class:`EARDetConfig` from its wire dict (assign and
    reconfig control frames share this shape)."""
    return EARDetConfig(
        rho=int(data["rho"]),
        n=int(data["n"]),
        beta_th=int(data["beta_th"]),
        alpha=int(data["alpha"]),
        beta_l=int(data["beta_l"]),
        gamma_l=int(data["gamma_l"]),
        virtual_unit=data.get("virtual_unit"),
    )


class _ServerExit(Exception):
    """Internal: unwind the connection loop with a process exit code."""

    def __init__(self, exit_code: int):
        super().__init__(f"server exit {exit_code}")
        self.exit_code = exit_code


class _InvariantSignal(Exception):
    """Internal: an InvariantViolation crossed the frame handler."""

    def __init__(self, violation):
        super().__init__(str(violation))
        self.violation = violation


def _is_invariant(error: BaseException) -> bool:
    from ..guard import InvariantViolation

    return isinstance(error, InvariantViolation)


def run_worker(listen: str) -> int:
    """Blocking entry point for ``eardet worker --listen HOST:PORT``.

    Serves one shard until the coordinator stops it; converts an
    invariant violation into :data:`~repro.service.workers.
    INVARIANT_EXIT_CODE` so process supervisors classify the death the
    same way the multiprocess parent does.
    """
    host, port = parse_endpoint(listen)
    server = ShardServer(host=host, port=port)
    print(f"eardet worker listening on {server.endpoint}", flush=True)
    return server.serve_forever()
