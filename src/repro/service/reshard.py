"""Exact live resharding: slot layouts, migration plans, the two-phase
migration protocol, and the skew-driven elasticity coordinator.

Why migrations here can be *exact*
----------------------------------

EARDet's counter store is shared across the flows of a shard (min-
eviction couples every flow's counter to every other's), so per-flow
state is **not separable**: splitting one detector's state between two
detectors cannot reproduce what two detectors would have computed.  The
engines therefore route flows onto a fixed number of **slots** (``fid →
slot`` via the seeded stage hash), keep one full EARDet *per slot*, and
map slots onto shards through a versioned :class:`ShardLayout`.  A
shard is purely a *hosting* unit — queues, overload ladders and loss
accounting live per shard — while detection state lives per slot.

Each slot's detector sees exactly the slot's hash sub-stream in arrival
order **no matter which shard hosts it**, so::

    detections(any layout history) == detections(static layout)

bit for bit — the property the differential harness in
``tests/test_reshard.py`` enforces.  Migration then never splits state:
it moves whole slots, through the same snapshot/restore path checkpoints
use.

The two-phase protocol
----------------------

:func:`execute_migration` runs a :class:`MigrationPlan` at a batch
boundary:

1. **freeze** — flush the overload ladder's rung buffers and drain the
   affected stream prefix (in-process: a full drain; multiprocess: the
   in-band barrier — workers answer the extract message only after
   every queued packet), and spawn any new target shards;
2. **extract** — snapshot the moving slots' detectors and remove them
   from their source shards;
3. the extracted state is sealed into a **versioned, CRC-protected
   migration record** (the checkpoint codec) and decode-verified before
   anything is installed — a corrupt record aborts before touching the
   target;
4. **install** — restore the verified slot states on their targets;
5. **cutover** — atomically swap in the new layout (epoch + 1) so the
   router sends subsequent packets to the new hosts.

Any failure before cutover triggers **rollback**: partially installed
copies are discarded and the extracted states are reinstalled under the
pre-migration layout, so a half-applied plan can never exist.  Failures
retry under a :class:`~repro.service.backoff.BackoffPolicy` up to
``attempts`` times (each attempt starts from the consistent
pre-migration state); a migration that exceeds ``timeout_s`` at a phase
boundary is treated as failed and rolled back.  The terminal failure is
a typed :class:`~repro.service.errors.MigrationError` and the service
records a forensic event in the dead-letter sink.  Worker kills during a
migration (:class:`~repro.service.errors.ShardCrashError`) are *not*
absorbed here — they propagate to the supervisor, whose checkpoint
restore is exact regardless of layout.

The coordinator
---------------

:class:`Coordinator` closes the elasticity loop: it watches per-shard
routed-packet rates (plus queue high-water and degradation level for
reporting) and proposes split plans under sustained skew — and merge
plans once load flattens — with hysteresis (a persistence requirement
before acting plus a cooldown after) so it never flaps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .backoff import DEFAULT_BACKOFF, BackoffPolicy
from .checkpoint import CheckpointError, dumps, loads
from .errors import MigrationError, ShardCrashError

__all__ = [
    "Coordinator",
    "CoordinatorPolicy",
    "MIGRATION_PHASES",
    "MIGRATION_RECORD_FORMAT",
    "MigrationPlan",
    "MigrationReport",
    "ShardLayout",
    "SlotMove",
    "decode_migration_record",
    "encode_migration_record",
    "execute_migration",
]

#: Version of the migration record schema; bump on incompatible change.
MIGRATION_RECORD_FORMAT = 1

#: The two-phase protocol's fault-injectable phase boundaries, in order.
MIGRATION_PHASES = ("freeze", "extract", "install", "cutover")


# -- layout ----------------------------------------------------------------


@dataclass(frozen=True)
class ShardLayout:
    """A versioned assignment of flow slots to hosting shards.

    ``assignment[slot]`` is the shard currently hosting ``slot``;
    ``shards`` is the number of hosting shards the layout spans (a shard
    may own zero slots — a hot spare after a merge); ``epoch`` counts
    committed layout changes, so two engines can tell whose layout is
    newer and reports can show how many cutovers a run survived.
    """

    slots: int
    assignment: Tuple[int, ...]
    shards: int
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError(f"need at least 1 slot, got {self.slots}")
        if self.shards < 1:
            raise ValueError(f"need at least 1 shard, got {self.shards}")
        if len(self.assignment) != self.slots:
            raise ValueError(
                f"assignment has {len(self.assignment)} entries for "
                f"{self.slots} slots"
            )
        for slot, shard in enumerate(self.assignment):
            if not 0 <= shard < self.shards:
                raise ValueError(
                    f"slot {slot} assigned to shard {shard}, outside "
                    f"[0, {self.shards})"
                )
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")

    @classmethod
    def default(cls, slots: int, shards: int) -> "ShardLayout":
        """The round-robin initial layout (``slot % shards``) — the
        identity mapping when ``slots == shards``, which is what makes a
        slot-unaware deployment bit-compatible with the pre-reshard
        engines."""
        return cls(
            slots=slots,
            assignment=tuple(slot % shards for slot in range(slots)),
            shards=shards,
        )

    def shard_of(self, slot: int) -> int:
        return self.assignment[slot]

    def slots_of(self, shard: int) -> List[int]:
        return [
            slot
            for slot, owner in enumerate(self.assignment)
            if owner == shard
        ]

    def counts(self) -> List[int]:
        """Slots hosted per shard."""
        counts = [0] * self.shards
        for owner in self.assignment:
            counts[owner] += 1
        return counts

    @property
    def is_identity(self) -> bool:
        """True for the trivial one-slot-per-shard mapping."""
        return self.slots == self.shards and all(
            slot == owner for slot, owner in enumerate(self.assignment)
        )

    def apply(self, plan: "MigrationPlan") -> "ShardLayout":
        """The layout after ``plan`` commits (epoch + 1)."""
        plan.validate(self)
        assignment = list(self.assignment)
        for move in plan.moves:
            assignment[move.slot] = move.target
        return ShardLayout(
            slots=self.slots,
            assignment=tuple(assignment),
            shards=max(self.shards, plan.target_shards),
            epoch=self.epoch + 1,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "slots": self.slots,
            "assignment": list(self.assignment),
            "shards": self.shards,
            "epoch": self.epoch,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardLayout":
        return cls(
            slots=int(data["slots"]),  # type: ignore[arg-type]
            assignment=tuple(data["assignment"]),  # type: ignore[arg-type]
            shards=int(data["shards"]),  # type: ignore[arg-type]
            epoch=int(data.get("epoch", 0)),  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:
        return (
            f"ShardLayout(slots={self.slots}, shards={self.shards}, "
            f"epoch={self.epoch}, counts={self.counts()})"
        )


# -- plans -----------------------------------------------------------------


@dataclass(frozen=True)
class SlotMove:
    """Move one slot from its current shard to a target shard."""

    slot: int
    source: int
    target: int

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValueError(f"slot must be >= 0, got {self.slot}")
        if self.source < 0 or self.target < 0:
            raise ValueError("source/target shards must be >= 0")
        if self.source == self.target:
            raise ValueError(
                f"slot {self.slot}: source and target are both shard "
                f"{self.source}"
            )


@dataclass(frozen=True)
class MigrationPlan:
    """A set of slot moves executed as one atomic cutover.

    ``target_shards`` is the shard count after the migration (>= the
    current count; new shards are spawned in the freeze phase).  Use the
    constructors — :meth:`move_slots`, :meth:`split`, :meth:`merge` —
    rather than hand-building moves.
    """

    moves: Tuple[SlotMove, ...]
    target_shards: int
    reason: str = ""

    def __post_init__(self) -> None:
        if not self.moves:
            raise ValueError("a migration plan needs at least one move")
        if self.target_shards < 1:
            raise ValueError(
                f"target_shards must be >= 1, got {self.target_shards}"
            )
        seen = set()
        for move in self.moves:
            if move.slot in seen:
                raise ValueError(f"slot {move.slot} moved twice in one plan")
            seen.add(move.slot)
            if move.target >= self.target_shards:
                raise ValueError(
                    f"slot {move.slot} targets shard {move.target}, outside "
                    f"target_shards={self.target_shards}"
                )

    # -- constructors ------------------------------------------------------

    @classmethod
    def move_slots(
        cls,
        layout: ShardLayout,
        slots: Sequence[int],
        target: int,
        reason: str = "",
    ) -> "MigrationPlan":
        """Move the given slots to ``target`` (which may be a brand-new
        shard index == ``layout.shards``)."""
        moves = []
        for slot in slots:
            if not 0 <= slot < layout.slots:
                raise ValueError(
                    f"slot {slot} outside [0, {layout.slots})"
                )
            source = layout.shard_of(slot)
            if source == target:
                continue
            moves.append(SlotMove(slot=slot, source=source, target=target))
        if not moves:
            raise ValueError(
                f"no slot in {list(slots)} actually changes shard "
                f"(all already on {target})"
            )
        return cls(
            moves=tuple(moves),
            target_shards=max(layout.shards, target + 1),
            reason=reason,
        )

    @classmethod
    def split(
        cls,
        layout: ShardLayout,
        shard: int,
        target: Optional[int] = None,
        reason: str = "",
    ) -> "MigrationPlan":
        """Move half of ``shard``'s slots to ``target`` (default: a new
        shard).  Requires the shard to host at least two slots."""
        owned = layout.slots_of(shard)
        if len(owned) < 2:
            raise ValueError(
                f"cannot split shard {shard}: it hosts {len(owned)} slot(s)"
            )
        if target is None:
            target = layout.shards
        moving = owned[len(owned) // 2 :]
        return cls.move_slots(
            layout, moving, target, reason=reason or f"split shard {shard}"
        )

    @classmethod
    def merge(
        cls,
        layout: ShardLayout,
        source: int,
        target: int,
        reason: str = "",
    ) -> "MigrationPlan":
        """Move every slot off ``source`` onto ``target``, leaving
        ``source`` an idle hot spare (shard count is never shrunk — the
        hosting processes stay up and a later split can reuse them)."""
        owned = layout.slots_of(source)
        if not owned:
            raise ValueError(f"shard {source} hosts no slots; nothing to merge")
        return cls.move_slots(
            layout,
            owned,
            target,
            reason=reason or f"merge shard {source} into {target}",
        )

    # -- queries -----------------------------------------------------------

    @property
    def slot_ids(self) -> List[int]:
        return [move.slot for move in self.moves]

    def assignment_after(self) -> Dict[int, int]:
        """Moved slot → target shard."""
        return {move.slot: move.target for move in self.moves}

    def assignment_before(self) -> Dict[int, int]:
        """Moved slot → source shard (the rollback assignment)."""
        return {move.slot: move.source for move in self.moves}

    def source_shards(self) -> List[int]:
        return sorted({move.source for move in self.moves})

    def target_shards_touched(self) -> List[int]:
        return sorted({move.target for move in self.moves})

    def validate(self, layout: ShardLayout) -> None:
        """Check the plan is executable against ``layout`` right now."""
        if self.target_shards < layout.shards:
            raise ValueError(
                f"plan shrinks the fleet ({layout.shards} -> "
                f"{self.target_shards}); merge to a hot spare instead"
            )
        for move in self.moves:
            if not 0 <= move.slot < layout.slots:
                raise ValueError(
                    f"slot {move.slot} outside [0, {layout.slots})"
                )
            actual = layout.shard_of(move.slot)
            if actual != move.source:
                raise ValueError(
                    f"slot {move.slot} is hosted by shard {actual}, not "
                    f"shard {move.source}; the plan is stale"
                )

    def resulting_layout(self, layout: ShardLayout) -> ShardLayout:
        return layout.apply(self)

    def describe(self) -> str:
        moves = ", ".join(
            f"slot {move.slot}: {move.source}->{move.target}"
            for move in self.moves
        )
        label = f" ({self.reason})" if self.reason else ""
        return f"[{moves}] -> {self.target_shards} shards{label}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "moves": [
                {
                    "slot": move.slot,
                    "source": move.source,
                    "target": move.target,
                }
                for move in self.moves
            ],
            "target_shards": self.target_shards,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MigrationPlan":
        return cls(
            moves=tuple(
                SlotMove(
                    slot=int(move["slot"]),  # type: ignore[index]
                    source=int(move["source"]),  # type: ignore[index]
                    target=int(move["target"]),  # type: ignore[index]
                )
                for move in data["moves"]  # type: ignore[union-attr]
            ),
            target_shards=int(data["target_shards"]),  # type: ignore[arg-type]
            reason=str(data.get("reason", "")),
        )


# -- migration records -----------------------------------------------------


def encode_migration_record(
    plan: MigrationPlan,
    layout: ShardLayout,
    seed: int,
    slot_states: Dict[int, Dict[str, object]],
    watcher_states: Optional[Dict[int, Dict[str, object]]] = None,
) -> bytes:
    """Seal extracted slot states into a versioned, CRC-protected record.

    Uses the checkpoint codec (magic + CRC-32 framing), so a record that
    decodes is known-intact — the install phase only ever consumes a
    decode-verified record.  ``watcher_states`` carries the per-slot
    ambiguity-region watcher snapshots for forensics and cross-host
    transfer; in-process and one-tree multiprocess deployments keep the
    watcher stage parent-side, where it never physically moves.
    """
    return dumps(
        {
            "kind": "eardet-migration",
            "format": MIGRATION_RECORD_FORMAT,
            "plan": plan.as_dict(),
            "layout": layout.as_dict(),
            "seed": seed,
            "states": dict(slot_states),
            "watcher": dict(watcher_states) if watcher_states else None,
        }
    )


def decode_migration_record(blob: bytes) -> Dict[str, object]:
    """Decode and validate a migration record (CRC + schema checks)."""
    record = loads(blob)
    if not isinstance(record, dict) or record.get("kind") != "eardet-migration":
        raise CheckpointError("not a migration record")
    fmt = record.get("format")
    if fmt != MIGRATION_RECORD_FORMAT:
        raise CheckpointError(
            f"unsupported migration record format {fmt!r} "
            f"(this build reads format {MIGRATION_RECORD_FORMAT})"
        )
    states = record.get("states")
    if not isinstance(states, dict) or not states:
        raise CheckpointError("migration record carries no slot states")
    return record


# -- the two-phase executor ------------------------------------------------


@dataclass
class MigrationReport:
    """What one :func:`execute_migration` call did."""

    plan: str
    committed: bool
    attempts: int
    phase_reached: str
    rolled_back: bool = False
    from_epoch: int = 0
    to_epoch: int = 0
    from_shards: int = 0
    to_shards: int = 0
    slots_moved: int = 0
    record_bytes: int = 0
    pause_ns: int = 0
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "plan": self.plan,
            "committed": self.committed,
            "attempts": self.attempts,
            "phase_reached": self.phase_reached,
            "rolled_back": self.rolled_back,
            "from_epoch": self.from_epoch,
            "to_epoch": self.to_epoch,
            "from_shards": self.from_shards,
            "to_shards": self.to_shards,
            "slots_moved": self.slots_moved,
            "record_bytes": self.record_bytes,
            "pause_ns": self.pause_ns,
            "error": self.error,
        }


class _InjectedMigrationFailure(Exception):
    """A ``mig:...,mode=fail`` fault fired (transient by construction)."""


class _MigrationTimeout(Exception):
    """The migration exceeded its time budget at a phase boundary."""


def _fault_gate(fault_plan, phase, migration_index, sleep) -> None:
    """Consult the fault plan at a phase boundary (deterministic chaos:
    faults are positional on the migration index, and fire once)."""
    if fault_plan is None:
        return
    take = getattr(fault_plan, "take_migration", None)
    if take is None:
        return
    fault = take(phase, migration_index)
    if fault is None:
        return
    if fault.mode == "stall":
        sleep(fault.duration_s)
        return
    if fault.mode == "kill":
        raise ShardCrashError(
            f"injected kill during migration {migration_index} at the "
            f"{phase} boundary",
            shard=None,
        )
    raise _InjectedMigrationFailure(
        f"injected failure during migration {migration_index} at the "
        f"{phase} boundary"
    )


def execute_migration(
    engine,
    plan: MigrationPlan,
    attempts: int = 3,
    backoff: Optional[BackoffPolicy] = None,
    timeout_s: Optional[float] = 30.0,
    fault_plan=None,
    migration_index: int = 1,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> MigrationReport:
    """Run ``plan`` against ``engine`` under the two-phase protocol.

    Call at a batch boundary (nothing mid-ingest).  On success the
    engine's layout is the plan's resulting layout (epoch + 1) and the
    report carries the measured pause.  On terminal failure the engine
    is back on the pre-migration layout (every attempt rolls back before
    retrying) and a :class:`~repro.service.errors.MigrationError` is
    raised; worker crashes (:class:`ShardCrashError`, including injected
    ``mode=kill`` faults) propagate un-rolled-back for the supervisor's
    checkpoint restore, which is exact regardless of layout.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if backoff is None:
        backoff = DEFAULT_BACKOFF
    old_layout: ShardLayout = engine.layout
    plan.validate(old_layout)
    new_layout = plan.resulting_layout(old_layout)
    report = MigrationReport(
        plan=plan.describe(),
        committed=False,
        attempts=0,
        phase_reached="freeze",
        from_epoch=old_layout.epoch,
        to_epoch=old_layout.epoch,
        from_shards=old_layout.shards,
        to_shards=old_layout.shards,
        slots_moved=0,
    )
    last_error: Optional[BaseException] = None
    for attempt in range(attempts):
        report.attempts = attempt + 1
        started = clock()
        deadline = None if timeout_s is None else started + timeout_s
        extracted: Dict[int, Dict[str, object]] = {}
        phase = "freeze"
        started_ns = time.monotonic_ns()
        try:
            _fault_gate(fault_plan, "freeze", migration_index, sleep)
            engine.prepare_migration(plan)
            _check_deadline(clock, deadline, "freeze")

            phase = report.phase_reached = "extract"
            _fault_gate(fault_plan, "extract", migration_index, sleep)
            extracted = engine.extract_slots(plan.slot_ids)
            _check_deadline(clock, deadline, "extract")
            watcher_states = _watcher_states(engine, plan.slot_ids)
            record = encode_migration_record(
                plan, old_layout, engine.seed, extracted, watcher_states
            )
            report.record_bytes = len(record)
            # Decode-verify (CRC + schema) before touching the target:
            # only a provably intact record is ever installed.
            decoded = decode_migration_record(record)

            phase = report.phase_reached = "install"
            _fault_gate(fault_plan, "install", migration_index, sleep)
            engine.install_slots(
                decoded["states"], plan.assignment_after()
            )
            _check_deadline(clock, deadline, "install")

            phase = report.phase_reached = "cutover"
            _fault_gate(fault_plan, "cutover", migration_index, sleep)
            engine.commit_layout(new_layout)

            report.committed = True
            report.rolled_back = False
            report.to_epoch = new_layout.epoch
            report.to_shards = new_layout.shards
            report.slots_moved = len(plan.moves)
            report.pause_ns = time.monotonic_ns() - started_ns
            return report
        except ShardCrashError:
            # A worker died mid-migration (real or injected kill): the
            # supervisor owns recovery — its checkpoint restore is exact
            # under any layout, so no rollback is attempted here.
            raise
        except KeyboardInterrupt:
            raise
        except Exception as error:
            last_error = error
            try:
                _rollback(engine, plan, extracted)
                report.rolled_back = True
            except Exception as rollback_error:
                raise MigrationError(
                    f"migration failed in the {phase} phase AND rollback "
                    f"failed ({rollback_error}); layout is suspect — "
                    "restore from checkpoint",
                    phase=phase,
                    plan=plan.describe(),
                    rolled_back=False,
                    attempts=attempt + 1,
                ) from error
            if attempt + 1 < attempts:
                sleep(backoff.delay_s(attempt))
                continue
    report.error = str(last_error)
    raise MigrationError(
        f"migration failed after {attempts} attempt(s) in the "
        f"{report.phase_reached} phase ({last_error}); rolled back to the "
        f"pre-migration layout (epoch {old_layout.epoch})",
        phase=report.phase_reached,
        plan=plan.describe(),
        rolled_back=True,
        attempts=attempts,
    ) from last_error


def _check_deadline(clock, deadline, phase) -> None:
    if deadline is not None and clock() > deadline:
        raise _MigrationTimeout(
            f"migration exceeded its time budget at the {phase} boundary"
        )


def _watcher_states(engine, slot_ids) -> Optional[Dict[int, Dict[str, object]]]:
    """Per-slot watcher snapshots for the migration record (forensics /
    cross-host transfer; the stage itself is slot-keyed at the router
    and does not physically move within one process tree)."""
    stage = getattr(engine, "watcher", None)
    if stage is None:
        return None
    states = {}
    for slot in slot_ids:
        try:
            states[slot] = stage.watcher(slot).snapshot()
        except Exception:  # pragma: no cover - forensics are best-effort
            continue
    return states or None


def _rollback(engine, plan, extracted) -> None:
    """Return the engine to the pre-migration layout: discard any
    partially installed copies on the targets, reinstall the extracted
    states on their sources.  The layout was never swapped, so routing
    is already correct once the states are back."""
    abort = getattr(engine, "abort_migration", None)
    if abort is not None:
        abort(plan, extracted)
        return
    if extracted:  # pragma: no cover - every engine has abort_migration
        engine.install_slots(extracted, plan.assignment_before())


# -- the elasticity coordinator --------------------------------------------


@dataclass(frozen=True)
class CoordinatorPolicy:
    """When the coordinator may act, and how hard it hesitates.

    Skew is ``max(shard rate) / mean(shard rate)`` over the observation
    window, computed across shards that host at least one slot.  A split
    of the hottest shard is proposed once skew stays at or above
    ``skew_high`` for ``persistence`` consecutive windows; a merge of
    the coldest shard once skew stays at or below ``skew_low`` that
    long.  After any migration the coordinator sleeps for ``cooldown``
    windows, and windows smaller than ``min_window_packets`` accumulate
    instead of being judged — together these are the hysteresis that
    keeps it from flapping.  ``skew_low < skew_high`` is enforced so
    the split and merge bands can never overlap.
    """

    skew_high: float = 2.0
    skew_low: float = 1.25
    persistence: int = 3
    cooldown: int = 10
    min_window_packets: int = 2048
    max_shards: int = 8
    min_shards: int = 1
    merge_enabled: bool = True
    attempts: int = 3
    timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.skew_high <= 1.0:
            raise ValueError(f"skew_high must be > 1, got {self.skew_high}")
        if not 1.0 <= self.skew_low < self.skew_high:
            raise ValueError(
                f"skew_low must be in [1, skew_high), got {self.skew_low}"
            )
        if self.persistence < 1:
            raise ValueError(
                f"persistence must be >= 1, got {self.persistence}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.min_window_packets < 1:
            raise ValueError(
                f"min_window_packets must be >= 1, got "
                f"{self.min_window_packets}"
            )
        if self.max_shards < 1:
            raise ValueError(f"max_shards must be >= 1, got {self.max_shards}")
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError(
                f"min_shards must be in [1, max_shards], got {self.min_shards}"
            )
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "skew_high": self.skew_high,
            "skew_low": self.skew_low,
            "persistence": self.persistence,
            "cooldown": self.cooldown,
            "min_window_packets": self.min_window_packets,
            "max_shards": self.max_shards,
            "min_shards": self.min_shards,
            "merge_enabled": self.merge_enabled,
            "attempts": self.attempts,
            "timeout_s": self.timeout_s,
        }


#: Bound on retained coordinator decisions (reports stay small).
MAX_DECISIONS = 64


class Coordinator:
    """Skew watcher proposing migration plans with hysteresis.

    Call :meth:`observe` once per ingested batch (the service does);
    it returns a :class:`MigrationPlan` when action is due, else None.
    The coordinator never executes plans itself — the service runs them
    through :func:`execute_migration` so manual and automatic migrations
    share one code path (and one fault-injection surface).
    """

    def __init__(self, policy: CoordinatorPolicy):
        self.policy = policy
        self._last_routed: List[int] = []
        self._window_base: List[int] = []
        self._hot_streak = 0
        self._cold_streak = 0
        self._cooldown = 0
        self.windows = 0
        self.proposals = 0
        self.decisions: List[Dict[str, object]] = []

    def note_result(self, committed: bool) -> None:
        """Tell the coordinator how its last proposal went (both
        outcomes re-arm the cooldown: a rolled-back migration should not
        be immediately retried into the same failure)."""
        self._cooldown = self.policy.cooldown
        self._hot_streak = 0
        self._cold_streak = 0
        if self.decisions:
            self.decisions[-1]["committed"] = committed

    def observe(self, engine) -> Optional[MigrationPlan]:
        """Update skew streaks from the engine's per-shard routed
        counters; return a plan when hysteresis says act."""
        policy = self.policy
        routed: List[int] = list(engine.routed)
        if len(self._last_routed) < len(routed):
            # New shards appear with zero history.
            self._last_routed += [0] * (len(routed) - len(self._last_routed))
        if len(self._window_base) < len(routed):
            self._window_base += [0] * (len(routed) - len(self._window_base))
        deltas = [
            now - base for now, base in zip(routed, self._window_base)
        ]
        total = sum(deltas)
        if total < policy.min_window_packets:
            # Window too small to judge: keep accumulating.
            self._last_routed = routed
            return None
        self._window_base = list(routed)
        self._last_routed = routed
        self.windows += 1
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        layout: ShardLayout = engine.layout
        eligible = [
            (shard, deltas[shard])
            for shard in range(min(len(deltas), layout.shards))
            if layout.slots_of(shard)
        ]
        if len(eligible) < 1:
            return None
        rates = [rate for _, rate in eligible]
        mean = sum(rates) / len(rates)
        if mean <= 0:
            return None
        skew = max(rates) / mean
        if skew >= policy.skew_high and len(eligible) >= 1:
            self._cold_streak = 0
            self._hot_streak += 1
            if self._hot_streak >= policy.persistence:
                plan = self._propose_split(layout, eligible, skew)
                if plan is not None:
                    return plan
        elif (
            policy.merge_enabled
            and skew <= policy.skew_low
            and len(eligible) > policy.min_shards
        ):
            self._hot_streak = 0
            self._cold_streak += 1
            if self._cold_streak >= policy.persistence:
                plan = self._propose_merge(layout, eligible, skew)
                if plan is not None:
                    return plan
        else:
            self._hot_streak = 0
            self._cold_streak = 0
        return None

    def _propose_split(
        self, layout: ShardLayout, eligible, skew: float
    ) -> Optional[MigrationPlan]:
        hot = max(eligible, key=lambda item: item[1])[0]
        if len(layout.slots_of(hot)) < 2:
            # One slot cannot be split exactly (state is not separable);
            # the overload ladder remains the only relief.
            return None
        if layout.shards < self.policy.max_shards:
            target = layout.shards  # spawn a new shard
        else:
            spares = [
                shard
                for shard in range(layout.shards)
                if not layout.slots_of(shard)
            ]
            if spares:
                target = spares[0]
            else:
                cold = min(eligible, key=lambda item: item[1])[0]
                if cold == hot:
                    return None
                target = cold
        plan = MigrationPlan.split(
            layout,
            hot,
            target=target,
            reason=f"skew {skew:.2f} >= {self.policy.skew_high} "
            f"for {self._hot_streak} windows",
        )
        self._record(plan, "split", skew)
        return plan

    def _propose_merge(
        self, layout: ShardLayout, eligible, skew: float
    ) -> Optional[MigrationPlan]:
        ordered = sorted(eligible, key=lambda item: item[1])
        cold = ordered[0][0]
        if len(ordered) < 2:
            return None
        target = ordered[1][0]
        plan = MigrationPlan.merge(
            layout,
            cold,
            target,
            reason=f"skew {skew:.2f} <= {self.policy.skew_low} "
            f"for {self._cold_streak} windows",
        )
        self._record(plan, "merge", skew)
        return plan

    def _record(self, plan: MigrationPlan, action: str, skew: float) -> None:
        self.proposals += 1
        self.decisions.append(
            {
                "action": action,
                "skew": skew,
                "plan": plan.describe(),
                "window": self.windows,
            }
        )
        if len(self.decisions) > MAX_DECISIONS:
            del self.decisions[: len(self.decisions) - MAX_DECISIONS]

    def report(self) -> Dict[str, object]:
        return {
            "policy": self.policy.as_dict(),
            "windows": self.windows,
            "proposals": self.proposals,
            "cooldown_remaining": self._cooldown,
            "hot_streak": self._hot_streak,
            "cold_streak": self._cold_streak,
            "decisions": list(self.decisions),
        }

    def __repr__(self) -> str:
        return (
            f"Coordinator(windows={self.windows}, "
            f"proposals={self.proposals}, cooldown={self._cooldown})"
        )
