"""Admission control and the accounted degradation ladder.

The service's bounded queues protect memory, but before this module the
only response to a full queue was to block (in-process) or drop
(multiprocess dead-letter path) — the second silently voids EARDet's
no-FN/no-FP guarantees, the exact failure mode the large-flow-detection
literature warns about when a detector is run past its resource
envelope.  This module replaces "fail open" with a typed, *accounted*
degradation ladder driven by an admission controller with hysteresis
watermarks over queue occupancy:

``EXACT``
    Normal operation.  Every packet is enqueued as-is; all guarantees
    hold.

``DEFERRED``
    Deadline-aware batch coalescing.  Packets are buffered per shard and
    released as one burst when the buffer fills or a batch deadline
    expires.  Nothing is merged or re-stamped, so the detector still
    sees the identical packet sequence — this rung is **still exact**,
    it only trades latency for queue headroom.

``AGGREGATED``
    Packets are merged into per-flow byte aggregates within a bounded
    time epoch.  Byte counters stay integer-exact, but every aggregate
    is re-stamped at its epoch's flush time, so timestamps coarsen by at
    most the epoch span.  That widens the ambiguity region by a
    *computed* bound (``max_widening_ns``; see ``docs/OVERLOAD.md``) —
    degraded, but quantified.

``SHEDDING``
    Accounted drops.  Packets are counted (packets and bytes) and
    discarded; the first shed timestamp voids the exactness envelope
    exactly the way a queue-overflow loss already does.

Every packet offered to an overloaded shard lands in exactly one rung of
the :class:`DegradationAccount`, so the integer identity::

    exact_bytes + deferred_bytes + aggregated_bytes + shed_bytes == offered_bytes

holds at all times — overload never loses *accounting*, only (at the
last rung, and visibly) packets.

The controller moves at most one rung per observation and applies a
cooldown before de-escalating, so the ladder cannot flap
EXACT↔DEFERRED within a single batch (property-tested in
``tests/test_overload.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Callable, Dict, Generic, List, Optional, Tuple, TypeVar

from ..model.packet import FlowId

__all__ = [
    "DegradationLevel",
    "OverloadPolicy",
    "AdmissionController",
    "DegradationAccount",
    "ShardOverload",
    "build_overload_report",
]


class DegradationLevel(IntEnum):
    """The degradation ladder, ordered from fully exact to lossy."""

    EXACT = 0
    DEFERRED = 1
    AGGREGATED = 2
    SHEDDING = 3

    @property
    def label(self) -> str:
        """Lower-case name for reports and metrics."""
        return self.name.lower()


#: The ladder in escalation order.
LADDER: Tuple[DegradationLevel, ...] = tuple(DegradationLevel)


@dataclass(frozen=True)
class OverloadPolicy:
    """Tunable knobs of the admission controller and ladder rungs.

    Watermarks are queue-occupancy fractions in ``[0, 1]``: the
    controller escalates one rung when occupancy reaches
    ``high_watermark`` and de-escalates one rung when it falls to
    ``low_watermark`` *and* the cooldown since the last transition has
    elapsed.  The gap between the watermarks plus the cooldown is the
    hysteresis that keeps the ladder from flapping.
    """

    #: Escalate when queue occupancy >= this fraction.
    high_watermark: float = 0.75
    #: De-escalate when queue occupancy <= this fraction.
    low_watermark: float = 0.25
    #: Observations (batches) that must pass after any transition before
    #: a de-escalation is allowed.
    cooldown: int = 4
    #: DEFERRED: release the coalescing buffer at this many packets.
    defer_max_packets: int = 1024
    #: DEFERRED: release the coalescing buffer after this many batches
    #: even if not full (the deadline).
    defer_deadline_batches: int = 4
    #: AGGREGATED: flush all per-flow aggregates once the current epoch
    #: spans this many nanoseconds.
    aggregate_window_ns: int = 10_000_000
    #: AGGREGATED: flush early if this many distinct flows accumulate
    #: (bounds aggregation memory under flow churn).
    aggregate_max_flows: int = 4096
    #: Per-shard packets drained from the queue per service batch when
    #: the policy is armed on the in-process engine (models worker
    #: capacity; ``None`` = drain fully, i.e. capacity is unbounded).
    drain_budget: Optional[int] = None
    #: Multiprocess producer bound: raise ``OverloadError`` when a shard
    #: queue stays full this long (``None`` keeps the historical
    #: block-until-space behaviour).
    put_timeout_s: Optional[float] = None
    #: Highest rung the controller may reach (clamp to ``AGGREGATED`` to
    #: forbid shedding outright, at the price of blocking).
    max_level: DegradationLevel = DegradationLevel.SHEDDING

    def __post_init__(self) -> None:
        if not 0.0 < self.high_watermark <= 1.0:
            raise ValueError(
                f"high_watermark must be in (0, 1], got {self.high_watermark}"
            )
        if not 0.0 <= self.low_watermark < self.high_watermark:
            raise ValueError(
                "low_watermark must satisfy 0 <= low < high, got "
                f"low={self.low_watermark} high={self.high_watermark}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.defer_max_packets < 1:
            raise ValueError(
                f"defer_max_packets must be >= 1, got {self.defer_max_packets}"
            )
        if self.defer_deadline_batches < 1:
            raise ValueError(
                "defer_deadline_batches must be >= 1, got "
                f"{self.defer_deadline_batches}"
            )
        if self.aggregate_window_ns < 1:
            raise ValueError(
                f"aggregate_window_ns must be >= 1, got {self.aggregate_window_ns}"
            )
        if self.aggregate_max_flows < 1:
            raise ValueError(
                f"aggregate_max_flows must be >= 1, got {self.aggregate_max_flows}"
            )
        if self.drain_budget is not None and self.drain_budget < 1:
            raise ValueError(
                f"drain_budget must be >= 1 or None, got {self.drain_budget}"
            )
        if self.put_timeout_s is not None and self.put_timeout_s <= 0:
            raise ValueError(
                f"put_timeout_s must be > 0 or None, got {self.put_timeout_s}"
            )


class AdmissionController:
    """Hysteresis state machine stepping a shard through the ladder.

    ``observe`` is called once per ingest batch with the shard's current
    queue depth and capacity; it moves the level **at most one rung**
    and returns the level in force for that batch.  De-escalation
    additionally requires ``policy.cooldown`` observations to have
    passed since the last transition, so recovery is deliberate while
    escalation stays immediate (safety favours backing off fast and
    recovering slowly).
    """

    #: Transition-log entries kept (oldest evicted first).
    LOG_LIMIT = 64

    def __init__(self, policy: OverloadPolicy):
        self.policy = policy
        self.level = DegradationLevel.EXACT
        self.observations = 0
        self.transitions = 0
        self._cooldown_left = 0
        #: Recent transitions as ``(observation_index, from, to)``.
        self.transition_log: List[Tuple[int, DegradationLevel, DegradationLevel]] = []

    def observe(self, depth: int, capacity: int) -> DegradationLevel:
        """Feed one occupancy sample; returns the (possibly new) level."""
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        self.observations += 1
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
        occupancy = depth / capacity
        policy = self.policy
        if occupancy >= policy.high_watermark and self.level < policy.max_level:
            self._transition(DegradationLevel(self.level + 1))
        elif (
            occupancy <= policy.low_watermark
            and self.level > DegradationLevel.EXACT
            and self._cooldown_left == 0
        ):
            self._transition(DegradationLevel(self.level - 1))
        return self.level

    def _transition(self, to: DegradationLevel) -> None:
        self.transition_log.append((self.observations, self.level, to))
        if len(self.transition_log) > self.LOG_LIMIT:
            del self.transition_log[0]
        self.level = to
        self.transitions += 1
        self._cooldown_left = self.policy.cooldown

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        return {
            "level": int(self.level),
            "observations": self.observations,
            "transitions": self.transitions,
            "cooldown_left": self._cooldown_left,
        }

    def restore(self, state: Dict[str, int]) -> None:
        self.level = DegradationLevel(state["level"])
        self.observations = state["observations"]
        self.transitions = state["transitions"]
        self._cooldown_left = state["cooldown_left"]


class DegradationAccount:
    """Integer-exact account of where every offered byte went.

    Each packet offered while a policy is armed is attributed to exactly
    one rung at admission time, so
    ``exact + deferred + aggregated + shed == offered`` holds for both
    packet and byte totals at every instant.
    """

    __slots__ = (
        "exact_packets",
        "exact_bytes",
        "deferred_packets",
        "deferred_bytes",
        "aggregated_packets",
        "aggregated_bytes",
        "shed_packets",
        "shed_bytes",
        "first_shed_ts",
        "max_widening_ns",
    )

    _FIELDS = __slots__

    def __init__(self) -> None:
        self.exact_packets = 0
        self.exact_bytes = 0
        self.deferred_packets = 0
        self.deferred_bytes = 0
        self.aggregated_packets = 0
        self.aggregated_bytes = 0
        self.shed_packets = 0
        self.shed_bytes = 0
        #: Timestamp (ns) of the first shed packet; voids the envelope.
        self.first_shed_ts: Optional[int] = None
        #: Largest re-stamp distance any aggregated packet suffered —
        #: the computed ambiguity-region widening bound (ns).
        self.max_widening_ns = 0

    def admit(self, level: DegradationLevel, size: int, time_ns: int) -> None:
        """Attribute one offered packet to ``level``."""
        if level is DegradationLevel.EXACT:
            self.exact_packets += 1
            self.exact_bytes += size
        elif level is DegradationLevel.DEFERRED:
            self.deferred_packets += 1
            self.deferred_bytes += size
        elif level is DegradationLevel.AGGREGATED:
            self.aggregated_packets += 1
            self.aggregated_bytes += size
        else:
            self.shed_packets += 1
            self.shed_bytes += size
            if self.first_shed_ts is None:
                self.first_shed_ts = time_ns

    def note_widening(self, widening_ns: int) -> None:
        if widening_ns > self.max_widening_ns:
            self.max_widening_ns = widening_ns

    @property
    def offered_packets(self) -> int:
        return (
            self.exact_packets
            + self.deferred_packets
            + self.aggregated_packets
            + self.shed_packets
        )

    @property
    def offered_bytes(self) -> int:
        return (
            self.exact_bytes
            + self.deferred_bytes
            + self.aggregated_bytes
            + self.shed_bytes
        )

    def merge(self, other: "DegradationAccount") -> None:
        """Fold another shard's account into this one (for service-level
        totals); first-shed keeps the earliest, widening the largest."""
        for name in self._FIELDS:
            if name in ("first_shed_ts", "max_widening_ns"):
                continue
            setattr(self, name, getattr(self, name) + getattr(other, name))
        if other.first_shed_ts is not None and (
            self.first_shed_ts is None or other.first_shed_ts < self.first_shed_ts
        ):
            self.first_shed_ts = other.first_shed_ts
        self.note_widening(other.max_widening_ns)

    # -- checkpointing -----------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        state: Dict[str, object] = {
            name: getattr(self, name) for name in self._FIELDS
        }
        return state

    def restore(self, state: Dict[str, object]) -> None:
        for name, value in state.items():
            if name not in self._FIELDS:
                raise ValueError(f"unknown account field {name!r}")
            setattr(self, name, value)


ItemT = TypeVar("ItemT")

#: ``make_item(time_ns, size, fid) -> item`` — how a rung re-materializes
#: a coalesced arrival in the engine's native packet representation
#: (``Packet`` in-process, wire tuple for the multiprocess engine).
ItemFactory = Callable[[int, int, FlowId], ItemT]


class ShardOverload(Generic[ItemT]):
    """Per-shard ladder state: controller, account and rung buffers.

    The engine drives it with three calls:

    - :meth:`observe` once per ingest batch (before admitting packets);
      any items it returns were pending in a rung buffer that the new
      level no longer uses and **must be enqueued first**.
    - :meth:`admit` per packet; the returned items (possibly none, for a
      buffered packet; possibly many, for a buffer release) are what the
      engine actually enqueues.  ``None`` means the packet was shed.
    - :meth:`on_batch_end` after the batch; returned items are
      deadline-expired deferred packets to enqueue.

    :meth:`flush` releases everything pending (drain/snapshot/stop), so
    a graceful shutdown never strands buffered packets.

    All emissions preserve the monotone-feed property the detector
    relies on: deferred packets are released unmodified and in order;
    aggregates are stamped at the epoch's flush time, which is never
    earlier than any packet already emitted.
    """

    def __init__(
        self,
        policy: OverloadPolicy,
        make_item: ItemFactory[ItemT],
    ):
        self.policy = policy
        self.controller = AdmissionController(policy)
        self.account = DegradationAccount()
        self._make_item = make_item
        # DEFERRED: coalescing buffer and its age in batches.
        self._defer: List[ItemT] = []
        self._defer_age = 0
        # AGGREGATED: fid -> [bytes, first_ts, packets]; epoch start ts.
        self._aggregates: Dict[FlowId, List[int]] = {}
        self._epoch_start: Optional[int] = None
        self._last_time = 0
        # High-water telemetry (bounded-memory evidence for the soak).
        self.defer_high_water = 0
        self.aggregate_flows_high_water = 0

    @property
    def level(self) -> DegradationLevel:
        return self.controller.level

    @property
    def pending(self) -> int:
        """Packets currently held in rung buffers (not yet enqueued)."""
        return len(self._defer) + sum(
            entry[2] for entry in self._aggregates.values()
        )

    # -- the three engine hooks -------------------------------------------

    def observe(self, depth: int, capacity: int) -> List[ItemT]:
        """Feed one occupancy sample; flush buffers a level change
        orphans.  Returns items the engine must enqueue immediately."""
        before = self.controller.level
        after = self.controller.observe(depth, capacity)
        if after is before:
            return []
        released: List[ItemT] = []
        if before is DegradationLevel.DEFERRED and self._defer:
            released.extend(self._release_defer())
        if before is DegradationLevel.AGGREGATED and self._aggregates:
            released.extend(self._flush_aggregates(self._last_time))
        return released

    def admit(
        self, time_ns: int, size: int, fid: FlowId, item: ItemT
    ) -> Optional[List[ItemT]]:
        """Admit one packet at the current level.

        Returns the items to enqueue now (possibly empty while a buffer
        fills), or ``None`` when the packet was shed.
        """
        level = self.controller.level
        self.account.admit(level, size, time_ns)
        self._last_time = time_ns
        if level is DegradationLevel.EXACT:
            return [item]
        if level is DegradationLevel.DEFERRED:
            self._defer.append(item)
            if len(self._defer) > self.defer_high_water:
                self.defer_high_water = len(self._defer)
            if len(self._defer) >= self.policy.defer_max_packets:
                return self._release_defer()
            return []
        if level is DegradationLevel.AGGREGATED:
            return self._aggregate(time_ns, size, fid)
        return None

    def on_batch_end(self) -> List[ItemT]:
        """Advance the deferred deadline clock; returns expired items."""
        if not self._defer:
            self._defer_age = 0
            return []
        self._defer_age += 1
        if self._defer_age >= self.policy.defer_deadline_batches:
            return self._release_defer()
        return []

    def flush(self) -> List[ItemT]:
        """Release everything pending (drain, snapshot, stop)."""
        released = self._release_defer()
        released.extend(self._flush_aggregates(self._last_time))
        return released

    # -- rung internals ----------------------------------------------------

    def _release_defer(self) -> List[ItemT]:
        released = self._defer
        self._defer = []
        self._defer_age = 0
        return released

    def _aggregate(self, time_ns: int, size: int, fid: FlowId) -> List[ItemT]:
        if self._epoch_start is None:
            self._epoch_start = time_ns
        entry = self._aggregates.get(fid)
        if entry is None:
            self._aggregates[fid] = [size, time_ns, 1]
            if len(self._aggregates) > self.aggregate_flows_high_water:
                self.aggregate_flows_high_water = len(self._aggregates)
        else:
            entry[0] += size
            entry[2] += 1
        if (
            time_ns - self._epoch_start >= self.policy.aggregate_window_ns
            or len(self._aggregates) >= self.policy.aggregate_max_flows
        ):
            return self._flush_aggregates(time_ns)
        return []

    def _flush_aggregates(self, flush_ts: int) -> List[ItemT]:
        if not self._aggregates:
            return []
        released: List[ItemT] = []
        for fid, (total, first_ts, _count) in self._aggregates.items():
            self.account.note_widening(flush_ts - first_ts)
            released.append(self._make_item(flush_ts, total, fid))
        self._aggregates = {}
        self._epoch_start = None
        return released

    # -- reporting / checkpointing ----------------------------------------

    def report(self) -> Dict[str, object]:
        """Plain-data summary for ``ServiceReport`` and telemetry."""
        return {
            "level": self.level.label,
            "transitions": self.controller.transitions,
            "account": self.account.as_dict(),
            "pending": self.pending,
            "defer_high_water": self.defer_high_water,
            "aggregate_flows_high_water": self.aggregate_flows_high_water,
        }

    def snapshot(self) -> Dict[str, object]:
        """Checkpointable state.  Rung buffers must be empty — the
        engine flushes before snapshotting (enforced here)."""
        if self.pending:
            raise RuntimeError(
                f"cannot snapshot with {self.pending} packets pending in "
                "rung buffers; flush first"
            )
        return {
            "controller": self.controller.snapshot(),
            "account": self.account.as_dict(),
            "defer_high_water": self.defer_high_water,
            "aggregate_flows_high_water": self.aggregate_flows_high_water,
            "last_time": self._last_time,
        }

    def restore(self, state: Dict[str, object]) -> None:
        self.controller.restore(state["controller"])  # type: ignore[arg-type]
        self.account.restore(state["account"])  # type: ignore[arg-type]
        self.defer_high_water = state["defer_high_water"]  # type: ignore[assignment]
        self.aggregate_flows_high_water = state[  # type: ignore[assignment]
            "aggregate_flows_high_water"
        ]
        self._last_time = state["last_time"]  # type: ignore[assignment]


def build_overload_report(
    states: List["ShardOverload[ItemT]"], rho: int
) -> Dict[str, object]:
    """Service-level overload summary shared by both engines.

    Merges the per-shard degradation accounts (the integer identity
    ``exact + deferred + aggregated + shed == offered`` holds by
    construction) and converts the maximum re-stamp distance into the
    ambiguity-widening byte bound: over any window, aggregation can
    shift at most ``rho * max_widening_ns / 1e9`` bytes of a flow's
    measured traffic across the window edge (ceiling division keeps the
    bound conservative).
    """
    from ..model.units import NS_PER_S

    total = DegradationAccount()
    for state in states:
        total.merge(state.account)
    widening_ns = total.max_widening_ns
    return {
        "policy": "ladder",
        "shards": [state.report() for state in states],
        "account": total.as_dict(),
        "max_widening_ns": widening_ns,
        "widening_bytes": -(-rho * widening_ns // NS_PER_S),
        "transitions": sum(s.controller.transitions for s in states),
    }
