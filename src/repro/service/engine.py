"""In-process sharded detection engine with bounded queues.

The engine consistently hashes every flow onto one of ``slots`` EARDet
workers — the same construction (and therefore the same guarantee
argument) as :class:`~repro.core.parallel.ParallelEARDet`: each slot sees
a sub-stream of the link whose volume over any window is still bounded by
``rho * t``, and all of a flow's packets land on the same slot, so the
per-slot no-FNl / no-FPs guarantees carry over verbatim to the ensemble.

Slots vs shards
---------------

Detection state lives per **slot** (``fid → slot`` through the seeded
stage hash); runtime resources — queues, overload ladders, loss
accounting — live per **shard**; a versioned
:class:`~repro.service.reshard.ShardLayout` maps slots onto shards.  By
default ``slots == shards`` with the identity mapping, which is exactly
the pre-reshard engine.  The split is what makes *exact live
resharding* possible: EARDet's counter store couples all of a shard's
flows (min-eviction), so per-flow state cannot be divided — but a whole
slot's detector can move between shards through the snapshot/restore
path, and because each slot always sees its full hash sub-stream in
arrival order, detections are bit-identical under any layout history.

What the engine adds over ``ParallelEARDet`` is the *runtime* layer:

- **bounded per-shard queues** — ingestion enqueues, workers drain;
  memory is capped at ``shards * queue_capacity`` packets regardless of
  how oversubscribed the source is;
- **explicit backpressure** — the default ``overflow="block"`` policy
  drains a full queue before accepting more (the pull-based source simply
  isn't pulled from in the meantime); ``overflow="drop"`` instead sheds
  load with exact per-shard drop accounting (a lossy mode for
  monitor-only deployments — dropped packets void the exactness
  guarantee and are reported, never silent);
- **exact snapshots at packet boundaries** — :meth:`snapshot` drains all
  queues first, so the captured state corresponds to exactly the packets
  ingested so far (see :mod:`repro.service.checkpoint`);
- **live migration primitives** — :meth:`prepare_migration`,
  :meth:`extract_slots`, :meth:`install_slots`, :meth:`commit_layout`
  and :meth:`abort_migration`, driven by
  :func:`repro.service.reshard.execute_migration`;
- **per-shard health** for live reporting.

This engine runs everything on the calling thread, which makes it fully
deterministic — the reference implementation the multiprocessing engine
(:mod:`repro.service.workers`) and the multi-host TCP engine
(:mod:`repro.service.remote`) are both tested against: all three share
this interface and snapshot schema, and the differential chaos gates
assert their detections are bit-identical wherever the exactness
envelope says EXACT.
"""

from __future__ import annotations

import time as _time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..core.blacklist import ReportSink
from ..core.config import EARDetConfig
from ..core.counters import CounterStore, HeapCounterStore
from ..core.eardet import EARDet, reconfigure_state
from ..detectors.hashing import StageHash
from ..model.packet import FlowId, Packet
from .errors import ShardCrashError
from .health import DeadLetterSink, ExactnessEnvelope, ShardHealth
from .overload import DegradationLevel, OverloadPolicy, ShardOverload
from .reshard import MigrationPlan, ShardLayout

#: Default bound on each shard's pending-packet queue.
DEFAULT_QUEUE_CAPACITY = 4096

#: Queue-overflow policies.
OVERFLOW_POLICIES = ("block", "drop")

#: Engine snapshot schema version (shared with the multiprocess engine).
#: Stays at 1 across the slot refactor: the ``shards`` list is now
#: slot-indexed and ``slots``/``layout`` ride as optional keys, which a
#: default deployment (slots == shards, identity layout) writes
#: bit-compatibly with the pre-reshard schema.
ENGINE_SNAPSHOT_FORMAT = 1


class FlowRouter:
    """Memoized flow-to-slot routing.

    A splitmix64 round in pure Python costs ~1.6us; a dict hit ~50ns.
    Real traffic repeats flow IDs heavily, so both engines route through
    this cache — on the multiprocess engine the routing loop is the
    producer's main per-packet cost, and this is what lets shard workers
    outrun the single routing thread.  The cache is cleared when it
    reaches ``limit`` distinct flows to keep memory bounded under
    adversarial flow churn (routing stays correct either way: the hash is
    pure).  The cached value is the *slot*, which never changes for a
    flow — resharding swaps the slot→shard assignment, not this map.
    """

    __slots__ = ("_hash", "_cache", "_limit")

    def __init__(self, stage_hash: StageHash, limit: int = 1 << 20):
        self._hash = stage_hash
        self._cache: Dict[FlowId, int] = {}
        self._limit = limit

    def __call__(self, fid: FlowId) -> int:
        index = self._cache.get(fid)
        if index is None:
            if len(self._cache) >= self._limit:
                self._cache.clear()
            index = self._cache[fid] = self._hash(fid)
        return index


class InProcessEngine:
    """Sharded EARDet with bounded ingestion queues, single-threaded.

    Parameters
    ----------
    config:
        Configuration applied to every slot detector (with the full link
        capacity ``rho``; see the module docstring).
    shards:
        Number of hosting shards (queues, ladders, loss accounting).
    seed:
        Seed of the flow-to-slot hash; must match between a snapshot and
        the engine restoring it.
    queue_capacity:
        Maximum pending packets per shard.
    overflow:
        ``"block"`` (drain before accepting more; exact) or ``"drop"``
        (shed load, counted per shard; lossy).
    store_factory:
        Counter-store implementation for each slot detector.
    fault_plan:
        Optional :class:`~repro.service.faults.FaultPlan` consulted on
        the ingest path (injected kills, stalls, drops).
    dead_letter:
        Optional :class:`~repro.service.health.DeadLetterSink` capturing
        every packet this engine sheds (overflow or injected drops).
    invariant_every:
        When set, attach an
        :class:`~repro.guard.invariants.InvariantChecker` to every slot
        detector, auditing the paper's algorithm-state invariants once
        per that many slot-local packets.  A violation raises a typed
        :class:`~repro.guard.invariants.InvariantViolation` out of the
        ingest/flush path (permanent — the supervisor aborts rather than
        restarts).
    watcher:
        Optional :class:`~repro.service.pipeline.WatcherStage` observing
        the ambiguity region, one watcher per *slot* (its
        ``shard_count`` must equal the engine's slot count).  It taps
        the stream at the routing point — before queueing, overflow,
        fault injection, or the overload ladder — and never feeds the
        slot detectors, so arming it leaves exact detections
        bit-identical.  Slot granularity also makes its verdict streams
        invariant under resharding.  Its verdicts are probabilistic and
        are read out separately (never merged into :meth:`detections`).
    overload:
        Optional :class:`~repro.service.overload.OverloadPolicy`.  When
        armed, ingestion stops draining synchronously: packets are
        admitted through the per-shard degradation ladder and queues are
        drained by explicit :meth:`pump` calls bounded by the policy's
        ``drain_budget`` (modelling finite worker capacity), so queue
        occupancy becomes a real overload signal instead of a sawtooth.
        Queue growth past capacity is permitted transiently — occupancy
        above the high watermark escalates the ladder, which reaches
        SHEDDING (and therefore stops enqueueing) within at most three
        observations, keeping memory bounded.  With ``overload=None``
        (the default) nothing on the ingest path changes.
    slots:
        Number of flow slots (detector granularity).  ``None`` (the
        default) means one slot per shard — the pre-reshard behaviour.
        More slots than shards buys migration headroom: slots are the
        units a reshard can move.  Must be ``>= shards``.
    """

    def __init__(
        self,
        config: EARDetConfig,
        shards: int = 1,
        seed: int = 0,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        overflow: str = "block",
        store_factory: Callable[[int], CounterStore] = HeapCounterStore,
        fault_plan=None,
        dead_letter: Optional[DeadLetterSink] = None,
        invariant_every: Optional[int] = None,
        overload: Optional[OverloadPolicy] = None,
        watcher=None,
        slots: Optional[int] = None,
    ):
        if shards < 1:
            raise ValueError(f"need at least 1 shard, got {shards}")
        if slots is None:
            slots = shards
        if slots < shards:
            raise ValueError(
                f"need at least as many slots as shards, got {slots} slots "
                f"for {shards} shards"
            )
        if queue_capacity < 1:
            raise ValueError(
                f"queue capacity must be positive, got {queue_capacity}"
            )
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, got {overflow!r}"
            )
        self.config = config
        self.queue_capacity = queue_capacity
        self.overflow = overflow
        self._store_factory = store_factory
        self._slot_detectors: List[EARDet] = [
            EARDet(config, store_factory=store_factory) for _ in range(slots)
        ]
        self.invariant_every = invariant_every
        if invariant_every is not None:
            for detector in self._slot_detectors:
                self._attach_checker(detector)
        self._hash = StageHash(seed=seed, buckets=slots)
        self._route = FlowRouter(self._hash)
        self._layout = ShardLayout.default(slots, shards)
        self._assignment: List[int] = list(self._layout.assignment)
        self._queues: List[Deque[Packet]] = [deque() for _ in range(shards)]
        self._dropped = [0] * shards
        self._accepted = 0
        self._plan = fault_plan
        self._dead_letter = dead_letter
        # Loss accounting for the exactness envelope: per-shard arrival
        # index (packets ever routed to the shard, processed or not),
        # first-loss timestamp, and loss mechanism.
        self._routed = [0] * shards
        self._first_loss: List[Optional[int]] = [None] * shards
        self._loss_reason = [""] * shards
        # Operational telemetry: per-shard queue high-water mark and the
        # stream timestamp of the last packet routed to each shard.
        self._queue_high_water = [0] * shards
        self._last_packet_ts: List[Optional[int]] = [None] * shards
        self.overload_policy = overload
        self._overload: Optional[List[ShardOverload[Packet]]] = None
        if overload is not None:
            self._overload = [
                ShardOverload(overload, Packet) for _ in range(shards)
            ]
        if watcher is not None and watcher.shard_count != slots:
            raise ValueError(
                f"watcher stage has {watcher.shard_count} watchers, engine "
                f"has {slots} slots (the stage is slot-granular)"
            )
        self.watcher = watcher

    def _attach_checker(self, detector: EARDet) -> None:
        from ..guard import InvariantChecker

        detector.attach_checker(InvariantChecker(self.invariant_every))

    # -- introspection -----------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self._layout.shards

    @property
    def slot_count(self) -> int:
        return self._layout.slots

    @property
    def layout(self) -> ShardLayout:
        """The current (versioned) slot→shard assignment."""
        return self._layout

    @property
    def seed(self) -> int:
        return self._hash.seed

    @property
    def accepted(self) -> int:
        """Packets accepted into queues (processed or still pending)."""
        return self._accepted

    @property
    def dropped(self) -> int:
        """Total packets shed by the ``drop`` overflow policy."""
        return sum(self._dropped)

    @property
    def routed(self) -> List[int]:
        """Per-shard arrival counts (the coordinator's load signal)."""
        return list(self._routed)

    def slot_of(self, fid: FlowId) -> int:
        """Which slot a flow hashes to (layout-independent)."""
        return self._route(fid)

    def shard_of(self, fid: FlowId) -> int:
        """Which shard currently hosts a flow's slot."""
        return self._assignment[self._route(fid)]

    def queue_depths(self) -> List[int]:
        """Current pending-packet count per shard (cheap; no drain)."""
        return [len(queue) for queue in self._queues]

    @property
    def queue_high_water(self) -> List[int]:
        """Highest queue depth each shard has reached."""
        return list(self._queue_high_water)

    @property
    def last_packet_ts(self) -> List[Optional[int]]:
        """Stream timestamp of the last packet routed to each shard."""
        return list(self._last_packet_ts)

    def detector_groups(self) -> List[List[EARDet]]:
        """Per-shard lists of hosted slot detectors (telemetry sync)."""
        return [
            [self._slot_detectors[slot] for slot in self._layout.slots_of(s)]
            for s in range(self._layout.shards)
        ]

    # -- ingestion ---------------------------------------------------------

    def ingest(self, batch: List[Packet]) -> None:
        """Route a batch of packets onto shard queues, applying the
        overflow policy when a queue is full (and, when a fault plan is
        armed, injecting kills/stalls/drops at exact packet positions).

        With an armed overload policy the batch instead flows through
        the per-shard degradation ladder (see :meth:`_ingest_overload`).
        """
        if self._overload is not None:
            self._ingest_overload(batch)
            return
        queues = self._queues
        route = self._route
        assignment = self._assignment
        routed = self._routed
        high_water = self._queue_high_water
        last_ts = self._last_packet_ts
        capacity = self.queue_capacity
        block = self.overflow == "block"
        plan = self._plan
        watcher = self.watcher
        for packet in batch:
            slot = route(packet.fid)
            index = assignment[slot]
            routed[index] += 1
            last_ts[index] = packet.time
            if watcher is not None:
                # Stage-2 tap at the routing point: sees the wire
                # stream before queueing/overflow/faults can lose it.
                # Slot-keyed, so the tap is invariant under resharding.
                watcher.observe(packet, slot)
            if plan is not None:
                local = routed[index]
                if plan.should_drop(index, local):
                    self._record_loss(index, packet, "injected-drop", slot=slot)
                    continue
                stall = plan.take_stall(index, local)
                if stall is not None:
                    _time.sleep(stall.duration_s)
                kill = plan.take_kill(index, local)
                if kill is not None:
                    raise ShardCrashError(
                        f"injected kill: shard {index} died at its packet "
                        f"{local}",
                        shard=index,
                    )
            queue = queues[index]
            if len(queue) >= capacity:
                if block:
                    self._drain_shard(index)
                else:
                    self._record_loss(index, packet, "queue-overflow", slot=slot)
                    continue
            queue.append(packet)
            self._accepted += 1
            depth = len(queue)
            if depth > high_water[index]:
                high_water[index] = depth

    def _ingest_overload(self, batch: List[Packet]) -> None:
        """Ladder-mediated ingest: observe occupancy once per shard per
        batch, admit each packet at its shard's current rung, advance
        the deferred-deadline clock at the end.

        Enqueueing here is unconditional (no synchronous drain, no
        overflow drop): queue depth is the overload *signal*, and the
        ladder — not the queue bound — is what sheds load.  Memory stays
        bounded because occupancy at or above the high watermark
        escalates one rung per batch, so a persistently full shard stops
        enqueueing (SHEDDING) after at most three batches.
        """
        states = self._overload
        assert states is not None
        queues = self._queues
        capacity = self.queue_capacity
        route = self._route
        assignment = self._assignment
        routed = self._routed
        last_ts = self._last_packet_ts
        high_water = self._queue_high_water
        plan = self._plan
        watcher = self.watcher
        exact = DegradationLevel.EXACT
        accepted = 0
        for index, state in enumerate(states):
            for item in state.observe(len(queues[index]), capacity):
                self._enqueue(index, item)
        for packet in batch:
            slot = route(packet.fid)
            index = assignment[slot]
            routed[index] += 1
            last_ts[index] = packet.time
            if watcher is not None:
                # The watcher taps ahead of the ladder: it keeps seeing
                # in-region traffic even while this shard sheds load.
                watcher.observe(packet, slot)
            if plan is not None:
                local = routed[index]
                if plan.should_drop(index, local):
                    self._record_loss(index, packet, "injected-drop", slot=slot)
                    continue
                stall = plan.take_stall(index, local)
                if stall is not None:
                    _time.sleep(stall.duration_s)
                kill = plan.take_kill(index, local)
                if kill is not None:
                    raise ShardCrashError(
                        f"injected kill: shard {index} died at its packet "
                        f"{local}",
                        shard=index,
                    )
            state = states[index]
            if state.controller.level is exact:
                # Inlined EXACT rung (equivalent to admit + _enqueue):
                # the armed-but-idle ladder must cost attribute bumps,
                # not three function calls per packet.
                account = state.account
                account.exact_packets += 1
                account.exact_bytes += packet.size
                state._last_time = packet.time
                queue = queues[index]
                queue.append(packet)
                accepted += 1
                depth = len(queue)
                if depth > high_water[index]:
                    high_water[index] = depth
                continue
            emitted = state.admit(packet.time, packet.size, packet.fid, packet)
            if emitted is None:
                self._record_loss(index, packet, "overload-shed", slot=slot)
                continue
            for item in emitted:
                self._enqueue(index, item)
        self._accepted += accepted
        for index, state in enumerate(states):
            for item in state.on_batch_end():
                self._enqueue(index, item)

    def _enqueue(self, index: int, packet: Packet) -> None:
        queue = self._queues[index]
        queue.append(packet)
        self._accepted += 1
        depth = len(queue)
        if depth > self._queue_high_water[index]:
            self._queue_high_water[index] = depth

    def pump(self, budget: Optional[int] = None) -> int:
        """Drain up to ``budget`` packets from each shard queue (the
        worker-capacity model under an armed overload policy; defaults
        to the policy's ``drain_budget``).  Returns packets processed.
        ``None`` budget (and no policy default) drains fully."""
        if budget is None and self.overload_policy is not None:
            budget = self.overload_policy.drain_budget
        processed = 0
        route = self._route
        detectors = self._slot_detectors
        for queue in self._queues:
            remaining = budget
            while queue and (remaining is None or remaining > 0):
                packet = queue.popleft()
                detectors[route(packet.fid)].observe(packet)
                processed += 1
                if remaining is not None:
                    remaining -= 1
        return processed

    def _record_loss(
        self,
        index: int,
        packet: Packet,
        reason: str,
        slot: Optional[int] = None,
    ) -> None:
        self._dropped[index] += 1
        if self._first_loss[index] is None:
            self._first_loss[index] = packet.time
            self._loss_reason[index] = reason
        if self._dead_letter is not None:
            # The consistent dead-letter tuple: shard, slot, 1-based
            # shard-local arrival index (== routed count at loss time).
            self._dead_letter.record(
                packet, index, reason, slot=slot, index=self._routed[index]
            )

    def flush(self) -> None:
        """Process every pending packet (the graceful-drain step).

        With an armed overload policy this first releases everything the
        rung buffers hold (deferred packets, open aggregate epochs), so
        a drain or snapshot never strands coalesced packets."""
        if self._overload is not None:
            for index, state in enumerate(self._overload):
                for item in state.flush():
                    self._enqueue(index, item)
        for index in range(len(self._queues)):
            self._drain_shard(index)

    def _drain_shard(self, index: int) -> None:
        queue = self._queues[index]
        route = self._route
        detectors = self._slot_detectors
        while queue:
            packet = queue.popleft()
            detectors[route(packet.fid)].observe(packet)

    def close(self, drain: bool = False) -> None:
        """Drain and release; the in-process engine holds no OS resources.
        ``drain`` exists for interface parity with the multiprocess
        engine (there it selects the drain exit code); the drain work —
        flushing rung buffers and queues — happens either way."""
        self.flush()

    def terminate(self) -> None:
        """Abandon pending work without draining (the supervisor's
        teardown path after a crash — the restored checkpoint supersedes
        whatever is still queued)."""
        for queue in self._queues:
            queue.clear()

    # -- hot reconfiguration -----------------------------------------------

    def apply_config(self, config: EARDetConfig) -> None:
        """Swap every slot detector onto ``config`` at the current packet
        boundary (the control plane's apply step).

        Queues are flushed first, so the swap lands at an exact stream
        boundary; each slot's state is snapshotted, adapted via
        :func:`repro.core.eardet.reconfigure_state`, and restored into a
        detector built with the new configuration.  Build-all-then-swap:
        nothing is replaced until every slot has adapted successfully,
        so a typed failure (e.g. live occupancy above the new ``n``)
        leaves the engine exactly as it was.  Rollback is simply
        ``apply_config(old_config)``.
        """
        self.flush()
        rebuilt: List[EARDet] = []
        for detector in self._slot_detectors:
            state = reconfigure_state(detector.snapshot(), config)
            replacement = EARDet(config, store_factory=self._store_factory)
            replacement.restore(state)
            if self.invariant_every is not None:
                self._attach_checker(replacement)
            rebuilt.append(replacement)
        self._slot_detectors = rebuilt
        self.config = config

    # -- live migration ----------------------------------------------------

    def prepare_migration(self, plan: MigrationPlan) -> None:
        """Freeze phase: release the overload ladders' rung buffers
        (deferred/aggregated packets must cross the cut in per-flow
        arrival order), drain every pending packet so the moving slots'
        state is at the stream boundary, and provision any new shards
        the plan targets."""
        plan.validate(self._layout)
        self.flush()
        self._ensure_shards(plan.target_shards)

    def extract_slots(self, slot_ids: List[int]) -> Dict[int, Dict[str, object]]:
        """Extract phase: snapshot the moving slots' detectors and
        detach them from the engine (an extracted slot must not observe
        a packet until it is installed somewhere)."""
        extracted: Dict[int, Dict[str, object]] = {}
        for slot in slot_ids:
            detector = self._slot_detectors[slot]
            if detector is None:
                continue
            extracted[slot] = detector.snapshot()
            self._slot_detectors[slot] = None  # type: ignore[call-overload]
        return extracted

    def install_slots(
        self,
        slot_states: Dict[int, Dict[str, object]],
        assignment: Dict[int, int],
    ) -> None:
        """Install phase: rebuild each extracted slot's detector from
        its (decode-verified) state.  ``assignment`` names the hosting
        shard per slot — in this single-address-space engine the
        detector list is slot-indexed, so hosting only needs the target
        shard's runtime arrays to exist."""
        for slot, shard in assignment.items():
            if shard >= self._layout.shards and shard >= len(self._queues):
                raise ValueError(
                    f"slot {slot} targets shard {shard}, which was never "
                    f"provisioned (prepare_migration not run?)"
                )
        for slot, state in slot_states.items():
            detector = EARDet(self.config, store_factory=self._store_factory)
            detector.restore(state)
            if self.invariant_every is not None:
                self._attach_checker(detector)
            self._slot_detectors[slot] = detector

    def commit_layout(self, layout: ShardLayout) -> None:
        """Cutover phase: atomically swap the slot→shard assignment.
        Refuses to commit while any moved slot is still detached."""
        if layout.slots != self._layout.slots:
            raise ValueError(
                f"layout has {layout.slots} slots, engine has "
                f"{self._layout.slots}"
            )
        missing = [
            slot
            for slot, detector in enumerate(self._slot_detectors)
            if detector is None
        ]
        if missing:
            raise ValueError(
                f"cannot commit layout: slots {missing} are extracted but "
                "not installed"
            )
        self._ensure_shards(layout.shards)
        self._layout = layout
        self._assignment = list(layout.assignment)

    def abort_migration(
        self,
        plan: MigrationPlan,
        extracted: Dict[int, Dict[str, object]],
    ) -> None:
        """Rollback: reinstall the extracted states under the
        pre-migration assignment.  The detector list is slot-indexed and
        installs overwrite, so a partially installed copy is simply
        rebuilt from the same extracted state; plan slots that were
        never extracted are still live and must not be touched.  The
        layout was never swapped (commit is the last step), so routing
        is already correct once the state is back."""
        if extracted:
            self.install_slots(extracted, plan.assignment_before())

    def _ensure_shards(self, shards: int) -> None:
        """Grow the per-shard runtime arrays (queues, ladders, loss
        accounting) to host ``shards`` shards.  Never shrinks — a merged-
        away shard stays as an idle hot spare."""
        current = len(self._queues)
        if shards <= current:
            return
        grow = shards - current
        self._queues.extend(deque() for _ in range(grow))
        self._dropped.extend([0] * grow)
        self._routed.extend([0] * grow)
        self._first_loss.extend([None] * grow)
        self._loss_reason.extend([""] * grow)
        self._queue_high_water.extend([0] * grow)
        self._last_packet_ts.extend([None] * grow)
        if self._overload is not None:
            self._overload.extend(
                ShardOverload(self.overload_policy, Packet)
                for _ in range(grow)
            )

    # -- results -----------------------------------------------------------

    def detections(self) -> Dict[FlowId, int]:
        """Union of per-slot first-detection reports (flows are disjoint
        across slots, so the union is conflict-free)."""
        sink = ReportSink()
        for detector in self._slot_detectors:
            sink.merge(detector.sink)
        return sink.as_dict()

    def health(self) -> List[ShardHealth]:
        """A point-in-time per-shard health sample (slot state
        aggregated onto the hosting shard)."""
        states = self._overload
        layout = self._layout
        watcher = self.watcher
        samples = []
        for index in range(layout.shards):
            slots = layout.slots_of(index)
            detectors = [self._slot_detectors[slot] for slot in slots]
            samples.append(
                ShardHealth(
                    shard=index,
                    packets=sum(d.stats.packets for d in detectors),
                    queue_depth=len(self._queues[index]),
                    queue_capacity=self.queue_capacity,
                    detections=sum(len(d.sink) for d in detectors),
                    blacklist_size=sum(len(d.blacklist) for d in detectors),
                    dropped=self._dropped[index],
                    queue_high_water=self._queue_high_water[index],
                    last_packet_ts_ns=self._last_packet_ts[index],
                    degradation_level=(
                        states[index].level.label
                        if states is not None
                        else "exact"
                    ),
                    watcher_occupancy=(
                        sum(watcher.occupancy(slot) for slot in slots)
                        if watcher is not None
                        else 0
                    ),
                    watcher_verdicts=(
                        sum(
                            len(watcher.watcher(slot).detected)
                            for slot in slots
                        )
                        if watcher is not None
                        else 0
                    ),
                    slot_count=len(slots),
                )
            )
        return samples

    def overload_report(self) -> Optional[Dict[str, object]]:
        """Service-level overload summary, or ``None`` when no policy is
        armed.  Includes the merged degradation account (whose integer
        identity ``exact + deferred + aggregated + shed == offered``
        holds by construction) and the computed ambiguity-widening
        bound: aggregates are re-stamped by at most ``max_widening_ns``,
        so over any window the measured traffic of a flow can shift by
        at most ``rho * max_widening_ns`` bytes (``widening_bytes``)."""
        if self._overload is None:
            return None
        from .overload import build_overload_report

        return build_overload_report(self._overload, self.config.rho)

    def envelope(self) -> List[ExactnessEnvelope]:
        """Per-shard exactness: a shard that lost even one packet no
        longer carries the no-FN/no-FP guarantee past its first loss."""
        return [
            ExactnessEnvelope(
                shard=index,
                exact=self._dropped[index] == 0,
                lost_packets=self._dropped[index],
                first_loss_time_ns=self._first_loss[index],
                reason=self._loss_reason[index],
            )
            for index in range(self._layout.shards)
        ]

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Exact engine state at the current packet boundary.

        Drains all queues first so the captured slot states correspond to
        exactly the packets accepted so far; the result is plain Python
        data ready for :func:`repro.service.checkpoint.write_checkpoint`.
        """
        self.flush()
        layout = self._layout
        return {
            "format": ENGINE_SNAPSHOT_FORMAT,
            "seed": self._hash.seed,
            "shard_count": layout.shards,
            "accepted": self._accepted,
            "dropped": list(self._dropped),
            # Optional keys (absent in pre-fault-tolerance checkpoints;
            # readers default them) — keeps the format at version 1.
            "first_loss": list(self._first_loss),
            "loss_reason": list(self._loss_reason),
            "queue_high_water": list(self._queue_high_water),
            "last_packet_ts": list(self._last_packet_ts),
            # Arrival indices, stored explicitly because under an
            # AGGREGATED ladder rung shard packet counts no longer equal
            # routed - dropped (aggregates merge many arrivals into one).
            "routed": list(self._routed),
            "overload": (
                [state.snapshot() for state in self._overload]
                if self._overload is not None
                else None
            ),
            # Optional stage-2 state (absent in pre-pipeline checkpoints
            # and watcher-off runs; readers default to a fresh stage).
            "watcher": (
                self.watcher.snapshot() if self.watcher is not None else None
            ),
            # Optional reshard keys: a default deployment (identity
            # layout, epoch 0) reads back identically without them.
            "slots": layout.slots,
            "layout": layout.as_dict(),
            "layout_epoch": layout.epoch,
            # Slot-indexed detector states.  Pre-reshard snapshots carry
            # one entry per shard, which is the same thing under the
            # identity layout.
            "shards": [
                detector.snapshot() for detector in self._slot_detectors
            ],
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore an engine snapshot (from this or the multiprocess
        engine — the schema is shared).

        The snapshot's *layout* (slot→shard assignment, shard count,
        epoch) is adopted: a checkpoint taken after three migrations
        restores onto an engine constructed with the original shard
        count and replays to bit-identical detections, because
        detections only depend on slots.  Seed and slot count remain
        strict — they define the hash sub-streams themselves.
        """
        fmt = state.get("format")
        if fmt != ENGINE_SNAPSHOT_FORMAT:
            raise ValueError(f"unsupported engine snapshot format {fmt!r}")
        if state["seed"] != self._hash.seed:
            raise ValueError(
                f"snapshot hash seed {state['seed']} != engine seed "
                f"{self._hash.seed}; flows would route to different slots"
            )
        slot_states = state["shards"]
        slots = int(state.get("slots") or len(slot_states))
        if slots != self._layout.slots:
            raise ValueError(
                f"snapshot has {slots} slots, engine has "
                f"{self._layout.slots}; flows would route to different "
                "sub-streams"
            )
        if len(slot_states) != slots:
            raise ValueError(
                f"snapshot carries {len(slot_states)} slot states for "
                f"{slots} slots"
            )
        layout_state = state.get("layout")
        if layout_state is not None:
            layout = ShardLayout.from_dict(layout_state)
        else:
            layout = ShardLayout.default(slots, int(state["shard_count"]))
        for queue in self._queues:
            queue.clear()
        self._ensure_shards(layout.shards)
        self._layout = layout
        self._assignment = list(layout.assignment)
        for detector, slot_state in zip(self._slot_detectors, slot_states):
            detector.restore(slot_state)
        shards = layout.shards

        def _per_shard(key, default):
            values = state.get(key)
            if not values:
                return [default] * shards
            values = list(values)
            return values + [default] * (shards - len(values))

        self._dropped = _per_shard("dropped", 0)
        self._accepted = state["accepted"]
        self._first_loss = _per_shard("first_loss", None)
        self._loss_reason = _per_shard("loss_reason", "")
        self._queue_high_water = _per_shard("queue_high_water", 0)
        self._last_packet_ts = _per_shard("last_packet_ts", None)
        # Arrival indices resume exactly: newer checkpoints store them;
        # older ones are recomputed (a checkpoint is taken drained, so
        # each shard's arrivals = packets processed + packets dropped —
        # valid because pre-overload checkpoints never aggregated, and
        # pre-reshard checkpoints host exactly one slot per shard).
        routed = state.get("routed")
        if routed is not None:
            self._routed = list(routed) + [0] * (shards - len(routed))
        else:
            self._routed = [
                slot_state["stats"]["packets"] + dropped
                for slot_state, dropped in zip(slot_states, self._dropped)
            ]
        overload_state = state.get("overload")
        if overload_state is not None and self._overload is not None:
            for shard_overload, shard_state in zip(
                self._overload, overload_state
            ):
                shard_overload.restore(shard_state)
        watcher_state = state.get("watcher")
        if watcher_state is not None and self.watcher is not None:
            self.watcher.restore(watcher_state)

    def __repr__(self) -> str:
        return (
            f"InProcessEngine(shards={self._layout.shards}, "
            f"slots={self._layout.slots}, epoch={self._layout.epoch}, "
            f"accepted={self._accepted}, dropped={self.dropped})"
        )
