"""One backoff policy for every retry loop in the service.

Before this module the service had three hand-rolled exponential-backoff
implementations — :class:`~repro.service.sources.RetryingSource`,
:class:`~repro.service.supervisor.RestartPolicy`, and (implicitly, as
"no retry at all") checkpoint writes.  They agreed on the shape
(geometric growth, capped) but not on defaults, and none of them could
jitter, so a fleet of restarting services thundering-herds the instant
their shared dependency recovers.

:class:`BackoffPolicy` is the single definition.  Two properties matter
for this codebase:

- **Deterministic.**  ``delay_s(attempt)`` is a pure function of the
  policy and the attempt index — no RNG state, no wall clock.  A chaos
  test that replays the same fault sequence observes the same sleeps.
- **Seedable jitter.**  Jitter is derived by hashing ``(seed, attempt)``
  through a splitmix64 round, so it is *repeatable* (same seed → same
  jitter sequence) yet *decorrelated* across services (different seeds →
  different sequences).  Jitter only ever shortens a delay (the
  "decorrelated early" scheme), so the un-jittered delay remains the
  worst-case bound used in timeout budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["BackoffPolicy", "DEFAULT_BACKOFF"]

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """One splitmix64 round: a cheap, high-quality 64-bit mixer."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _unit_interval(seed: int, attempt: int) -> float:
    """A deterministic pseudo-random float in ``[0, 1)`` for
    ``(seed, attempt)`` — the jitter source."""
    mixed = _splitmix64(((seed & _MASK64) << 1) ^ _splitmix64(attempt))
    return (mixed >> 11) / float(1 << 53)


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with deterministic, seedable jitter.

    ``delay_s(attempt)`` for attempt ``0, 1, 2, ...`` is::

        base   = min(initial_s * factor ** attempt, max_s)
        jitter = base * jitter_fraction * U(seed, attempt)   # U in [0, 1)
        delay  = base - jitter

    With ``jitter = 0`` (the default) this is exactly the capped
    geometric schedule the service has always used, so adopting the
    shared policy changes no existing timing.
    """

    initial_s: float = 0.05
    factor: float = 2.0
    max_s: float = 5.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.initial_s < 0:
            raise ValueError(f"initial_s must be >= 0, got {self.initial_s}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.max_s < self.initial_s:
            raise ValueError(
                f"max_s ({self.max_s}) must be >= initial_s ({self.initial_s})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be within [0, 1], got {self.jitter}"
            )

    def delay_s(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        base = min(self.initial_s * self.factor ** attempt, self.max_s)
        if self.jitter:
            base -= base * self.jitter * _unit_interval(self.seed, attempt)
        return base

    def delays(self, attempts: int) -> Iterator[float]:
        """The first ``attempts`` delays, in order (for tests and docs)."""
        return (self.delay_s(index) for index in range(attempts))


#: The service-wide default schedule (identical to the historical
#: RetryingSource/RestartPolicy shape at their shared factor).
DEFAULT_BACKOFF = BackoffPolicy()
