"""Structured error taxonomy for the detection service.

The service distinguishes *recoverable* failures — a crashed shard
worker, a stalled queue, a transient source hiccup — from *permanent*
ones, because the supervisor (:mod:`repro.service.supervisor`) restarts
on the former and degrades gracefully on the latter.  Every error class
carries the structured fields an operator (or the supervisor's restart
loop) needs to act: which shard, at which stream position, after how
many attempts.

Hierarchy::

    ServiceError
    ├── RecoverableServiceError        (supervisor may restart)
    │   ├── ShardCrashError            (a shard worker died)
    │   │   └── WorkerError            (repro.service.workers; pre-existing)
    │   ├── QueueStallError            (heartbeat went stale)
    │   ├── OverloadError              (shard queue full past the put timeout)
    │   ├── MigrationError             (a reshard migration failed; rolled back)
    │   ├── RetuneError                (a hot reconfiguration failed; rolled back)
    │   ├── TransportError             (a remote shard connection failed)
    │   │   └── FrameCorruptError      (a frame failed CRC/length/magic checks)
    │   └── TransientSourceError       (retryable source failure)
    ├── SourceError
    │   ├── TransientSourceError       (also recoverable, see above)
    │   └── PermanentSourceError       (source is gone for good)
    ├── HandshakeError                 (protocol/config mismatch; permanent)
    ├── ReplayIncompleteError          (a replay bundle cannot be exact)
    └── RestartBudgetExceededError     (supervision gave up)

Two classes from other layers are re-exported here so callers can import
the whole taxonomy from one place:

- :class:`~repro.service.checkpoint.CheckpointCorruptError` (lives in
  :mod:`repro.service.checkpoint`, subclasses the pre-existing
  :class:`~repro.service.checkpoint.CheckpointError`);
- :class:`~repro.guard.invariants.InvariantViolation` (lives in
  :mod:`repro.guard` — a **permanent** error: the detector's algorithm
  state is corrupted, so restarting from the same state or a checkpoint
  of it cannot help.  The supervisor records the forensics and aborts
  instead of restarting.)
"""

from __future__ import annotations

from typing import Optional

from ..guard.invariants import InvariantViolation
from .checkpoint import CheckpointCorruptError, CheckpointError

__all__ = [
    "CheckpointCorruptError",
    "CheckpointError",
    "FrameCorruptError",
    "HandshakeError",
    "InvariantViolation",
    "MigrationError",
    "OverloadError",
    "PermanentSourceError",
    "QueueStallError",
    "RecoverableServiceError",
    "ReplayIncompleteError",
    "RetuneError",
    "RestartBudgetExceededError",
    "ServiceError",
    "ShardCrashError",
    "SourceError",
    "TransientSourceError",
    "TransportError",
]


class ServiceError(Exception):
    """Base class for every failure the service layer raises."""


class RecoverableServiceError(ServiceError):
    """A failure the supervisor is allowed to restart from."""


class ShardCrashError(RecoverableServiceError, RuntimeError):
    """A shard worker died (process exit, injected kill, or crash).

    ``shard`` is the shard index, ``exit_code`` the worker's exit status
    when known (multiprocess engine only).
    """

    def __init__(
        self,
        message: str,
        shard: Optional[int] = None,
        exit_code: Optional[int] = None,
    ):
        super().__init__(message)
        self.shard = shard
        self.exit_code = exit_code


class QueueStallError(RecoverableServiceError):
    """A shard stopped making progress: its heartbeat went stale.

    Raised by the supervisor's monitor when a shard's last heartbeat is
    older than the configured timeout — the worker process is alive but
    wedged (or sleeping inside an injected stall fault).
    """

    def __init__(self, message: str, shard: Optional[int] = None,
                 stalled_s: Optional[float] = None):
        super().__init__(message)
        self.shard = shard
        self.stalled_s = stalled_s


class OverloadError(RecoverableServiceError):
    """A shard queue stayed full past the producer's patience.

    Raised by the multiprocess engine when a shard's input queue remains
    full for longer than the configured ``put_timeout_s`` while the
    worker is alive — the typed replacement for letting a bare
    ``queue.Full`` escape or dropping silently.  Recoverable: the
    supervisor may restart (which re-creates queues and replays from the
    last checkpoint), or the caller may arm an
    :class:`~repro.service.overload.OverloadPolicy` so the ladder sheds
    load accountably before this point is ever reached.
    """

    def __init__(
        self,
        message: str,
        shard: Optional[int] = None,
        queue_depth: Optional[int] = None,
        queue_capacity: Optional[int] = None,
    ):
        super().__init__(message)
        self.shard = shard
        self.queue_depth = queue_depth
        self.queue_capacity = queue_capacity


class MigrationError(RecoverableServiceError):
    """A live shard migration failed.

    ``phase`` names the two-phase-protocol step that failed (``freeze``,
    ``extract``, ``install`` or ``cutover``); ``plan`` is the human-
    readable plan description; ``rolled_back`` states whether the engine
    was returned to the pre-migration layout (the normal outcome — a
    half-applied plan must never exist).  ``rolled_back=False`` means the
    rollback itself failed, so the engine's layout is suspect: the
    supervisor treats this like any recoverable error and restores from
    the last checkpoint, which is exact regardless of layout (detections
    are invariant under the slot assignment).
    """

    def __init__(
        self,
        message: str,
        phase: Optional[str] = None,
        plan: Optional[str] = None,
        rolled_back: bool = True,
        attempts: int = 0,
    ):
        super().__init__(message)
        self.phase = phase
        self.plan = plan
        self.rolled_back = rolled_back
        self.attempts = attempts


class RetuneError(RecoverableServiceError):
    """A guarded hot reconfiguration (retune) failed.

    ``phase`` names the five-phase-protocol step that failed
    (``propose``, ``freeze``, ``apply``, ``verify`` or ``commit``);
    ``plan`` is the human-readable plan description; ``rolled_back``
    states whether the engine was returned to the pre-retune
    configuration (the normal outcome — a rolled-back retune leaves
    detections bit-identical to never having attempted it).
    ``rolled_back=False`` means the rollback itself failed, so the
    engine's configuration is suspect: the supervisor treats this like
    any recoverable error and restores from the last checkpoint, whose
    recorded config epoch is authoritative.
    """

    def __init__(
        self,
        message: str,
        phase: Optional[str] = None,
        plan: Optional[str] = None,
        rolled_back: bool = True,
        attempts: int = 0,
    ):
        super().__init__(message)
        self.phase = phase
        self.plan = plan
        self.rolled_back = rolled_back
        self.attempts = attempts


class TransportError(RecoverableServiceError):
    """A remote shard connection failed (socket error, ack timeout,
    heartbeat loss, or a partition outlasting its mask window).

    ``shard`` is the remote shard index, ``endpoint`` its ``host:port``,
    ``frame_seq`` the sequence number of the first frame that could not
    be delivered (when known).  Recoverable: the remote engine reconnects
    under its :class:`~repro.service.backoff.BackoffPolicy` and replays
    the unacked-frame ring; the supervisor may also restart the whole
    service from the last checkpoint.
    """

    def __init__(
        self,
        message: str,
        shard: Optional[int] = None,
        endpoint: Optional[str] = None,
        frame_seq: Optional[int] = None,
    ):
        super().__init__(message)
        self.shard = shard
        self.endpoint = endpoint
        self.frame_seq = frame_seq


class FrameCorruptError(TransportError):
    """A transport frame failed its integrity checks (bad magic, bad
    CRC, impossible length, or an undecodable payload).

    ``offset`` is the byte offset of the failing field within the frame
    when known — forensics in the spirit of
    :class:`~repro.service.checkpoint.CheckpointCorruptError`.  The
    connection that produced it is torn down and re-established; the
    exactly-once sequence discipline makes the teardown lossless.
    """

    def __init__(
        self,
        message: str,
        shard: Optional[int] = None,
        endpoint: Optional[str] = None,
        frame_seq: Optional[int] = None,
        offset: Optional[int] = None,
    ):
        super().__init__(message, shard=shard, endpoint=endpoint,
                         frame_seq=frame_seq)
        self.offset = offset


class HandshakeError(ServiceError):
    """The two ends of a shard connection disagree about something a
    reconnect cannot fix: protocol version, detector seed, slot count,
    or configuration.  Permanent — retrying the same handshake would
    fail the same way, so the remote engine surfaces it instead of
    burning the backoff budget."""

    def __init__(self, message: str, shard: Optional[int] = None,
                 endpoint: Optional[str] = None):
        super().__init__(message)
        self.shard = shard
        self.endpoint = endpoint


class SourceError(ServiceError):
    """A packet source failed.  ``position`` is the number of packets it
    had delivered when it failed."""

    def __init__(self, message: str, position: Optional[int] = None):
        super().__init__(message)
        self.position = position


class TransientSourceError(SourceError, RecoverableServiceError):
    """A source failure expected to clear on retry (flaky file system,
    reconnecting capture device).  :class:`~repro.service.sources.
    RetryingSource` absorbs these up to its retry budget."""


class PermanentSourceError(SourceError):
    """The source is gone for good; pulling again cannot help.  The
    supervisor drains what it has and returns a degraded report instead
    of restarting."""


class ReplayIncompleteError(ServiceError):
    """A replay bundle cannot reproduce its incident exactly.

    Raised by :func:`repro.forensics.replay.replay_bundle` when the
    capture window was truncated (the trace ring evicted batches the
    incident's window still needed) or when positional losses inside the
    window lack recorded positions (``skips_complete=False``).  Replaying
    anyway would silently diverge from the original run, which is worse
    than a typed refusal.  ``truncated``/``skips_complete`` carry which
    condition tripped; ``bundle`` is the offending bundle's path when
    known.
    """

    def __init__(
        self,
        message: str,
        bundle: Optional[str] = None,
        truncated: bool = False,
        skips_complete: bool = True,
    ):
        super().__init__(message)
        self.bundle = bundle
        self.truncated = truncated
        self.skips_complete = skips_complete


class RestartBudgetExceededError(ServiceError):
    """Supervised restarts exhausted the restart budget."""

    def __init__(self, message: str, restarts: int,
                 last_cause: Optional[BaseException] = None):
        super().__init__(message)
        self.restarts = restarts
        self.last_cause = last_cause
