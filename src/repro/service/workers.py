"""Multiprocess sharded engine: one OS process per shard.

Python's GIL means the in-process engine cannot exceed one core no matter
how many shards it has; this module provides the throughput deployment.
The parent routes packets and each shard worker hosts the EARDet
detectors of the **slots** currently assigned to it (one slot per shard
in the default layout), consuming chunks from a **bounded**
``multiprocessing.Queue`` — when a shard falls behind, ``Queue.put``
blocks the parent, which therefore stops pulling from the source:
backpressure end to end, memory bounded by ``shards * queue_capacity *
chunk_size`` packets plus the parent's per-shard staging buffers.

Scaling lives or dies on the *parent's* per-packet cost (it is the one
serial stage), so the routing loop is aggressively cheap: slot lookup
goes through the memoized :class:`~repro.service.engine.FlowRouter`
rather than re-hashing every packet (the slot→shard step is a list
index), and chunks travel as plain ``(time, size, fid)`` tuples —
several times cheaper to pickle than ``Packet`` instances — with each
worker rebuilding ``Packet`` objects on its own core, where the cost
parallelizes.  A worker hosting exactly one slot (the default layout)
skips per-packet slot dispatch entirely.

Exact snapshots use **in-band barrier markers**: after flushing its
staging buffers the parent enqueues a snapshot request on every shard
queue.  Each worker replies with its state the moment it dequeues the
marker — i.e. after processing exactly the packets routed before the
marker and none after — so the assembled snapshot corresponds to an exact
stream prefix, just like :meth:`InProcessEngine.snapshot`, and uses the
same schema (the two engines' checkpoints are interchangeable).

Live migration rides the same in-band mechanism: an ``extract`` marker
asks a worker to snapshot-and-detach the named slots *after* everything
already queued to it (the freeze barrier — no drain of unrelated shards
is needed), and an ``install`` message hands a target worker
decode-verified slot states to host from then on.  The parent swaps its
slot→shard assignment only after every install is acknowledged (see
:func:`repro.service.reshard.execute_migration`); workers never route,
so the cutover is a parent-local atomic swap.

Determinism: slots are independent and each processes its hash
sub-stream in arrival order no matter which worker hosts it, so
detections, timestamps and per-slot state are identical to the
in-process engine's — only wall-clock interleaving differs.
``tests/test_service.py`` asserts this equivalence.

Fault tolerance (see :mod:`repro.service.supervisor`):

- every worker stamps a **heartbeat** (a shared double per shard) on each
  message and from a ticker thread, so a supervisor can distinguish
  "busy" from "wedged";
- the parent **detects dead workers promptly**: liveness is checked per
  ingested batch, whenever a bounded ``put`` blocks, and while waiting
  for barrier replies — a crashed shard surfaces as a structured
  :class:`~repro.service.errors.ShardCrashError` (with the exit code)
  instead of a 2-minute timeout;
- a :class:`~repro.service.faults.FaultPlan` can arm worker-side faults
  (kill / stall at an exact shard-local packet index) and parent-side
  injected drops, for deterministic chaos testing;
- a worker that cannot install migrated slot state exits with
  :data:`MIGRATION_ABORT_EXIT_CODE` after shipping the failure in-band,
  so the supervisor classifies the death correctly.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
from typing import Dict, Iterable, List, Optional

from ..core.blacklist import ReportSink
from ..core.config import EARDetConfig
from ..core.eardet import EARDet, reconfigure_state
from ..detectors.hashing import StageHash
from ..model.packet import FlowId, Packet
from .engine import ENGINE_SNAPSHOT_FORMAT, FlowRouter
from .errors import MigrationError, OverloadError, ShardCrashError
from .health import DeadLetterSink, ExactnessEnvelope, ShardHealth
from .overload import OverloadPolicy, ShardOverload
from .reshard import MigrationPlan, ShardLayout

#: Packets per chunk shipped to a worker (amortizes queue/pickle costs).
DEFAULT_CHUNK_SIZE = 2048

#: Maximum in-flight chunks per shard queue.
DEFAULT_QUEUE_CAPACITY = 8

#: Seconds to wait for a worker reply before declaring it dead.
REPLY_TIMEOUT_S = 120.0

#: Seconds :meth:`MultiprocessEngine.terminate` gives a worker to die
#: on SIGTERM before escalating to SIGKILL.
TERMINATE_GRACE_S = 5.0

#: Poll granularity for blocking queue operations — the latency bound on
#: noticing a dead worker while blocked.
LIVENESS_POLL_S = 0.2

#: After a worker is seen dead, how long to keep draining the results
#: queue for a reply its feeder thread may already have in flight.
DEAD_REPLY_GRACE_S = 2.0

#: How often a worker's ticker thread refreshes its heartbeat slot.
HEARTBEAT_INTERVAL_S = 0.5

#: How often a worker's watchdog thread checks that its parent still
#: exists.  A SIGKILL'd parent runs no cleanup (the daemon flag only
#: covers normal interpreter exit), so without the watchdog crashed
#: services would leave shard workers orphaned forever.
ORPHAN_POLL_S = 5.0

#: Exit code a worker uses after an invariant violation.  Distinct from
#: a crash (and from faults.KILL_EXIT_CODE) so the parent can classify
#: the death as *permanent* — corrupted algorithm state is not fixed by
#: a restart — and recover the violation's forensics from the results
#: queue.
INVARIANT_EXIT_CODE = 86

#: Exit code a worker uses after a *graceful drain* stop (SIGTERM-driven
#: shutdown, as opposed to source exhaustion).  Lets an operator tell a
#: drained worker (final state collected, nothing lost) from a clean
#: end-of-stream exit (0) without parsing logs.
DRAIN_EXIT_CODE = 75

#: Exit code a worker uses when it cannot install migrated slot state
#: (decode-verified state that still fails to restore means the worker's
#: process is not trustworthy).  The failure ships in-band first, so the
#: parent rolls the migration back / the supervisor restores from the
#: last checkpoint — which is exact regardless of layout.
MIGRATION_ABORT_EXIT_CODE = 78

#: Heartbeat slots allocated at fleet start.  The shared array cannot
#: grow once workers hold references to it, so this is the ceiling on
#: how many shards a fleet can grow to via resharding.
MAX_WORKER_SHARDS = 64


class WorkerError(ShardCrashError):
    """A shard worker crashed; carries the worker's traceback.

    Pre-dates the structured taxonomy; kept as the exception workers'
    in-band ``("error", ...)`` replies surface as.  It *is* a
    :class:`~repro.service.errors.ShardCrashError`, so the supervisor
    treats both identically.
    """


def _invariant_from_payload(payload):
    """Rebuild a worker's :class:`~repro.guard.invariants.
    InvariantViolation` from its JSON-safe ``as_dict`` reply."""
    from ..guard import InvariantViolation

    return InvariantViolation(
        payload.get("message", "invariant violation in shard worker"),
        check=payload.get("check") or "unknown",
        detector=payload.get("detector") or "eardet",
        observed=payload.get("observed"),
        bound=payload.get("bound"),
        forensics=payload.get("forensics") or {},
    )


def _exit_when_orphaned(original_ppid, poll_s=None):
    """Watchdog loop: hard-exit the worker once its parent disappears.

    This runs in a daemon thread rather than as a timeout on the queue
    read because a crashing parent can leave the worker blocked anywhere:
    ``queue.get`` is the common case, but a parent SIGKILL'd mid-``put``
    leaves a truncated chunk in the queue pipe, and the worker then
    blocks inside ``recv`` *after* its read timeout already fired.
    ``multiprocessing.parent_process().is_alive()`` is no help either —
    under the fork start method each worker inherits the write ends of
    its earlier-forked siblings' parent sentinels, so the sentinel only
    signals once those siblings exit.  Comparing ``os.getppid()`` against
    the PID recorded at worker start sidesteps both: orphaning reparents
    the worker immediately, wherever its main thread is stuck, and
    ``os._exit`` skips interpreter teardown that could itself block on a
    dead peer.
    """
    if poll_s is None:
        poll_s = ORPHAN_POLL_S
    while True:
        time.sleep(poll_s)
        if os.getppid() != original_ppid:
            os._exit(0)


def _heartbeat_ticker(heartbeat, index, interval_s):
    """Refresh this worker's heartbeat slot even while the main thread is
    blocked on an empty queue (idle != dead)."""
    while True:
        heartbeat[index] = time.monotonic()
        time.sleep(interval_s)


def _shard_worker(
    index, config, slots, seed, slot_ids, initial_states, in_queue,
    out_queue, heartbeat, faults, invariant_every=None,
):
    """Worker loop: consume chunks until a stop message, answering
    snapshot / extract / install barriers in stream order.

    The worker hosts one EARDet per assigned slot (``slot_ids``), with
    its own flow→slot router (same ``seed``/``slots`` as the parent's,
    so dispatch agrees).  ``initial_states`` maps slot → restored state.
    Hosting exactly one slot — the default layout — keeps the original
    single-detector hot loop: no per-packet dispatch.

    ``faults`` is ``None`` or ``(kill_at, stall_at, stall_s)`` in
    shard-local packet indices — the deterministic chaos hooks.  An
    injected kill uses ``os._exit`` so the parent sees a genuinely dead
    process (no cleanup, no in-band error message), exactly like a
    segfault or an OOM kill.

    ``invariant_every`` arms an
    :class:`~repro.guard.invariants.InvariantChecker` on every hosted
    detector.  A violation ships its forensics as an in-band
    ``("invariant", index, payload)`` reply (flushed before death) and
    exits with :data:`INVARIANT_EXIT_CODE`, so the parent raises a
    *permanent* :class:`~repro.guard.invariants.InvariantViolation`
    instead of a recoverable crash.
    """
    # The parent (e.g. the CLI) may have routed SIGTERM/SIGINT to a
    # graceful-drain flag nobody in this process reads; inheriting that
    # handler would make the worker unkillable by Process.terminate().
    # Worker drain is driven by the in-band ("stop", "drain") message,
    # never by signals, so restore the defaults.
    import signal

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    threading.Thread(
        target=_exit_when_orphaned, args=(os.getppid(),), daemon=True
    ).start()
    if heartbeat is not None:
        threading.Thread(
            target=_heartbeat_ticker,
            args=(heartbeat, index, HEARTBEAT_INTERVAL_S),
            daemon=True,
        ).start()
    try:
        from ..guard import InvariantChecker, InvariantViolation
        from .faults import KILL_EXIT_CODE

        def build(state=None):
            detector = EARDet(config)
            if invariant_every is not None:
                detector.attach_checker(InvariantChecker(invariant_every))
            if state is not None:
                detector.restore(state)
            return detector

        initial_states = initial_states or {}
        detectors: Dict[int, EARDet] = {
            slot: build(initial_states.get(slot)) for slot in slot_ids
        }
        router = FlowRouter(StageHash(seed=seed, buckets=slots))
        # Shard-local packet position for fault triggers: packets this
        # worker's detectors have processed (resumes across restore).
        processed = sum(d.stats.packets for d in detectors.values())

        def single():
            if len(detectors) == 1:
                return next(iter(detectors.values()))
            return None

        solo = single()
        kill_at = stall_at = None
        stall_s = 0.0
        if faults is not None:
            kill_at, stall_at, stall_s = faults
        while True:
            message = in_queue.get()
            if heartbeat is not None:
                heartbeat[index] = time.monotonic()
            kind = message[0]
            if kind == "packets":
                if solo is not None and kill_at is None and stall_at is None:
                    observe = solo.observe
                    for time_ns, size, fid in message[1]:
                        observe(Packet(time_ns, size, fid))
                    processed += len(message[1])
                else:
                    for time_ns, size, fid in message[1]:
                        position = processed + 1
                        if stall_at is not None and position >= stall_at:
                            stall_at = None
                            time.sleep(stall_s)
                        if kill_at is not None and position >= kill_at:
                            os._exit(KILL_EXIT_CODE)
                        detectors[router(fid)].observe(
                            Packet(time_ns, size, fid)
                        )
                        processed += 1
            elif kind == "snapshot":
                out_queue.put((
                    "snapshot",
                    index,
                    message[1],
                    {
                        slot: detector.snapshot()
                        for slot, detector in detectors.items()
                    },
                ))
            elif kind == "extract":
                # In-band freeze barrier: everything queued before this
                # marker is already processed, so the extracted states
                # sit at an exact sub-stream boundary.  Unknown slots
                # are skipped (a rollback extract-and-discard probes
                # targets that may hold nothing).
                taken = {}
                for slot in message[1]:
                    detector = detectors.pop(slot, None)
                    if detector is not None:
                        taken[slot] = detector.snapshot()
                solo = single()
                processed = sum(
                    d.stats.packets for d in detectors.values()
                )
                out_queue.put(("extracted", index, message[2], taken))
            elif kind == "install":
                try:
                    for slot, state in message[1].items():
                        detectors[slot] = build(state)
                except Exception:
                    # Decode-verified state that still fails to restore:
                    # ship the failure, then die with the migration-
                    # abort code so the parent/supervisor classify it.
                    import traceback

                    out_queue.put(("error", index, traceback.format_exc()))
                    out_queue.close()
                    out_queue.join_thread()
                    os._exit(MIGRATION_ABORT_EXIT_CODE)
                solo = single()
                processed = sum(
                    d.stats.packets for d in detectors.values()
                )
                out_queue.put((
                    "installed", index, message[2], sorted(detectors)
                ))
            elif kind == "reconfig":
                # In-band apply barrier (the hot-reconfiguration path):
                # everything queued before this marker is processed, so
                # each hosted slot's state sits at an exact sub-stream
                # boundary.  Build-all-then-swap: on any failure the old
                # detectors keep serving and the failure ships in-band —
                # the worker stays alive (unlike an install failure, the
                # process state is untouched and still trustworthy).
                old_config = config
                try:
                    config = message[1]
                    rebuilt = {
                        slot: build(
                            reconfigure_state(detector.snapshot(), config)
                        )
                        for slot, detector in detectors.items()
                    }
                except Exception:
                    import traceback

                    config = old_config
                    out_queue.put((
                        "reconfigured",
                        index,
                        message[2],
                        {"ok": False, "error": traceback.format_exc()},
                    ))
                else:
                    detectors = rebuilt
                    solo = single()
                    out_queue.put((
                        "reconfigured", index, message[2], {"ok": True}
                    ))
            elif kind == "stop":
                out_queue.put((
                    "done",
                    index,
                    {
                        slot: detector.snapshot()
                        for slot, detector in detectors.items()
                    },
                ))
                if len(message) > 1 and message[1] == "drain":
                    # Graceful drain: flush the reply onto the pipe, then
                    # exit with the drain code so the parent (and any
                    # process supervisor) can tell this apart from a
                    # clean end-of-stream stop.
                    out_queue.close()
                    out_queue.join_thread()
                    os._exit(DRAIN_EXIT_CODE)
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown message kind {kind!r}")
    except InvariantViolation as violation:
        # Ship the forensics, make sure the feeder thread has flushed
        # them onto the pipe, then die with the dedicated exit code: the
        # parent must see a permanent failure, not a restartable crash.
        out_queue.put(("invariant", index, violation.as_dict()))
        out_queue.close()
        out_queue.join_thread()
        os._exit(INVARIANT_EXIT_CODE)
    except Exception:  # pragma: no cover - exercised only on worker crash
        import traceback

        out_queue.put(("error", index, traceback.format_exc()))


class MultiprocessEngine:
    """Sharded EARDet across OS processes, same interface and snapshot
    schema as :class:`~repro.service.engine.InProcessEngine` — including
    the live-migration primitives (slots move between worker processes
    through in-band extract/install barriers).

    Workers start lazily on first ingestion; :meth:`restore` must
    therefore be called (if at all) before any packet is ingested.
    :meth:`close` performs the graceful drain: staging buffers are
    flushed, every worker finishes its queue, returns its final exact
    state, and exits.
    """

    def __init__(
        self,
        config: EARDetConfig,
        shards: int = 1,
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        fault_plan=None,
        dead_letter: Optional[DeadLetterSink] = None,
        invariant_every: Optional[int] = None,
        overload: Optional[OverloadPolicy] = None,
        put_timeout_s: Optional[float] = None,
        watcher=None,
        slots: Optional[int] = None,
        terminate_grace_s: float = TERMINATE_GRACE_S,
    ):
        if shards < 1:
            raise ValueError(f"need at least 1 shard, got {shards}")
        if terminate_grace_s <= 0:
            raise ValueError(
                f"terminate_grace_s must be > 0, got {terminate_grace_s}"
            )
        if slots is None:
            slots = shards
        if slots < shards:
            raise ValueError(
                f"need at least as many slots as shards, got {slots} slots "
                f"for {shards} shards"
            )
        if chunk_size < 1:
            raise ValueError(f"chunk size must be positive, got {chunk_size}")
        if queue_capacity < 1:
            raise ValueError(
                f"queue capacity must be positive, got {queue_capacity}"
            )
        if put_timeout_s is None and overload is not None:
            put_timeout_s = overload.put_timeout_s
        if put_timeout_s is not None and put_timeout_s <= 0:
            raise ValueError(
                f"put_timeout_s must be > 0 or None, got {put_timeout_s}"
            )
        self.config = config
        self.chunk_size = chunk_size
        self.queue_capacity = queue_capacity
        self.terminate_grace_s = terminate_grace_s
        self._shards = shards
        self._layout = ShardLayout.default(slots, shards)
        self._assignment: List[int] = list(self._layout.assignment)
        self._hash = StageHash(seed=seed, buckets=slots)
        self._route = FlowRouter(self._hash)
        # Staging buffers hold wire tuples, not Packet objects — see the
        # module docstring on the producer's per-packet budget.
        self._buffers: List[list] = [[] for _ in range(shards)]
        self._accepted = 0
        self._barrier_token = 0
        self._slot_states: Optional[List] = None
        self._final_snapshot: Optional[Dict[str, object]] = None
        self._plan = fault_plan
        self._dead_letter = dead_letter
        self.invariant_every = invariant_every
        self._routed = [0] * shards
        self._dropped = [0] * shards
        self._first_loss: List[Optional[int]] = [None] * shards
        self._loss_reason = [""] * shards
        # Operational telemetry (parent-side, no barrier needed): queue
        # high water is sampled when a chunk ships — the only moment the
        # in-flight depth can grow — and the last-packet timestamp is
        # stamped on the routing path.
        self._queue_high_water = [0] * shards
        self._last_packet_ts: List[Optional[int]] = [None] * shards
        self.put_timeout_s = put_timeout_s
        self.overload_policy = overload
        # Ladder state lives parent-side: admission happens where packets
        # are routed, so rung buffers hold the same cheap wire tuples the
        # staging buffers do.
        self._overload: Optional[List[ShardOverload[tuple]]] = None
        if overload is not None:
            self._overload = [
                ShardOverload(overload, lambda t, s, f: (t, s, f))
                for _ in range(shards)
            ]
        # The watcher stage lives parent-side, on the routing path
        # (slot-granular): it needs no worker protocol, checkpoints
        # synchronously with the parent's loss accounting, keeps
        # observing while a shard queue is full or a worker is being
        # restarted — and never physically moves during a migration.
        if watcher is not None and watcher.shard_count != slots:
            raise ValueError(
                f"watcher stage has {watcher.shard_count} watchers, engine "
                f"has {slots} slots (the stage is slot-granular)"
            )
        self.watcher = watcher
        self._context = multiprocessing.get_context()
        self._queues = None
        self._results = None
        self._processes = None
        self._heartbeats = None

    # -- introspection -----------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self._layout.shards

    @property
    def slot_count(self) -> int:
        return self._layout.slots

    @property
    def layout(self) -> ShardLayout:
        """The current (versioned) slot→shard assignment."""
        return self._layout

    @property
    def seed(self) -> int:
        return self._hash.seed

    @property
    def accepted(self) -> int:
        return self._accepted

    @property
    def dropped(self) -> int:
        """Packets shed parent-side (injected drop faults only; the
        blocking bounded queues themselves never shed load)."""
        return sum(self._dropped)

    @property
    def routed(self) -> List[int]:
        """Per-shard arrival counts (the coordinator's load signal)."""
        return list(self._routed)

    @property
    def running(self) -> bool:
        return self._processes is not None

    def slot_of(self, fid: FlowId) -> int:
        """Which slot a flow hashes to (layout-independent)."""
        return self._route(fid)

    def shard_of(self, fid: FlowId) -> int:
        """Which shard currently hosts a flow's slot."""
        return self._assignment[self._route(fid)]

    def queue_depths(self) -> List[int]:
        """Staged packets plus in-flight chunks per shard (parent-side
        view; no barrier)."""
        depths = []
        for index in range(self._shards):
            depth = len(self._buffers[index]) if self._buffers else 0
            if self._queues is not None:
                try:
                    depth += self._queues[index].qsize()
                except NotImplementedError:  # pragma: no cover - macOS
                    pass
            depths.append(depth)
        return depths

    @property
    def queue_high_water(self) -> List[int]:
        """Highest parent-side queue depth each shard has reached."""
        return list(self._queue_high_water)

    @property
    def last_packet_ts(self) -> List[Optional[int]]:
        """Stream timestamp of the last packet routed to each shard."""
        return list(self._last_packet_ts)

    # -- liveness ----------------------------------------------------------

    def dead_shards(self) -> List[int]:
        """Indices of shard workers that have exited (empty if the fleet
        is not running)."""
        if self._processes is None:
            return []
        return [
            index
            for index, process in enumerate(self._processes)
            if not process.is_alive()
        ]

    def check_workers(self) -> None:
        """Raise :class:`ShardCrashError` for the first dead worker.

        Called per ingested batch (and by the supervisor's monitor), so a
        crash surfaces within one batch instead of at the next barrier.
        Marks a pending injected kill as fired, so a supervised rebuild
        of this plan does not re-arm it.
        """
        for index in self.dead_shards():
            self._raise_dead(index)

    def _raise_dead(self, index: int) -> None:
        exit_code = self._processes[index].exitcode
        if exit_code == INVARIANT_EXIT_CODE:
            self._raise_invariant_death(index)
        if self._plan is not None:
            self._plan.mark_kill_fired(index)
        raise ShardCrashError(
            f"shard {index} worker died (exit code {exit_code})",
            shard=index,
            exit_code=exit_code,
        )

    def _raise_invariant_death(self, index: int) -> None:
        """A worker exited with :data:`INVARIANT_EXIT_CODE`: recover the
        forensics it flushed onto the results queue before dying, and
        raise the (permanent) violation in the parent."""
        from ..guard import InvariantViolation

        deadline = time.monotonic() + DEAD_REPLY_GRACE_S
        while time.monotonic() < deadline:
            try:
                message = self._results.get(timeout=LIVENESS_POLL_S)
            except queue_module.Empty:
                continue
            if message[0] == "invariant":
                raise _invariant_from_payload(message[2])
            # Anything else here is a stale barrier reply; drop it — the
            # engine is about to be torn down.
        raise InvariantViolation(
            f"shard {index} worker died with the invariant exit code "
            f"({INVARIANT_EXIT_CODE}) but its forensics reply was lost",
            check="unknown",
            detector="eardet",
        )

    def heartbeat_ages(self) -> List[float]:
        """Seconds since each shard's last heartbeat (zeros before the
        fleet starts).  The supervisor compares these against its stall
        timeout to catch wedged-but-alive workers."""
        if self._heartbeats is None:
            return [0.0] * self._shards
        now = time.monotonic()
        return [
            max(0.0, now - self._heartbeats[index])
            for index in range(self._shards)
        ]

    # -- lifecycle ---------------------------------------------------------

    def _start(self) -> None:
        if self._processes is not None:
            return
        if self._final_snapshot is not None:
            raise RuntimeError("engine already closed")
        ctx = self._context
        self._queues = [
            ctx.Queue(maxsize=self.queue_capacity) for _ in range(self._shards)
        ]
        self._results = ctx.Queue()
        # Fixed-capacity heartbeat array: workers hold references, so it
        # cannot grow when a reshard spawns shards later.
        self._heartbeats = ctx.Array(
            "d", max(self._shards, MAX_WORKER_SHARDS), lock=False
        )
        now = time.monotonic()
        for index in range(len(self._heartbeats)):
            self._heartbeats[index] = now
        self._processes = []
        for index in range(self._shards):
            self._spawn_worker(index)

    def _spawn_worker(self, index: int) -> None:
        """Start the worker process hosting shard ``index``'s slots."""
        slot_ids = self._layout.slots_of(index)
        initial = None
        if self._slot_states is not None:
            initial = {
                slot: self._slot_states[slot]
                for slot in slot_ids
                if self._slot_states[slot] is not None
            }
        faults = None
        if self._plan is not None:
            kill_at = self._plan.kill_at(index)
            stall = self._plan.stall_for(index)
            if kill_at is not None or stall is not None:
                faults = (
                    kill_at,
                    stall.at if stall is not None else None,
                    stall.duration_s if stall is not None else 0.0,
                )
        process = self._context.Process(
            target=_shard_worker,
            args=(
                index,
                self.config,
                self._layout.slots,
                self._hash.seed,
                slot_ids,
                initial,
                self._queues[index],
                self._results,
                self._heartbeats,
                faults,
                self.invariant_every,
            ),
            daemon=True,
        )
        process.start()
        self._processes.append(process)

    def _put(self, index: int, message) -> None:
        """Bounded put that notices a dead consumer — and, when
        ``put_timeout_s`` is set, a merely *overloaded* one.

        A plain ``Queue.put`` on a full queue whose worker died blocks
        forever (the semaphore is only released by ``get``); polling with
        a short timeout turns that hang into a :class:`ShardCrashError`
        within ``LIVENESS_POLL_S``.  With ``put_timeout_s`` set, a queue
        that stays full past it while the worker is *alive* raises a
        typed :class:`~repro.service.errors.OverloadError` instead of
        blocking indefinitely (or letting a bare ``queue.Full`` escape).
        """
        deadline = (
            None
            if self.put_timeout_s is None
            else time.monotonic() + self.put_timeout_s
        )
        while True:
            try:
                self._queues[index].put(message, timeout=LIVENESS_POLL_S)
                return
            except queue_module.Full:
                if not self._processes[index].is_alive():
                    self._raise_dead(index)
                if deadline is not None and time.monotonic() >= deadline:
                    raise OverloadError(
                        f"shard {index} queue stayed full for "
                        f"{self.put_timeout_s}s (capacity "
                        f"{self.queue_capacity} chunks) with a live worker",
                        shard=index,
                        queue_depth=self.queue_capacity,
                        queue_capacity=self.queue_capacity,
                    )

    def ingest(self, batch: List[Packet]) -> None:
        """Route packets into per-shard staging buffers, shipping each
        buffer as a chunk once it fills (blocking on a full shard queue —
        the backpressure path)."""
        self._start()
        if self._processes is not None:
            self.check_workers()
        if self._overload is not None:
            self._ingest_overload(batch)
            return
        buffers = self._buffers
        route = self._route
        assignment = self._assignment
        routed = self._routed
        last_ts = self._last_packet_ts
        chunk_size = self.chunk_size
        plan = self._plan
        watcher = self.watcher
        for packet in batch:
            fid = packet.fid
            slot = route(fid)
            index = assignment[slot]
            routed[index] += 1
            last_ts[index] = packet.time
            if watcher is not None:
                watcher.observe(packet, slot)
            if plan is not None and plan.should_drop(index, routed[index]):
                self._record_loss(index, packet, "injected-drop", slot=slot)
                continue
            buffer = buffers[index]
            buffer.append((packet.time, packet.size, fid))
            if len(buffer) >= chunk_size:
                self._put(index, ("packets", buffer))
                buffers[index] = []
                self._note_high_water(index)
        self._accepted += len(batch)

    def _ingest_overload(self, batch: List[Packet]) -> None:
        """Ladder-mediated ingest: one occupancy observation per shard
        per batch, each packet admitted at its shard's current rung,
        deferred-deadline clock advanced at the end.

        Occupancy is measured in packets — staged tuples plus in-flight
        chunks times the chunk size — against ``queue_capacity *
        chunk_size``.  On platforms without ``Queue.qsize`` (macOS) only
        the staging depth is visible, so the ladder under-escalates
        there; the blocking/``put_timeout_s`` backstop still bounds
        memory.
        """
        states = self._overload
        assert states is not None
        route = self._route
        assignment = self._assignment
        routed = self._routed
        last_ts = self._last_packet_ts
        plan = self._plan
        watcher = self.watcher
        capacity = self.queue_capacity * self.chunk_size
        for index, state in enumerate(states):
            for item in state.observe(self._depth_packets(index), capacity):
                self._stage(index, item)
        for packet in batch:
            fid = packet.fid
            slot = route(fid)
            index = assignment[slot]
            routed[index] += 1
            last_ts[index] = packet.time
            if watcher is not None:
                watcher.observe(packet, slot)
            if plan is not None and plan.should_drop(index, routed[index]):
                self._record_loss(index, packet, "injected-drop", slot=slot)
                continue
            emitted = states[index].admit(
                packet.time, packet.size, fid, (packet.time, packet.size, fid)
            )
            if emitted is None:
                self._record_loss(index, packet, "overload-shed", slot=slot)
                continue
            for item in emitted:
                self._stage(index, item)
        for index, state in enumerate(states):
            for item in state.on_batch_end():
                self._stage(index, item)
        self._accepted += len(batch)

    def _depth_packets(self, index: int) -> int:
        """Parent-visible shard backlog in packets (staging + in-flight)."""
        depth = len(self._buffers[index])
        if self._queues is not None:
            try:
                depth += self._queues[index].qsize() * self.chunk_size
            except NotImplementedError:  # pragma: no cover - macOS
                pass
        return depth

    def _stage(self, index: int, item: tuple) -> None:
        buffer = self._buffers[index]
        buffer.append(item)
        if len(buffer) >= self.chunk_size:
            self._put(index, ("packets", buffer))
            self._buffers[index] = []
            self._note_high_water(index)

    def _note_high_water(self, index: int) -> None:
        """Sample the shard's in-flight chunk count right after a chunk
        ships — the only moment the parent-side depth can grow.  Uses the
        same unit as ``queue_depth`` (chunks; the staging buffer is empty
        at this point)."""
        if self._queues is None:
            return
        try:
            depth = self._queues[index].qsize()
        except NotImplementedError:  # pragma: no cover - macOS
            return
        if depth > self._queue_high_water[index]:
            self._queue_high_water[index] = depth

    def _record_loss(
        self,
        index: int,
        packet: Packet,
        reason: str,
        slot: Optional[int] = None,
    ) -> None:
        self._dropped[index] += 1
        if self._first_loss[index] is None:
            self._first_loss[index] = packet.time
            self._loss_reason[index] = reason
        if self._dead_letter is not None:
            # The consistent dead-letter tuple: shard, slot, 1-based
            # shard-local arrival index (== routed count at loss time).
            self._dead_letter.record(
                packet, index, reason, slot=slot, index=self._routed[index]
            )

    def flush(self) -> None:
        """Ship all staged partial chunks to the workers.

        Unlike the in-process engine this does *not* wait for workers to
        finish processing; :meth:`snapshot` and :meth:`close` insert
        barriers when a processed-up-to-here point is needed.
        """
        if self._processes is None:
            return
        if self._overload is not None:
            for index, state in enumerate(self._overload):
                for item in state.flush():
                    self._stage(index, item)
        for index, buffer in enumerate(self._buffers):
            if buffer:
                self._put(index, ("packets", buffer))
                self._buffers[index] = []

    def close(self, drain: bool = False) -> Dict[str, object]:
        """Graceful drain: flush (including any ladder rung buffers),
        stop every worker, collect final exact states; returns the final
        engine snapshot.  With ``drain=True`` workers exit with
        :data:`DRAIN_EXIT_CODE` instead of 0, marking a requested drain
        rather than source exhaustion."""
        if self._final_snapshot is not None:
            return self._final_snapshot
        if self._processes is None:
            # Never started: state is just the initial (possibly restored)
            # per-shard states.
            self._start()
        self.flush()
        stop = ("stop", "drain") if drain else ("stop",)
        for index in range(self._shards):
            self._put(index, stop)
        states = self._collect("done")
        for process in self._processes:
            process.join(timeout=REPLY_TIMEOUT_S)
        for queue in self._queues:
            queue.close()
        self._results.close()
        self._processes = None
        self._queues = None
        self._results = None
        self._heartbeats = None
        self._final_snapshot = self._assemble(states)
        return self._final_snapshot

    def terminate(self) -> None:
        """Hard-kill workers (crash recovery / emergency shutdown);
        discards in-flight state.  Safe to call when some — or all —
        workers have already died, and idempotent.  Escalates to
        SIGKILL after a grace of ``terminate_grace_s`` seconds
        (default :data:`TERMINATE_GRACE_S`): a worker that ignores
        SIGTERM (e.g. a masked or inherited handler) must not stall
        crash recovery for ``REPLY_TIMEOUT_S`` per process.  Chaos
        tests and fast CI teardown shrink the grace via the
        constructor / ``--terminate-grace``."""
        if self._processes is None:
            return
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=self.terminate_grace_s)
            if process.is_alive():
                process.kill()
                process.join(timeout=REPLY_TIMEOUT_S)
        for queue in self._queues:
            queue.close()
        if self._results is not None:
            self._results.close()
        self._processes = None
        self._queues = None
        self._results = None
        self._heartbeats = None

    # -- hot reconfiguration -----------------------------------------------

    def apply_config(self, config: EARDetConfig) -> None:
        """Swap every hosted slot detector onto ``config`` through an
        in-band ``reconfig`` barrier on every shard queue (see
        :meth:`InProcessEngine.apply_config` for the contract).

        Each worker is individually atomic (build-all-then-swap; a
        failure leaves its old detectors serving and ships the error
        in-band without killing the process).  On a *partial* fleet
        failure this raises :class:`~repro.core.eardet.
        ReconfigurationError` and leaves a mixed fleet — the retune
        executor's rollback (``apply_config(old_config)``) restores
        consistency, and always succeeds because adapting back never
        shrinks below occupancy.
        """
        if self._final_snapshot is not None:
            raise RuntimeError("engine already closed")
        if self._processes is None:
            # Workers not yet started: adapt any staged (restored) slot
            # states so they build under the new config at spawn.
            if self._slot_states is not None:
                self._slot_states = [
                    reconfigure_state(state, config)
                    if state is not None
                    else None
                    for state in self._slot_states
                ]
            self.config = config
            return
        self.check_workers()
        self.flush()
        self._barrier_token += 1
        token = self._barrier_token
        for index in range(self._shards):
            self._put(index, ("reconfig", config, token))
        replies = self._collect("reconfigured", token)
        failures = {
            index: reply["error"]
            for index, reply in replies.items()
            if not reply["ok"]
        }
        if failures:
            from ..core.eardet import ReconfigurationError

            detail = "; ".join(
                f"shard {index}: {error.strip().splitlines()[-1]}"
                for index, error in sorted(failures.items())
            )
            raise ReconfigurationError(
                f"{len(failures)}/{self._shards} shard workers refused the "
                f"new configuration ({detail}); fleet may be mixed — "
                "roll back by re-applying the previous config"
            )
        self.config = config

    # -- live migration ----------------------------------------------------

    def prepare_migration(self, plan: MigrationPlan) -> None:
        """Freeze phase: release ladder rung buffers and staged chunks
        onto the worker queues (preserving per-flow order across the
        cut), and spawn workers for any new target shards.

        No full drain is needed: the subsequent ``extract`` message is
        an *in-band* barrier — each source worker answers it only after
        everything queued ahead of it, which is exactly the freeze
        point."""
        plan.validate(self._layout)
        self._start()
        self.check_workers()
        self.flush()
        self._ensure_shards(plan.target_shards)

    def extract_slots(self, slot_ids: List[int]) -> Dict[int, Dict[str, object]]:
        """Extract phase: in-band snapshot-and-detach of the named slots
        from the shards currently hosting them."""
        by_shard: Dict[int, List[int]] = {}
        for slot in slot_ids:
            by_shard.setdefault(self._assignment[slot], []).append(slot)
        return self._extract_from(by_shard)

    def _extract_from(
        self, by_shard: Dict[int, List[int]]
    ) -> Dict[int, Dict[str, object]]:
        """Send extract barriers to an explicit shard→slots map (the
        rollback path probes migration *targets*, which may hold only
        some — or none — of the slots; workers return what they have)."""
        if not by_shard:
            return {}
        self._barrier_token += 1
        token = self._barrier_token
        for index, slots in by_shard.items():
            self._put(index, ("extract", list(slots), token))
        replies = self._collect(
            "extracted", token, indices=list(by_shard)
        )
        extracted: Dict[int, Dict[str, object]] = {}
        for taken in replies.values():
            extracted.update(taken)
        return extracted

    def install_slots(
        self,
        slot_states: Dict[int, Dict[str, object]],
        assignment: Dict[int, int],
    ) -> None:
        """Install phase: hand each target worker the decode-verified
        states of the slots it will host, and wait for acknowledgements
        (a worker that cannot restore the state ships the error and
        exits with :data:`MIGRATION_ABORT_EXIT_CODE`)."""
        by_shard: Dict[int, Dict[int, Dict[str, object]]] = {}
        for slot, state in slot_states.items():
            shard = assignment[int(slot)]
            if shard >= self._shards:
                raise ValueError(
                    f"slot {slot} targets shard {shard}, which was never "
                    f"provisioned (prepare_migration not run?)"
                )
            by_shard.setdefault(shard, {})[int(slot)] = state
        if not by_shard:
            return
        self._barrier_token += 1
        token = self._barrier_token
        for index, states in by_shard.items():
            self._put(index, ("install", states, token))
        self._collect("installed", token, indices=list(by_shard))

    def commit_layout(self, layout: ShardLayout) -> None:
        """Cutover phase: atomically swap the parent's slot→shard
        assignment.  Workers never route, so this is parent-local."""
        if layout.slots != self._layout.slots:
            raise ValueError(
                f"layout has {layout.slots} slots, engine has "
                f"{self._layout.slots}"
            )
        if layout.shards > self._shards:
            raise ValueError(
                f"layout spans {layout.shards} shards but only "
                f"{self._shards} are provisioned"
            )
        self._layout = layout
        self._assignment = list(layout.assignment)

    def abort_migration(
        self,
        plan: MigrationPlan,
        extracted: Dict[int, Dict[str, object]],
    ) -> None:
        """Rollback: extract-and-discard any partially installed copies
        from the targets (workers answer with only the slots they hold),
        then reinstall the extracted states on their sources.  The
        assignment was never swapped, so routing is already correct."""
        targets: Dict[int, List[int]] = {}
        for move in plan.moves:
            if move.target < self._shards:
                targets.setdefault(move.target, []).append(move.slot)
        self._extract_from(targets)  # discard partial installs
        if extracted:
            self.install_slots(extracted, plan.assignment_before())

    def _ensure_shards(self, shards: int) -> None:
        """Provision runtime resources (queue, worker process, arrays)
        for shards up to index ``shards - 1``.  Never shrinks — a
        merged-away shard stays up as an idle hot spare."""
        if shards <= self._shards:
            return
        if self._heartbeats is not None and shards > len(self._heartbeats):
            raise MigrationError(
                f"cannot grow to {shards} shards: the heartbeat array was "
                f"sized for {len(self._heartbeats)} at fleet start "
                f"(MAX_WORKER_SHARDS)",
                phase="freeze",
                rolled_back=True,
            )
        grow = shards - self._shards
        self._buffers.extend([] for _ in range(grow))
        self._routed.extend([0] * grow)
        self._dropped.extend([0] * grow)
        self._first_loss.extend([None] * grow)
        self._loss_reason.extend([""] * grow)
        self._queue_high_water.extend([0] * grow)
        self._last_packet_ts.extend([None] * grow)
        if self._overload is not None:
            self._overload.extend(
                ShardOverload(self.overload_policy, lambda t, s, f: (t, s, f))
                for _ in range(grow)
            )
        first_new = self._shards
        self._shards = shards
        if self._processes is not None:
            for index in range(first_new, shards):
                self._queues.append(
                    self._context.Queue(maxsize=self.queue_capacity)
                )
                self._spawn_worker(index)

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Exact engine state via an in-band barrier on every shard."""
        if self._final_snapshot is not None:
            return self._final_snapshot
        self._start()
        self.flush()
        self._barrier_token += 1
        token = self._barrier_token
        for index in range(self._shards):
            self._put(index, ("snapshot", token))
        states = self._collect("snapshot", token)
        return self._assemble(states)

    def restore(self, state: Dict[str, object]) -> None:
        """Stage a snapshot for the (not yet started) workers.

        Adopts the snapshot's layout — shard count, slot assignment,
        epoch — exactly like :meth:`InProcessEngine.restore`; seed and
        slot count stay strict."""
        if self._processes is not None or self._final_snapshot is not None:
            raise RuntimeError("restore() must precede any ingestion")
        fmt = state.get("format")
        if fmt != ENGINE_SNAPSHOT_FORMAT:
            raise ValueError(f"unsupported engine snapshot format {fmt!r}")
        if state["seed"] != self._hash.seed:
            raise ValueError(
                f"snapshot hash seed {state['seed']} != engine seed "
                f"{self._hash.seed}; flows would route to different slots"
            )
        slot_states = list(state["shards"])
        slots = int(state.get("slots") or len(slot_states))
        if slots != self._layout.slots:
            raise ValueError(
                f"snapshot has {slots} slots, engine has "
                f"{self._layout.slots}; flows would route to different "
                "sub-streams"
            )
        if len(slot_states) != slots:
            raise ValueError(
                f"snapshot carries {len(slot_states)} slot states for "
                f"{slots} slots"
            )
        layout_state = state.get("layout")
        if layout_state is not None:
            layout = ShardLayout.from_dict(layout_state)
        else:
            layout = ShardLayout.default(slots, int(state["shard_count"]))
        self._layout = layout
        self._assignment = list(layout.assignment)
        shards = layout.shards
        self._shards = shards
        self._buffers = [[] for _ in range(shards)]
        if self._overload is not None and len(self._overload) < shards:
            self._overload.extend(
                ShardOverload(self.overload_policy, lambda t, s, f: (t, s, f))
                for _ in range(shards - len(self._overload))
            )
        self._slot_states = slot_states
        self._accepted = state["accepted"]

        def _per_shard(key, default):
            values = state.get(key)
            if not values:
                return [default] * shards
            values = list(values)
            return values + [default] * (shards - len(values))

        self._dropped = _per_shard("dropped", 0)
        self._first_loss = _per_shard("first_loss", None)
        self._loss_reason = _per_shard("loss_reason", "")
        self._queue_high_water = _per_shard("queue_high_water", 0)
        self._last_packet_ts = _per_shard("last_packet_ts", None)
        routed = state.get("routed")
        if routed is not None:
            self._routed = list(routed) + [0] * (shards - len(routed))
        else:
            self._routed = [
                slot_state["stats"]["packets"] + dropped
                for slot_state, dropped in zip(slot_states, self._dropped)
            ]
        overload_state = state.get("overload")
        if overload_state is not None and self._overload is not None:
            for shard_overload, shard_state in zip(
                self._overload, overload_state
            ):
                shard_overload.restore(shard_state)
        watcher_state = state.get("watcher")
        if watcher_state is not None and self.watcher is not None:
            self.watcher.restore(watcher_state)

    def _collect(
        self,
        kind: str,
        token: Optional[int] = None,
        indices: Optional[Iterable[int]] = None,
    ) -> Dict[int, object]:
        """Gather one ``kind`` reply per addressed shard from the shared
        result queue, surfacing worker crashes as structured errors.

        Polls with a short timeout so a worker that dies while we wait is
        noticed in ``LIVENESS_POLL_S + DEAD_REPLY_GRACE_S`` (the grace
        window lets a reply the dying worker's feeder thread already
        flushed still arrive) instead of after ``REPLY_TIMEOUT_S``.
        """
        if indices is None:
            indices = range(self._shards)
        pending = set(indices)
        states: Dict[int, object] = {}
        deadline = time.monotonic() + REPLY_TIMEOUT_S
        dead_grace: Dict[int, float] = {}
        while pending:
            try:
                message = self._results.get(timeout=LIVENESS_POLL_S)
            except queue_module.Empty:
                now = time.monotonic()
                if now > deadline:
                    raise WorkerError(
                        f"timed out waiting for {len(pending)} worker replies"
                    )
                for index in list(pending):
                    if self._processes[index].is_alive():
                        continue
                    expires = dead_grace.setdefault(
                        index, now + DEAD_REPLY_GRACE_S
                    )
                    if now > expires:
                        self._raise_dead(index)
                continue
            if message[0] == "error":
                raise WorkerError(
                    f"shard {message[1]} crashed:\n{message[2]}",
                    shard=message[1],
                )
            if message[0] == "invariant":
                raise _invariant_from_payload(message[2])
            if message[0] != kind or (token is not None and message[2] != token):
                # A stale reply from an earlier barrier; ignore.
                continue
            index = message[1]
            if index not in pending:
                continue
            states[index] = (
                message[2] if kind == "done" else message[3]
            )
            pending.discard(index)
        return states

    def _assemble(self, states: Dict[int, Dict]) -> Dict[str, object]:
        """Merge per-worker ``{slot: state}`` replies into the shared
        slot-indexed snapshot schema."""
        layout = self._layout
        slot_states: List = [None] * layout.slots
        for mapping in states.values():
            for slot, slot_state in mapping.items():
                slot_states[int(slot)] = slot_state
        missing = [
            slot for slot, value in enumerate(slot_states) if value is None
        ]
        if missing:
            raise WorkerError(
                f"snapshot barrier returned no state for slots {missing}"
            )
        return {
            "format": ENGINE_SNAPSHOT_FORMAT,
            "seed": self._hash.seed,
            "shard_count": layout.shards,
            "accepted": self._accepted,
            "dropped": list(self._dropped),
            "first_loss": list(self._first_loss),
            "loss_reason": list(self._loss_reason),
            "queue_high_water": list(self._queue_high_water),
            "last_packet_ts": list(self._last_packet_ts),
            "routed": list(self._routed),
            "overload": (
                [state.snapshot() for state in self._overload]
                if self._overload is not None
                else None
            ),
            "watcher": (
                self.watcher.snapshot() if self.watcher is not None else None
            ),
            "slots": layout.slots,
            "layout": layout.as_dict(),
            "layout_epoch": layout.epoch,
            "shards": slot_states,
        }

    # -- results -----------------------------------------------------------

    def detections(self) -> Dict[FlowId, int]:
        """Merged first-detection reports (snapshot barrier if running)."""
        sink = ReportSink()
        for slot_state in self.snapshot()["shards"]:
            slot_sink = ReportSink()
            slot_sink.restore(slot_state["sink"])
            sink.merge(slot_sink)
        return sink.as_dict()

    def health(self) -> List[ShardHealth]:
        """Per-shard health from the latest snapshot barrier (slot state
        aggregated onto the hosting shard).

        ``queue_depth`` counts in-flight *chunks* (plus the staging
        buffer's packets), the meaningful backpressure signal here.
        """
        snapshot = self.snapshot()
        slot_states = snapshot["shards"]
        layout = self._layout
        watcher = self.watcher
        samples = []
        for index in range(layout.shards):
            slots = layout.slots_of(index)
            states = [slot_states[slot] for slot in slots]
            depth = len(self._buffers[index]) if self._buffers else 0
            if self._queues is not None:
                try:
                    depth += self._queues[index].qsize()
                except NotImplementedError:  # pragma: no cover - macOS
                    pass
            samples.append(
                ShardHealth(
                    shard=index,
                    packets=sum(s["stats"]["packets"] for s in states),
                    queue_depth=depth,
                    queue_capacity=self.queue_capacity,
                    detections=sum(len(s["sink"]) for s in states),
                    blacklist_size=sum(len(s["blacklist"]) for s in states),
                    dropped=self._dropped[index],
                    queue_high_water=self._queue_high_water[index],
                    last_packet_ts_ns=self._last_packet_ts[index],
                    degradation_level=(
                        self._overload[index].level.label
                        if self._overload is not None
                        else "exact"
                    ),
                    watcher_occupancy=(
                        sum(watcher.occupancy(slot) for slot in slots)
                        if watcher is not None
                        else 0
                    ),
                    watcher_verdicts=(
                        sum(
                            len(watcher.watcher(slot).detected)
                            for slot in slots
                        )
                        if watcher is not None
                        else 0
                    ),
                    slot_count=len(slots),
                )
            )
        return samples

    def overload_report(self) -> Optional[Dict[str, object]]:
        """Service-level overload summary (see
        :meth:`InProcessEngine.overload_report`); ``None`` when no
        policy is armed."""
        if self._overload is None:
            return None
        from .overload import build_overload_report

        return build_overload_report(self._overload, self.config.rho)

    def envelope(self) -> List[ExactnessEnvelope]:
        """Per-shard exactness (see :class:`InProcessEngine.envelope`)."""
        return [
            ExactnessEnvelope(
                shard=index,
                exact=self._dropped[index] == 0,
                lost_packets=self._dropped[index],
                first_loss_time_ns=self._first_loss[index],
                reason=self._loss_reason[index],
            )
            for index in range(self._shards)
        ]

    def __repr__(self) -> str:
        return (
            f"MultiprocessEngine(shards={self._shards}, "
            f"slots={self._layout.slots}, epoch={self._layout.epoch}, "
            f"accepted={self._accepted}, running={self.running})"
        )
