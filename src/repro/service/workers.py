"""Multiprocess sharded engine: one OS process per shard.

Python's GIL means the in-process engine cannot exceed one core no matter
how many shards it has; this module provides the throughput deployment.
The parent routes packets and each shard runs a full EARDet in its own
process, consuming chunks from a **bounded** ``multiprocessing.Queue`` —
when a shard falls behind, ``Queue.put`` blocks the parent, which
therefore stops pulling from the source: backpressure end to end, memory
bounded by ``shards * queue_capacity * chunk_size`` packets plus the
parent's per-shard staging buffers.

Scaling lives or dies on the *parent's* per-packet cost (it is the one
serial stage), so the routing loop is aggressively cheap: shard lookup
goes through the memoized :class:`~repro.service.engine.FlowRouter`
rather than re-hashing every packet, and chunks travel as plain
``(time, size, fid)`` tuples — several times cheaper to pickle than
``Packet`` instances — with each worker rebuilding ``Packet`` objects on
its own core, where the cost parallelizes.

Exact snapshots use **in-band barrier markers**: after flushing its
staging buffers the parent enqueues a snapshot request on every shard
queue.  Each worker replies with its state the moment it dequeues the
marker — i.e. after processing exactly the packets routed before the
marker and none after — so the assembled snapshot corresponds to an exact
stream prefix, just like :meth:`InProcessEngine.snapshot`, and uses the
same schema (the two engines' checkpoints are interchangeable).

Determinism: shards are independent and each processes its sub-stream in
arrival order, so detections, timestamps and per-shard state are
identical to the in-process engine's — only wall-clock interleaving
differs.  ``tests/test_service.py`` asserts this equivalence.

Fault tolerance (see :mod:`repro.service.supervisor`):

- every worker stamps a **heartbeat** (a shared double per shard) on each
  message and from a ticker thread, so a supervisor can distinguish
  "busy" from "wedged";
- the parent **detects dead workers promptly**: liveness is checked per
  ingested batch, whenever a bounded ``put`` blocks, and while waiting
  for barrier replies — a crashed shard surfaces as a structured
  :class:`~repro.service.errors.ShardCrashError` (with the exit code)
  instead of a 2-minute timeout;
- a :class:`~repro.service.faults.FaultPlan` can arm worker-side faults
  (kill / stall at an exact shard-local packet index) and parent-side
  injected drops, for deterministic chaos testing.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
from typing import Dict, List, Optional

from ..core.blacklist import ReportSink
from ..core.config import EARDetConfig
from ..core.eardet import EARDet
from ..detectors.hashing import StageHash
from ..model.packet import FlowId, Packet
from .engine import ENGINE_SNAPSHOT_FORMAT, FlowRouter
from .errors import OverloadError, ShardCrashError
from .health import DeadLetterSink, ExactnessEnvelope, ShardHealth
from .overload import OverloadPolicy, ShardOverload

#: Packets per chunk shipped to a worker (amortizes queue/pickle costs).
DEFAULT_CHUNK_SIZE = 2048

#: Maximum in-flight chunks per shard queue.
DEFAULT_QUEUE_CAPACITY = 8

#: Seconds to wait for a worker reply before declaring it dead.
REPLY_TIMEOUT_S = 120.0

#: Poll granularity for blocking queue operations — the latency bound on
#: noticing a dead worker while blocked.
LIVENESS_POLL_S = 0.2

#: After a worker is seen dead, how long to keep draining the results
#: queue for a reply its feeder thread may already have in flight.
DEAD_REPLY_GRACE_S = 2.0

#: How often a worker's ticker thread refreshes its heartbeat slot.
HEARTBEAT_INTERVAL_S = 0.5

#: How often a worker's watchdog thread checks that its parent still
#: exists.  A SIGKILL'd parent runs no cleanup (the daemon flag only
#: covers normal interpreter exit), so without the watchdog crashed
#: services would leave shard workers orphaned forever.
ORPHAN_POLL_S = 5.0

#: Exit code a worker uses after an invariant violation.  Distinct from
#: a crash (and from faults.KILL_EXIT_CODE) so the parent can classify
#: the death as *permanent* — corrupted algorithm state is not fixed by
#: a restart — and recover the violation's forensics from the results
#: queue.
INVARIANT_EXIT_CODE = 86

#: Exit code a worker uses after a *graceful drain* stop (SIGTERM-driven
#: shutdown, as opposed to source exhaustion).  Lets an operator tell a
#: drained worker (final state collected, nothing lost) from a clean
#: end-of-stream exit (0) without parsing logs.
DRAIN_EXIT_CODE = 75


class WorkerError(ShardCrashError):
    """A shard worker crashed; carries the worker's traceback.

    Pre-dates the structured taxonomy; kept as the exception workers'
    in-band ``("error", ...)`` replies surface as.  It *is* a
    :class:`~repro.service.errors.ShardCrashError`, so the supervisor
    treats both identically.
    """


def _invariant_from_payload(payload):
    """Rebuild a worker's :class:`~repro.guard.invariants.
    InvariantViolation` from its JSON-safe ``as_dict`` reply."""
    from ..guard import InvariantViolation

    return InvariantViolation(
        payload.get("message", "invariant violation in shard worker"),
        check=payload.get("check") or "unknown",
        detector=payload.get("detector") or "eardet",
        observed=payload.get("observed"),
        bound=payload.get("bound"),
        forensics=payload.get("forensics") or {},
    )


def _exit_when_orphaned(original_ppid, poll_s=None):
    """Watchdog loop: hard-exit the worker once its parent disappears.

    This runs in a daemon thread rather than as a timeout on the queue
    read because a crashing parent can leave the worker blocked anywhere:
    ``queue.get`` is the common case, but a parent SIGKILL'd mid-``put``
    leaves a truncated chunk in the queue pipe, and the worker then
    blocks inside ``recv`` *after* its read timeout already fired.
    ``multiprocessing.parent_process().is_alive()`` is no help either —
    under the fork start method each worker inherits the write ends of
    its earlier-forked siblings' parent sentinels, so the sentinel only
    signals once those siblings exit.  Comparing ``os.getppid()`` against
    the PID recorded at worker start sidesteps both: orphaning reparents
    the worker immediately, wherever its main thread is stuck, and
    ``os._exit`` skips interpreter teardown that could itself block on a
    dead peer.
    """
    if poll_s is None:
        poll_s = ORPHAN_POLL_S
    while True:
        time.sleep(poll_s)
        if os.getppid() != original_ppid:
            os._exit(0)


def _heartbeat_ticker(heartbeat, index, interval_s):
    """Refresh this worker's heartbeat slot even while the main thread is
    blocked on an empty queue (idle != dead)."""
    while True:
        heartbeat[index] = time.monotonic()
        time.sleep(interval_s)


def _shard_worker(
    index, config, initial_state, in_queue, out_queue, heartbeat, faults,
    invariant_every=None,
):
    """Worker loop: consume chunks until a stop message, answering
    snapshot barriers in stream order.

    ``faults`` is ``None`` or ``(kill_at, stall_at, stall_s)`` in
    shard-local packet indices — the deterministic chaos hooks.  An
    injected kill uses ``os._exit`` so the parent sees a genuinely dead
    process (no cleanup, no in-band error message), exactly like a
    segfault or an OOM kill.

    ``invariant_every`` arms an
    :class:`~repro.guard.invariants.InvariantChecker` on this shard's
    detector.  A violation ships its forensics as an in-band
    ``("invariant", index, payload)`` reply (flushed before death) and
    exits with :data:`INVARIANT_EXIT_CODE`, so the parent raises a
    *permanent* :class:`~repro.guard.invariants.InvariantViolation`
    instead of a recoverable crash.
    """
    threading.Thread(
        target=_exit_when_orphaned, args=(os.getppid(),), daemon=True
    ).start()
    if heartbeat is not None:
        threading.Thread(
            target=_heartbeat_ticker,
            args=(heartbeat, index, HEARTBEAT_INTERVAL_S),
            daemon=True,
        ).start()
    try:
        from ..guard import InvariantChecker, InvariantViolation
        from .faults import KILL_EXIT_CODE

        detector = EARDet(config)
        if invariant_every is not None:
            detector.attach_checker(InvariantChecker(invariant_every))
        if initial_state is not None:
            detector.restore(initial_state)
        kill_at = stall_at = None
        stall_s = 0.0
        if faults is not None:
            kill_at, stall_at, stall_s = faults
        while True:
            message = in_queue.get()
            if heartbeat is not None:
                heartbeat[index] = time.monotonic()
            kind = message[0]
            if kind == "packets":
                observe = detector.observe
                if kill_at is None and stall_at is None:
                    for time_ns, size, fid in message[1]:
                        observe(Packet(time_ns, size, fid))
                else:
                    stats = detector.stats
                    for time_ns, size, fid in message[1]:
                        position = stats.packets + 1
                        if stall_at is not None and position >= stall_at:
                            stall_at = None
                            time.sleep(stall_s)
                        if kill_at is not None and position >= kill_at:
                            os._exit(KILL_EXIT_CODE)
                        observe(Packet(time_ns, size, fid))
            elif kind == "snapshot":
                out_queue.put(("snapshot", index, message[1], detector.snapshot()))
            elif kind == "stop":
                out_queue.put(("done", index, detector.snapshot()))
                if len(message) > 1 and message[1] == "drain":
                    # Graceful drain: flush the reply onto the pipe, then
                    # exit with the drain code so the parent (and any
                    # process supervisor) can tell this apart from a
                    # clean end-of-stream stop.
                    out_queue.close()
                    out_queue.join_thread()
                    os._exit(DRAIN_EXIT_CODE)
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown message kind {kind!r}")
    except InvariantViolation as violation:
        # Ship the forensics, make sure the feeder thread has flushed
        # them onto the pipe, then die with the dedicated exit code: the
        # parent must see a permanent failure, not a restartable crash.
        out_queue.put(("invariant", index, violation.as_dict()))
        out_queue.close()
        out_queue.join_thread()
        os._exit(INVARIANT_EXIT_CODE)
    except Exception:  # pragma: no cover - exercised only on worker crash
        import traceback

        out_queue.put(("error", index, traceback.format_exc()))


class MultiprocessEngine:
    """Sharded EARDet across OS processes, same interface and snapshot
    schema as :class:`~repro.service.engine.InProcessEngine`.

    Workers start lazily on first ingestion; :meth:`restore` must
    therefore be called (if at all) before any packet is ingested.
    :meth:`close` performs the graceful drain: staging buffers are
    flushed, every worker finishes its queue, returns its final exact
    state, and exits.
    """

    def __init__(
        self,
        config: EARDetConfig,
        shards: int = 1,
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        fault_plan=None,
        dead_letter: Optional[DeadLetterSink] = None,
        invariant_every: Optional[int] = None,
        overload: Optional[OverloadPolicy] = None,
        put_timeout_s: Optional[float] = None,
        watcher=None,
    ):
        if shards < 1:
            raise ValueError(f"need at least 1 shard, got {shards}")
        if chunk_size < 1:
            raise ValueError(f"chunk size must be positive, got {chunk_size}")
        if queue_capacity < 1:
            raise ValueError(
                f"queue capacity must be positive, got {queue_capacity}"
            )
        if put_timeout_s is None and overload is not None:
            put_timeout_s = overload.put_timeout_s
        if put_timeout_s is not None and put_timeout_s <= 0:
            raise ValueError(
                f"put_timeout_s must be > 0 or None, got {put_timeout_s}"
            )
        self.config = config
        self.chunk_size = chunk_size
        self.queue_capacity = queue_capacity
        self._shards = shards
        self._hash = StageHash(seed=seed, buckets=shards)
        self._route = FlowRouter(self._hash)
        # Staging buffers hold wire tuples, not Packet objects — see the
        # module docstring on the producer's per-packet budget.
        self._buffers: List[list] = [[] for _ in range(shards)]
        self._accepted = 0
        self._snapshot_token = 0
        self._initial_states: Optional[List[Dict[str, object]]] = None
        self._final_snapshot: Optional[Dict[str, object]] = None
        self._plan = fault_plan
        self._dead_letter = dead_letter
        self.invariant_every = invariant_every
        self._routed = [0] * shards
        self._dropped = [0] * shards
        self._first_loss: List[Optional[int]] = [None] * shards
        self._loss_reason = [""] * shards
        # Operational telemetry (parent-side, no barrier needed): queue
        # high water is sampled when a chunk ships — the only moment the
        # in-flight depth can grow — and the last-packet timestamp is
        # stamped on the routing path.
        self._queue_high_water = [0] * shards
        self._last_packet_ts: List[Optional[int]] = [None] * shards
        self.put_timeout_s = put_timeout_s
        self.overload_policy = overload
        # Ladder state lives parent-side: admission happens where packets
        # are routed, so rung buffers hold the same cheap wire tuples the
        # staging buffers do.
        self._overload: Optional[List[ShardOverload[tuple]]] = None
        if overload is not None:
            self._overload = [
                ShardOverload(overload, lambda t, s, f: (t, s, f))
                for _ in range(shards)
            ]
        # The watcher stage lives parent-side, on the routing path: it
        # needs no worker protocol, checkpoints synchronously with the
        # parent's loss accounting, and keeps observing while a shard
        # queue is full or a worker is being restarted.
        if watcher is not None and watcher.shard_count != shards:
            raise ValueError(
                f"watcher stage has {watcher.shard_count} shards, engine "
                f"has {shards}"
            )
        self.watcher = watcher
        self._context = multiprocessing.get_context()
        self._queues = None
        self._results = None
        self._processes = None
        self._heartbeats = None

    # -- introspection -----------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self._shards

    @property
    def seed(self) -> int:
        return self._hash.seed

    @property
    def accepted(self) -> int:
        return self._accepted

    @property
    def dropped(self) -> int:
        """Packets shed parent-side (injected drop faults only; the
        blocking bounded queues themselves never shed load)."""
        return sum(self._dropped)

    @property
    def running(self) -> bool:
        return self._processes is not None

    def shard_of(self, fid: FlowId) -> int:
        return self._route(fid)

    def queue_depths(self) -> List[int]:
        """Staged packets plus in-flight chunks per shard (parent-side
        view; no barrier)."""
        depths = []
        for index in range(self._shards):
            depth = len(self._buffers[index]) if self._buffers else 0
            if self._queues is not None:
                try:
                    depth += self._queues[index].qsize()
                except NotImplementedError:  # pragma: no cover - macOS
                    pass
            depths.append(depth)
        return depths

    @property
    def queue_high_water(self) -> List[int]:
        """Highest parent-side queue depth each shard has reached."""
        return list(self._queue_high_water)

    @property
    def last_packet_ts(self) -> List[Optional[int]]:
        """Stream timestamp of the last packet routed to each shard."""
        return list(self._last_packet_ts)

    # -- liveness ----------------------------------------------------------

    def dead_shards(self) -> List[int]:
        """Indices of shard workers that have exited (empty if the fleet
        is not running)."""
        if self._processes is None:
            return []
        return [
            index
            for index, process in enumerate(self._processes)
            if not process.is_alive()
        ]

    def check_workers(self) -> None:
        """Raise :class:`ShardCrashError` for the first dead worker.

        Called per ingested batch (and by the supervisor's monitor), so a
        crash surfaces within one batch instead of at the next barrier.
        Marks a pending injected kill as fired, so a supervised rebuild
        of this plan does not re-arm it.
        """
        for index in self.dead_shards():
            self._raise_dead(index)

    def _raise_dead(self, index: int) -> None:
        exit_code = self._processes[index].exitcode
        if exit_code == INVARIANT_EXIT_CODE:
            self._raise_invariant_death(index)
        if self._plan is not None:
            self._plan.mark_kill_fired(index)
        raise ShardCrashError(
            f"shard {index} worker died (exit code {exit_code})",
            shard=index,
            exit_code=exit_code,
        )

    def _raise_invariant_death(self, index: int) -> None:
        """A worker exited with :data:`INVARIANT_EXIT_CODE`: recover the
        forensics it flushed onto the results queue before dying, and
        raise the (permanent) violation in the parent."""
        from ..guard import InvariantViolation

        deadline = time.monotonic() + DEAD_REPLY_GRACE_S
        while time.monotonic() < deadline:
            try:
                message = self._results.get(timeout=LIVENESS_POLL_S)
            except queue_module.Empty:
                continue
            if message[0] == "invariant":
                raise _invariant_from_payload(message[2])
            # Anything else here is a stale barrier reply; drop it — the
            # engine is about to be torn down.
        raise InvariantViolation(
            f"shard {index} worker died with the invariant exit code "
            f"({INVARIANT_EXIT_CODE}) but its forensics reply was lost",
            check="unknown",
            detector="eardet",
        )

    def heartbeat_ages(self) -> List[float]:
        """Seconds since each shard's last heartbeat (zeros before the
        fleet starts).  The supervisor compares these against its stall
        timeout to catch wedged-but-alive workers."""
        if self._heartbeats is None:
            return [0.0] * self._shards
        now = time.monotonic()
        return [max(0.0, now - beat) for beat in self._heartbeats]

    # -- lifecycle ---------------------------------------------------------

    def _start(self) -> None:
        if self._processes is not None:
            return
        if self._final_snapshot is not None:
            raise RuntimeError("engine already closed")
        ctx = self._context
        self._queues = [
            ctx.Queue(maxsize=self.queue_capacity) for _ in range(self._shards)
        ]
        self._results = ctx.Queue()
        self._heartbeats = ctx.Array("d", self._shards, lock=False)
        now = time.monotonic()
        for index in range(self._shards):
            self._heartbeats[index] = now
        initial = self._initial_states or [None] * self._shards
        self._processes = []
        for index in range(self._shards):
            faults = None
            if self._plan is not None:
                kill_at = self._plan.kill_at(index)
                stall = self._plan.stall_for(index)
                if kill_at is not None or stall is not None:
                    faults = (
                        kill_at,
                        stall.at if stall is not None else None,
                        stall.duration_s if stall is not None else 0.0,
                    )
            process = ctx.Process(
                target=_shard_worker,
                args=(
                    index,
                    self.config,
                    initial[index],
                    self._queues[index],
                    self._results,
                    self._heartbeats,
                    faults,
                    self.invariant_every,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    def _put(self, index: int, message) -> None:
        """Bounded put that notices a dead consumer — and, when
        ``put_timeout_s`` is set, a merely *overloaded* one.

        A plain ``Queue.put`` on a full queue whose worker died blocks
        forever (the semaphore is only released by ``get``); polling with
        a short timeout turns that hang into a :class:`ShardCrashError`
        within ``LIVENESS_POLL_S``.  With ``put_timeout_s`` set, a queue
        that stays full past it while the worker is *alive* raises a
        typed :class:`~repro.service.errors.OverloadError` instead of
        blocking indefinitely (or letting a bare ``queue.Full`` escape).
        """
        deadline = (
            None
            if self.put_timeout_s is None
            else time.monotonic() + self.put_timeout_s
        )
        while True:
            try:
                self._queues[index].put(message, timeout=LIVENESS_POLL_S)
                return
            except queue_module.Full:
                if not self._processes[index].is_alive():
                    self._raise_dead(index)
                if deadline is not None and time.monotonic() >= deadline:
                    raise OverloadError(
                        f"shard {index} queue stayed full for "
                        f"{self.put_timeout_s}s (capacity "
                        f"{self.queue_capacity} chunks) with a live worker",
                        shard=index,
                        queue_depth=self.queue_capacity,
                        queue_capacity=self.queue_capacity,
                    )

    def ingest(self, batch: List[Packet]) -> None:
        """Route packets into per-shard staging buffers, shipping each
        buffer as a chunk once it fills (blocking on a full shard queue —
        the backpressure path)."""
        self._start()
        if self._processes is not None:
            self.check_workers()
        if self._overload is not None:
            self._ingest_overload(batch)
            return
        buffers = self._buffers
        route = self._route
        routed = self._routed
        last_ts = self._last_packet_ts
        chunk_size = self.chunk_size
        plan = self._plan
        watcher = self.watcher
        for packet in batch:
            fid = packet.fid
            index = route(fid)
            routed[index] += 1
            last_ts[index] = packet.time
            if watcher is not None:
                watcher.observe(packet, index)
            if plan is not None and plan.should_drop(index, routed[index]):
                self._record_loss(index, packet, "injected-drop")
                continue
            buffer = buffers[index]
            buffer.append((packet.time, packet.size, fid))
            if len(buffer) >= chunk_size:
                self._put(index, ("packets", buffer))
                buffers[index] = []
                self._note_high_water(index)
        self._accepted += len(batch)

    def _ingest_overload(self, batch: List[Packet]) -> None:
        """Ladder-mediated ingest: one occupancy observation per shard
        per batch, each packet admitted at its shard's current rung,
        deferred-deadline clock advanced at the end.

        Occupancy is measured in packets — staged tuples plus in-flight
        chunks times the chunk size — against ``queue_capacity *
        chunk_size``.  On platforms without ``Queue.qsize`` (macOS) only
        the staging depth is visible, so the ladder under-escalates
        there; the blocking/``put_timeout_s`` backstop still bounds
        memory.
        """
        states = self._overload
        assert states is not None
        route = self._route
        routed = self._routed
        last_ts = self._last_packet_ts
        plan = self._plan
        watcher = self.watcher
        capacity = self.queue_capacity * self.chunk_size
        for index, state in enumerate(states):
            for item in state.observe(self._depth_packets(index), capacity):
                self._stage(index, item)
        for packet in batch:
            fid = packet.fid
            index = route(fid)
            routed[index] += 1
            last_ts[index] = packet.time
            if watcher is not None:
                watcher.observe(packet, index)
            if plan is not None and plan.should_drop(index, routed[index]):
                self._record_loss(index, packet, "injected-drop")
                continue
            emitted = states[index].admit(
                packet.time, packet.size, fid, (packet.time, packet.size, fid)
            )
            if emitted is None:
                self._record_loss(index, packet, "overload-shed")
                continue
            for item in emitted:
                self._stage(index, item)
        for index, state in enumerate(states):
            for item in state.on_batch_end():
                self._stage(index, item)
        self._accepted += len(batch)

    def _depth_packets(self, index: int) -> int:
        """Parent-visible shard backlog in packets (staging + in-flight)."""
        depth = len(self._buffers[index])
        if self._queues is not None:
            try:
                depth += self._queues[index].qsize() * self.chunk_size
            except NotImplementedError:  # pragma: no cover - macOS
                pass
        return depth

    def _stage(self, index: int, item: tuple) -> None:
        buffer = self._buffers[index]
        buffer.append(item)
        if len(buffer) >= self.chunk_size:
            self._put(index, ("packets", buffer))
            self._buffers[index] = []
            self._note_high_water(index)

    def _note_high_water(self, index: int) -> None:
        """Sample the shard's in-flight chunk count right after a chunk
        ships — the only moment the parent-side depth can grow.  Uses the
        same unit as ``queue_depth`` (chunks; the staging buffer is empty
        at this point)."""
        if self._queues is None:
            return
        try:
            depth = self._queues[index].qsize()
        except NotImplementedError:  # pragma: no cover - macOS
            return
        if depth > self._queue_high_water[index]:
            self._queue_high_water[index] = depth

    def _record_loss(self, index: int, packet: Packet, reason: str) -> None:
        self._dropped[index] += 1
        if self._first_loss[index] is None:
            self._first_loss[index] = packet.time
            self._loss_reason[index] = reason
        if self._dead_letter is not None:
            self._dead_letter.record(packet, index, reason)

    def flush(self) -> None:
        """Ship all staged partial chunks to the workers.

        Unlike the in-process engine this does *not* wait for workers to
        finish processing; :meth:`snapshot` and :meth:`close` insert
        barriers when a processed-up-to-here point is needed.
        """
        if self._processes is None:
            return
        if self._overload is not None:
            for index, state in enumerate(self._overload):
                for item in state.flush():
                    self._stage(index, item)
        for index, buffer in enumerate(self._buffers):
            if buffer:
                self._put(index, ("packets", buffer))
                self._buffers[index] = []

    def close(self, drain: bool = False) -> Dict[str, object]:
        """Graceful drain: flush (including any ladder rung buffers),
        stop every worker, collect final exact states; returns the final
        engine snapshot.  With ``drain=True`` workers exit with
        :data:`DRAIN_EXIT_CODE` instead of 0, marking a requested drain
        rather than source exhaustion."""
        if self._final_snapshot is not None:
            return self._final_snapshot
        if self._processes is None:
            # Never started: state is just the initial (possibly restored)
            # per-shard states.
            self._start()
        self.flush()
        stop = ("stop", "drain") if drain else ("stop",)
        for index in range(self._shards):
            self._put(index, stop)
        states = self._collect("done")
        for process in self._processes:
            process.join(timeout=REPLY_TIMEOUT_S)
        for queue in self._queues:
            queue.close()
        self._results.close()
        self._processes = None
        self._queues = None
        self._results = None
        self._heartbeats = None
        self._final_snapshot = self._assemble(states)
        return self._final_snapshot

    def terminate(self) -> None:
        """Hard-kill workers (crash recovery / emergency shutdown);
        discards in-flight state.  Safe to call when some — or all —
        workers have already died, and idempotent."""
        if self._processes is None:
            return
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=REPLY_TIMEOUT_S)
        for queue in self._queues:
            queue.close()
        if self._results is not None:
            self._results.close()
        self._processes = None
        self._queues = None
        self._results = None
        self._heartbeats = None

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Exact engine state via an in-band barrier on every shard."""
        if self._final_snapshot is not None:
            return self._final_snapshot
        self._start()
        self.flush()
        self._snapshot_token += 1
        token = self._snapshot_token
        for index in range(self._shards):
            self._put(index, ("snapshot", token))
        states = self._collect("snapshot", token)
        return self._assemble(states)

    def restore(self, state: Dict[str, object]) -> None:
        """Stage a snapshot for the (not yet started) workers."""
        if self._processes is not None or self._final_snapshot is not None:
            raise RuntimeError("restore() must precede any ingestion")
        fmt = state.get("format")
        if fmt != ENGINE_SNAPSHOT_FORMAT:
            raise ValueError(f"unsupported engine snapshot format {fmt!r}")
        if state["seed"] != self._hash.seed:
            raise ValueError(
                f"snapshot hash seed {state['seed']} != engine seed "
                f"{self._hash.seed}; flows would route to different shards"
            )
        if state["shard_count"] != self._shards:
            raise ValueError(
                f"snapshot has {state['shard_count']} shards, engine has "
                f"{self._shards}"
            )
        self._initial_states = list(state["shards"])
        self._accepted = state["accepted"]
        self._dropped = list(state.get("dropped") or [0] * self._shards)
        self._first_loss = list(
            state.get("first_loss") or [None] * self._shards
        )
        self._loss_reason = list(state.get("loss_reason") or [""] * self._shards)
        self._queue_high_water = list(
            state.get("queue_high_water") or [0] * self._shards
        )
        self._last_packet_ts = list(
            state.get("last_packet_ts") or [None] * self._shards
        )
        routed = state.get("routed")
        if routed is not None:
            self._routed = list(routed)
        else:
            self._routed = [
                shard_state["stats"]["packets"] + dropped
                for shard_state, dropped in zip(
                    self._initial_states, self._dropped
                )
            ]
        overload_state = state.get("overload")
        if overload_state is not None and self._overload is not None:
            for shard_overload, shard_state in zip(
                self._overload, overload_state
            ):
                shard_overload.restore(shard_state)
        watcher_state = state.get("watcher")
        if watcher_state is not None and self.watcher is not None:
            self.watcher.restore(watcher_state)

    def _collect(self, kind: str, token: Optional[int] = None) -> List:
        """Gather one ``kind`` reply per shard from the shared result
        queue, surfacing worker crashes as structured errors.

        Polls with a short timeout so a worker that dies while we wait is
        noticed in ``LIVENESS_POLL_S + DEAD_REPLY_GRACE_S`` (the grace
        window lets a reply the dying worker's feeder thread already
        flushed still arrive) instead of after ``REPLY_TIMEOUT_S``.
        """
        states = [None] * self._shards
        pending = self._shards
        deadline = time.monotonic() + REPLY_TIMEOUT_S
        dead_grace: Dict[int, float] = {}
        while pending:
            try:
                message = self._results.get(timeout=LIVENESS_POLL_S)
            except queue_module.Empty:
                now = time.monotonic()
                if now > deadline:
                    raise WorkerError(
                        f"timed out waiting for {pending} worker replies"
                    )
                for index, process in enumerate(self._processes):
                    if states[index] is not None or process.is_alive():
                        continue
                    expires = dead_grace.setdefault(
                        index, now + DEAD_REPLY_GRACE_S
                    )
                    if now > expires:
                        self._raise_dead(index)
                continue
            if message[0] == "error":
                raise WorkerError(
                    f"shard {message[1]} crashed:\n{message[2]}",
                    shard=message[1],
                )
            if message[0] == "invariant":
                raise _invariant_from_payload(message[2])
            if message[0] != kind or (token is not None and message[2] != token):
                # A stale reply from an earlier barrier; ignore.
                continue
            index = message[1]
            states[index] = message[3] if kind == "snapshot" else message[2]
            pending -= 1
        return states

    def _assemble(self, states: List) -> Dict[str, object]:
        return {
            "format": ENGINE_SNAPSHOT_FORMAT,
            "seed": self._hash.seed,
            "shard_count": self._shards,
            "accepted": self._accepted,
            "dropped": list(self._dropped),
            "first_loss": list(self._first_loss),
            "loss_reason": list(self._loss_reason),
            "queue_high_water": list(self._queue_high_water),
            "last_packet_ts": list(self._last_packet_ts),
            "routed": list(self._routed),
            "overload": (
                [state.snapshot() for state in self._overload]
                if self._overload is not None
                else None
            ),
            "watcher": (
                self.watcher.snapshot() if self.watcher is not None else None
            ),
            "shards": states,
        }

    # -- results -----------------------------------------------------------

    def detections(self) -> Dict[FlowId, int]:
        """Merged first-detection reports (snapshot barrier if running)."""
        sink = ReportSink()
        for shard_state in self.snapshot()["shards"]:
            shard_sink = ReportSink()
            shard_sink.restore(shard_state["sink"])
            sink.merge(shard_sink)
        return sink.as_dict()

    def health(self) -> List[ShardHealth]:
        """Per-shard health from the latest snapshot barrier.

        ``queue_depth`` counts in-flight *chunks* (plus the staging
        buffer's packets), the meaningful backpressure signal here.
        """
        snapshot = self.snapshot()
        samples = []
        for index, shard_state in enumerate(snapshot["shards"]):
            depth = len(self._buffers[index]) if self._buffers else 0
            if self._queues is not None:
                try:
                    depth += self._queues[index].qsize()
                except NotImplementedError:  # pragma: no cover - macOS
                    pass
            samples.append(
                ShardHealth(
                    shard=index,
                    packets=shard_state["stats"]["packets"],
                    queue_depth=depth,
                    queue_capacity=self.queue_capacity,
                    detections=len(shard_state["sink"]),
                    blacklist_size=len(shard_state["blacklist"]),
                    dropped=self._dropped[index],
                    queue_high_water=self._queue_high_water[index],
                    last_packet_ts_ns=self._last_packet_ts[index],
                    degradation_level=(
                        self._overload[index].level.label
                        if self._overload is not None
                        else "exact"
                    ),
                    watcher_occupancy=(
                        self.watcher.occupancy(index)
                        if self.watcher is not None
                        else 0
                    ),
                    watcher_verdicts=(
                        len(self.watcher.watcher(index).detected)
                        if self.watcher is not None
                        else 0
                    ),
                )
            )
        return samples

    def overload_report(self) -> Optional[Dict[str, object]]:
        """Service-level overload summary (see
        :meth:`InProcessEngine.overload_report`); ``None`` when no
        policy is armed."""
        if self._overload is None:
            return None
        from .overload import build_overload_report

        return build_overload_report(self._overload, self.config.rho)

    def envelope(self) -> List[ExactnessEnvelope]:
        """Per-shard exactness (see :class:`InProcessEngine.envelope`)."""
        return [
            ExactnessEnvelope(
                shard=index,
                exact=self._dropped[index] == 0,
                lost_packets=self._dropped[index],
                first_loss_time_ns=self._first_loss[index],
                reason=self._loss_reason[index],
            )
            for index in range(self._shards)
        ]

    def __repr__(self) -> str:
        return (
            f"MultiprocessEngine(shards={self._shards}, "
            f"accepted={self._accepted}, running={self.running})"
        )
