"""Operational health and reporting structures for the service runtime.

Per-shard health (:class:`ShardHealth`) is what an operator watches on a
live service: ingest rate, queue depth (the backpressure signal),
detections and blacklist occupancy, and packets dropped by an overflow
policy.  :class:`ServiceReport` is the end-of-run (or end-of-drain)
aggregate the CLI renders and the benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..model.packet import FlowId
from ..model.units import NS_PER_S


@dataclass
class ShardHealth:
    """A point-in-time health sample of one worker shard."""

    shard: int
    packets: int
    queue_depth: int
    queue_capacity: int
    detections: int
    blacklist_size: int
    dropped: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "shard": self.shard,
            "packets": self.packets,
            "queue_depth": self.queue_depth,
            "queue_capacity": self.queue_capacity,
            "detections": self.detections,
            "blacklist_size": self.blacklist_size,
            "dropped": self.dropped,
        }


@dataclass
class ServiceReport:
    """Summary of one service run (or one serve-until-drained episode)."""

    packets: int
    duration_s: float
    detections: Dict[FlowId, int]
    shard_health: List[ShardHealth] = field(default_factory=list)
    dropped: int = 0
    checkpoints_written: int = 0
    resumed_from: int = 0

    @property
    def packets_per_second(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.packets / self.duration_s

    def render(self) -> str:
        """Multi-line operator-facing summary."""
        lines = [
            f"service: {self.packets} packets in {self.duration_s:.3f}s "
            f"({self.packets_per_second:,.0f} pkt/s), "
            f"{len(self.detections)} large flows, {self.dropped} dropped, "
            f"{self.checkpoints_written} checkpoints"
        ]
        if self.resumed_from:
            lines.append(f"  resumed from checkpoint at packet {self.resumed_from}")
        for health in self.shard_health:
            lines.append(
                f"  shard {health.shard}: {health.packets} packets, "
                f"queue {health.queue_depth}/{health.queue_capacity}, "
                f"{health.detections} detections, "
                f"{health.blacklist_size} blacklisted, "
                f"{health.dropped} dropped"
            )
        for fid, time_ns in sorted(
            self.detections.items(), key=lambda item: item[1]
        ):
            lines.append(f"  large flow {fid!r} at {time_ns / NS_PER_S:.6f}s")
        return "\n".join(lines)
