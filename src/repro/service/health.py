"""Operational health, loss accounting, and reporting for the service.

Per-shard health (:class:`ShardHealth`) is what an operator watches on a
live service: ingest rate, queue depth (the backpressure signal),
detections and blacklist occupancy, and packets dropped by an overflow
policy.  :class:`ServiceReport` is the end-of-run (or end-of-drain)
aggregate the CLI renders and the benchmarks consume.

Two structures added by the fault-tolerance layer:

- :class:`ExactnessEnvelope` — the per-shard statement of whether the
  paper's no-FN/no-FP guarantee still holds.  EARDet's guarantee is
  conditional on *seeing every packet*; the moment a shard loses one
  (queue-overflow drop, injected drop, truncated stream) its guarantee
  is void from the first loss onward.  Rather than silently serving
  stale guarantees, each shard reports ``exact`` plus the first-loss
  timestamp so downstream consumers can widen their ambiguity region
  from that instant.
- :class:`DeadLetterSink` — captures every packet the service dropped
  or could not process (bounded detail, exact counts), so lost traffic
  is auditable instead of vanishing into a counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..model.packet import FlowId, Packet
from ..model.units import NS_PER_S

#: Default cap on retained dead-letter entries (counts are always exact).
DEFAULT_DEAD_LETTER_CAPACITY = 4096


@dataclass
class ShardHealth:
    """A point-in-time health sample of one worker shard."""

    shard: int
    packets: int
    queue_depth: int
    queue_capacity: int
    detections: int
    blacklist_size: int
    dropped: int = 0
    #: Highest queue depth this shard has reached (backpressure headroom:
    #: how close the shard has come to its capacity, not just where it
    #: happens to be right now).
    queue_high_water: int = 0
    #: Stream timestamp of the last packet routed to this shard; None
    #: until the shard has seen traffic (a staleness signal per shard).
    last_packet_ts_ns: Optional[int] = None
    #: Current degradation-ladder rung (``"exact"`` when no overload
    #: policy is armed; see :mod:`repro.service.overload`).
    degradation_level: str = "exact"
    #: Counters/buckets the shard's ambiguity-region watcher currently
    #: holds (0 when no watcher stage is armed; see
    #: :mod:`repro.service.pipeline`).
    watcher_occupancy: int = 0
    #: Probabilistic verdicts this shard's watcher has issued so far
    #: (never part of :attr:`detections`, which stays exact-stage only).
    watcher_verdicts: int = 0
    #: Flow slots this shard currently hosts (the units a reshard can
    #: move; 1 per shard in the default identity layout, 0 for a hot
    #: spare left behind by a merge).
    slot_count: int = 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "packets": self.packets,
            "queue_depth": self.queue_depth,
            "queue_capacity": self.queue_capacity,
            "detections": self.detections,
            "blacklist_size": self.blacklist_size,
            "dropped": self.dropped,
            "queue_high_water": self.queue_high_water,
            "last_packet_ts_ns": self.last_packet_ts_ns,
            "degradation_level": self.degradation_level,
            "watcher_occupancy": self.watcher_occupancy,
            "watcher_verdicts": self.watcher_verdicts,
            "slot_count": self.slot_count,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardHealth":
        """Rebuild from :meth:`as_dict` output (tolerates samples written
        before ``queue_high_water`` / ``last_packet_ts_ns`` existed)."""
        return cls(
            shard=int(data["shard"]),  # type: ignore[arg-type]
            packets=int(data["packets"]),  # type: ignore[arg-type]
            queue_depth=int(data["queue_depth"]),  # type: ignore[arg-type]
            queue_capacity=int(data["queue_capacity"]),  # type: ignore[arg-type]
            detections=int(data["detections"]),  # type: ignore[arg-type]
            blacklist_size=int(data["blacklist_size"]),  # type: ignore[arg-type]
            dropped=int(data.get("dropped", 0)),  # type: ignore[arg-type]
            queue_high_water=int(data.get("queue_high_water", 0)),  # type: ignore[arg-type]
            last_packet_ts_ns=(
                None
                if data.get("last_packet_ts_ns") is None
                else int(data["last_packet_ts_ns"])  # type: ignore[arg-type]
            ),
            degradation_level=str(data.get("degradation_level", "exact")),
            watcher_occupancy=int(data.get("watcher_occupancy", 0)),  # type: ignore[arg-type]
            watcher_verdicts=int(data.get("watcher_verdicts", 0)),  # type: ignore[arg-type]
            slot_count=int(data.get("slot_count", 1)),  # type: ignore[arg-type]
        )


@dataclass
class ExactnessEnvelope:
    """Whether one shard's no-FN/no-FP guarantee still holds.

    ``exact=True`` means the shard processed every packet routed to it:
    the paper's guarantees apply verbatim.  ``exact=False`` means the
    shard lost traffic; ``first_loss_time_ns`` is the timestamp of the
    first packet it lost (the instant from which the guarantee is void —
    detections *before* it remain trustworthy), ``lost_packets`` the
    exact count, and ``reason`` the loss mechanism.
    """

    shard: int
    exact: bool = True
    lost_packets: int = 0
    first_loss_time_ns: Optional[int] = None
    reason: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "exact": self.exact,
            "lost_packets": self.lost_packets,
            "first_loss_time_ns": self.first_loss_time_ns,
            "reason": self.reason,
        }


@dataclass
class DeadLetter:
    """One dropped/unprocessed packet: what, where, why.

    Every producer records the same consistent tuple — shard, slot,
    shard-local arrival index (1-based position among the packets routed
    to that shard), and reason — so the forensics capture layer can turn
    *positional* losses (injected drops, voided partitions) back into a
    replayable skip list.  ``slot``/``index`` are None only for entries
    written before the consistent tuple existed.
    """

    time_ns: int
    size: int
    fid: FlowId
    shard: int
    reason: str
    slot: Optional[int] = None
    index: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "time_ns": self.time_ns,
            "size": self.size,
            "fid": str(self.fid),
            "shard": self.shard,
            "slot": self.slot,
            "index": self.index,
            "reason": self.reason,
        }


class DeadLetterSink:
    """Bounded capture of every packet the service failed to process.

    ``total`` is always exact; per-packet detail is retained up to
    ``capacity`` entries (oldest first), which keeps memory bounded under
    a sustained overload while still giving the operator the head of the
    loss for forensics.
    """

    #: Cap on retained forensic events (non-packet incidents such as a
    #: rolled-back migration); counts stay exact past the cap.
    EVENT_CAPACITY = 256

    def __init__(self, capacity: int = DEFAULT_DEAD_LETTER_CAPACITY):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.entries: List[DeadLetter] = []
        self.total = 0
        self.events: List[Dict[str, object]] = []
        self.event_total = 0

    def record(
        self,
        packet: Packet,
        shard: int,
        reason: str,
        slot: Optional[int] = None,
        index: Optional[int] = None,
    ) -> None:
        self.total += 1
        if len(self.entries) < self.capacity:
            self.entries.append(
                DeadLetter(
                    packet.time, packet.size, packet.fid, shard, reason,
                    slot=slot, index=index,
                )
            )

    def record_event(self, kind: str, detail: Dict[str, object]) -> None:
        """Capture a non-packet forensic record (e.g. a failed migration:
        which plan, which phase, whether rollback succeeded).  Events
        never count toward :attr:`total` — no packet was lost."""
        self.event_total += 1
        if len(self.events) < self.EVENT_CAPACITY:
            self.events.append({"kind": kind, **detail})

    def __len__(self) -> int:
        return self.total

    def as_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "retained": len(self.entries),
            "capacity": self.capacity,
            "entries": [entry.as_dict() for entry in self.entries],
            "events": [dict(event) for event in self.events],
            "event_total": self.event_total,
        }

    def __repr__(self) -> str:
        return (
            f"DeadLetterSink(total={self.total}, "
            f"retained={len(self.entries)}/{self.capacity})"
        )


def _detection_sort_key(item):
    """Order detections by timestamp without assuming every timestamp is
    an int (machine-written reports may carry None or strings): numeric
    timestamps first in time order, everything else after, by repr."""
    value = item[1]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return (1, 0.0, repr(value))
    return (0, float(value), "")


def _format_detection_time(value) -> str:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return f"{value / NS_PER_S:.6f}s"
    return repr(value)


@dataclass
class ServiceReport:
    """Summary of one service run (or one serve-until-drained episode)."""

    packets: int
    duration_s: float
    detections: Dict[FlowId, int]
    shard_health: List[ShardHealth] = field(default_factory=list)
    dropped: int = 0
    checkpoints_written: int = 0
    resumed_from: int = 0
    envelope: List[ExactnessEnvelope] = field(default_factory=list)
    restarts: int = 0
    #: Forensic incidents the run produced.  Structured
    #: :class:`~repro.forensics.incidents.Incident` records when the
    #: supervisor/forensics lab is armed; plain strings are tolerated for
    #: machine-written reports.  Either way ``str(incident)`` is the
    #: stable rendered line.
    incidents: List[object] = field(default_factory=list)
    dead_letters: int = 0
    source_retries: int = 0
    #: Ingest-validation accounting when the source was guarded (the
    #: ``as_dict`` of a :class:`~repro.guard.ValidationStats`); None for
    #: an unguarded source.
    validation: Optional[Dict[str, object]] = None
    #: Overload summary (the engine's ``overload_report()``) when an
    #: overload policy was armed; None otherwise.
    overload: Optional[Dict[str, object]] = None
    #: True when this run ended through a graceful drain request (SIGTERM
    #: or :meth:`DetectionService.request_drain`) rather than source
    #: exhaustion.
    drained: bool = False
    #: Probabilistic ambiguity-region verdicts when a watcher stage was
    #: armed (the stage's ``report()``); None otherwise.  Kept strictly
    #: separate from :attr:`detections` and the envelope: a watcher
    #: verdict is *evidence*, never an exact detection, and :attr:`exact`
    #: deliberately ignores this section entirely.
    watcher: Optional[Dict[str, object]] = None
    #: Resharding summary when the run used slots, a coordinator, or ran
    #: any migration: final layout, migrations committed / rolled back,
    #: the last measured migration pause, and the coordinator's decision
    #: log.  None for a static-layout run — the common case stays quiet.
    reshard: Optional[Dict[str, object]] = None
    #: Adaptive-control summary when the run armed a controller or ever
    #: retuned: current config epoch and config, retunes committed /
    #: rolled back / found infeasible, the last measured retune pause,
    #: the full epoch history (each entry stamps the stream position its
    #: config took effect at — the exactness boundary between epochs),
    #: and the controller's decision log.  None for a static-config run.
    control: Optional[Dict[str, object]] = None

    @property
    def packets_per_second(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.packets / self.duration_s

    @property
    def validation_mutations(self) -> int:
        """Packets the ingest validator clamped or dropped — stream
        mutations, each of which voids exactness like a lost packet."""
        if self.validation is None:
            return 0
        mutated = self.validation.get("mutated", 0)
        return mutated if isinstance(mutated, int) else 0

    @property
    def exact(self) -> bool:
        """Whether the paper's guarantee survived the run intact: every
        shard processed every packet *and* the ingest validator did not
        mutate the stream (a clamped or dropped packet means the engine
        judged traffic that differs from what was actually sent)."""
        if self.validation_mutations:
            return False
        if self.envelope:
            return all(entry.exact for entry in self.envelope)
        return self.dropped == 0

    def as_dict(self) -> Dict[str, object]:
        """Machine-consumable form (``eardet serve --json``)."""
        return {
            "packets": self.packets,
            "duration_s": self.duration_s,
            "packets_per_second": self.packets_per_second,
            "detections": {
                str(fid): time_ns for fid, time_ns in self.detections.items()
            },
            "shard_health": [h.as_dict() for h in self.shard_health],
            "dropped": self.dropped,
            "checkpoints_written": self.checkpoints_written,
            "resumed_from": self.resumed_from,
            "exact": self.exact,
            "envelope": [entry.as_dict() for entry in self.envelope],
            "restarts": self.restarts,
            "incidents": [
                incident.as_dict()
                if hasattr(incident, "as_dict")
                else str(incident)
                for incident in self.incidents
            ],
            "dead_letters": self.dead_letters,
            "source_retries": self.source_retries,
            "validation": self.validation,
            "overload": self.overload,
            "drained": self.drained,
            "watcher": self.watcher,
            "reshard": self.reshard,
            "control": self.control,
        }

    def render(self) -> str:
        """Multi-line operator-facing summary."""
        rate = (
            "idle"
            if self.packets_per_second == 0
            else f"{self.packets_per_second:,.0f} pkt/s"
        )
        lines = [
            f"service: {self.packets} packets in {self.duration_s:.3f}s "
            f"({rate}), "
            f"{len(self.detections)} large flows, {self.dropped} dropped, "
            f"{self.checkpoints_written} checkpoints"
        ]
        if self.drained:
            lines.append("  graceful drain: stopped on request, queues flushed")
        if self.resumed_from:
            lines.append(f"  resumed from checkpoint at packet {self.resumed_from}")
        if self.restarts:
            lines.append(f"  supervised restarts: {self.restarts}")
        for incident in self.incidents:
            lines.append(f"  incident: {incident}")
        if self.source_retries:
            lines.append(f"  source retries absorbed: {self.source_retries}")
        if self.dead_letters:
            lines.append(f"  dead-lettered packets: {self.dead_letters}")
        if self.validation is not None:
            examined = self.validation.get("examined", 0)
            total = sum(
                count
                for count in (self.validation.get("violations") or {}).values()
                if isinstance(count, int)
            )
            lines.append(
                f"  ingest validation: {examined} examined, "
                f"{total} violations "
                f"({self.validation.get('clamped', 0)} clamped, "
                f"{self.validation.get('dropped', 0)} dropped, "
                f"{self.validation.get('reordered', 0)} reordered)"
            )
            if self.validation_mutations:
                lines.append(
                    f"  exactness: ingest validator mutated "
                    f"{self.validation_mutations} packets — guarantee void "
                    "(engine judged repaired traffic, not the wire stream)"
                )
        if self.overload is not None:
            account = self.overload.get("account") or {}
            lines.append(
                "  overload ladder: "
                f"{account.get('exact_bytes', 0)} exact + "
                f"{account.get('deferred_bytes', 0)} deferred + "
                f"{account.get('aggregated_bytes', 0)} aggregated + "
                f"{account.get('shed_bytes', 0)} shed bytes "
                f"({self.overload.get('transitions', 0)} transitions, "
                f"widening bound {self.overload.get('max_widening_ns', 0)}ns "
                f"= {self.overload.get('widening_bytes', 0)} bytes)"
            )
        if self.reshard is not None:
            layout = self.reshard.get("layout") or {}
            pause = self.reshard.get("last_pause_ns") or 0
            pause_label = (
                f", last pause {pause / NS_PER_S * 1e3:.2f}ms" if pause else ""
            )
            lines.append(
                "  resharding: "
                f"{self.reshard.get('migrations', 0)} migrations committed, "
                f"{self.reshard.get('rollbacks', 0)} rolled back; layout "
                f"epoch {layout.get('epoch', 0)}, "
                f"{layout.get('slots', 0)} slots over "
                f"{layout.get('shards', 0)} shards{pause_label}"
            )
            coordinator = self.reshard.get("coordinator")
            if coordinator:
                lines.append(
                    "  coordinator: "
                    f"{coordinator.get('windows', 0)} windows observed, "
                    f"{coordinator.get('proposals', 0)} plans proposed"
                )
        if self.control is not None:
            config = self.control.get("config") or {}
            pause = self.control.get("last_pause_ns") or 0
            pause_label = (
                f", last pause {pause / NS_PER_S * 1e3:.2f}ms" if pause else ""
            )
            lines.append(
                "  control: config epoch "
                f"{self.control.get('epoch', 0)} "
                f"(n={config.get('n', '?')}, "
                f"gamma_l={config.get('gamma_l', '?')}, "
                f"beta_th={config.get('beta_th', '?')}); "
                f"{self.control.get('retunes', 0)} retunes committed, "
                f"{self.control.get('rollbacks', 0)} rolled back, "
                f"{self.control.get('infeasibles', 0)} infeasible"
                f"{pause_label}"
            )
            controller = self.control.get("controller")
            if controller:
                lines.append(
                    "  controller: "
                    f"{controller.get('windows', 0)} windows observed, "
                    f"{controller.get('proposals', 0)} plans proposed, "
                    f"{(controller.get('slo') or {}).get('fired', 0)} "
                    "SLO alerts fired"
                )
        if self.watcher is not None:
            churn = self.watcher.get("churn") or {}
            lines.append(
                f"  watcher ({self.watcher.get('kind')}): "
                f"{self.watcher.get('verdict_count', 0)} probabilistic "
                f"verdicts, {self.watcher.get('memory_counters', 0)} "
                f"counters "
                f"({churn.get('promotions', 0)} promotions, "
                f"{churn.get('evictions', 0)} evictions, "
                f"{churn.get('demotions', 0)} demotions, "
                f"{churn.get('descents', 0)} descents) — "
                "in-region evidence, never merged into the exact set"
            )
        for health in self.shard_health:
            ladder = (
                ""
                if health.degradation_level == "exact"
                else f", ladder {health.degradation_level.upper()}"
            )
            watch = (
                f", watcher {health.watcher_occupancy} counters/"
                f"{health.watcher_verdicts} verdicts"
                if health.watcher_occupancy or health.watcher_verdicts
                else ""
            )
            lines.append(
                f"  shard {health.shard}: {health.packets} packets, "
                f"queue {health.queue_depth}/{health.queue_capacity} "
                f"(high water {health.queue_high_water}), "
                f"{health.detections} detections, "
                f"{health.blacklist_size} blacklisted, "
                f"{health.dropped} dropped{ladder}{watch}"
            )
        degraded = [entry for entry in self.envelope if not entry.exact]
        if degraded:
            for entry in degraded:
                first = (
                    f"{entry.first_loss_time_ns / NS_PER_S:.6f}s"
                    if entry.first_loss_time_ns is not None
                    else "unknown"
                )
                lines.append(
                    f"  exactness: shard {entry.shard} DEGRADED — "
                    f"{entry.lost_packets} lost, first loss at {first} "
                    f"({entry.reason or 'unspecified'}); guarantee void "
                    "from first loss onward"
                )
        elif self.envelope:
            lines.append(
                f"  exactness: all {len(self.envelope)} shards exact "
                "(no-FN/no-FP guarantee intact)"
            )
        for fid, time_ns in sorted(
            self.detections.items(), key=_detection_sort_key
        ):
            lines.append(
                f"  large flow {fid!r} at {_format_detection_time(time_ns)}"
            )
        if self.watcher is not None:
            verdicts = self.watcher.get("verdicts") or {}
            for fid, time_ns in verdicts.items():
                lines.append(
                    f"  probabilistic verdict {fid!r} at "
                    f"{_format_detection_time(time_ns)} (watcher, in-region)"
                )
        return "\n".join(lines)
