"""Deterministic, seedable fault injection for the detection service.

Chaos testing a detector whose whole value is a *deterministic* guarantee
needs deterministic chaos: every fault in a :class:`FaultPlan` triggers
at an exact packet index (never on a timer), so a failing run is
reproducible bit for bit.  A plan is built programmatically or parsed
from the compact spec string the CLI accepts via ``--fault-plan``::

    kill:shard=1,at=5000              # shard 1's worker dies at its
                                      # 5000th shard-local packet
    stall:shard=0,at=2000,secs=0.25   # shard 0 sleeps 0.25s once
    drop:shard=1,at=4000,count=50     # shard 1 loses packets 4000..4049
    source:kind=transient,at=3000     # source raises after 3000 packets
    source:kind=permanent,at=8000     # ... and never recovers
    ckpt:after=2,mode=truncate        # damage the 2nd checkpoint write
    mig:phase=install,mode=fail,at=1  # 1st migration fails at install
    mig:phase=extract,mode=stall,at=2,secs=0.2  # ... 2nd sleeps 0.2s
    mig:phase=cutover,mode=kill,at=1  # worker dies at the cutover point
    tune:phase=apply,mode=fail,at=1   # 1st retune fails at its apply step
    tune:phase=verify,mode=stall,at=2,secs=0.2  # ... 2nd sleeps 0.2s
    tune:phase=commit,mode=kill,at=1  # worker dies at the commit point
    net:kind=drop,shard=0,at=5        # shard 0's 5th sent frame vanishes
    net:kind=dup,shard=0,at=3         # ... 3rd frame arrives twice
    net:kind=reorder,shard=0,at=6     # ... 6th frame swaps with the 7th
    net:kind=delay,shard=0,at=4,secs=0.05   # ... 4th frame is held 50ms
    net:kind=partition,shard=1,at=12,secs=0.2  # connection severed at
                                      # frame 12; reconnects refused 0.2s
    net:kind=halfopen,shard=1,at=9    # writes silently vanish from
                                      # frame 9 until liveness notices
    seed:42                           # RNG seed for corruption bytes

    --fault-plan "kill:shard=1,at=5000;source:kind=transient,at=3000"

Semantics that make recovery testable:

- **Shard faults** trigger on the *shard-local* packet index (the Nth
  packet routed to / processed by that shard), which the engines restore
  from checkpoints — so a fault position means the same packet before
  and after a supervised restart.
- **Kill and stall faults fire once.**  The plan records the firing
  (worker kills are recorded by the parent when it detects the death),
  so a supervised restart does not crash-loop on the same fault.
- **Drop faults are positional and idempotent**: replaying the same
  window drops the same packets, keeping recovered runs deterministic.
- **Source faults** trigger at a global stream position; transient ones
  fire once (a retry succeeds), permanent ones fire on every attempt.
- **Checkpoint faults** damage the file right after the Nth successful
  write, exercising the corrupt-checkpoint recovery path.
- **Migration faults** fire at a two-phase-protocol phase boundary of
  the ``at``-th migration attempted in the run (1-based, fire-once):
  ``mode=fail`` injects a transient failure (exercising rollback and
  retry), ``mode=stall`` sleeps ``secs`` there (exercising the
  migration timeout), ``mode=kill`` raises a worker death (exercising
  supervised restart-from-checkpoint mid-migration).
- **Tune faults** mirror migration faults for the retune protocol: they
  fire at a phase boundary (``propose``/``freeze``/``apply``/``verify``/
  ``commit``) of the ``at``-th retune attempted in the run (1-based,
  fire-once) — ``mode=fail`` exercises automatic rollback, ``mode=stall``
  the retune deadline, ``mode=kill`` supervised restart-from-checkpoint
  mid-reconfiguration.
- **Net faults** fire at an exact *frame send index* on one remote
  shard connection (1-based, counting every frame the transport
  attempts to put on the wire, replays included) and fire once —
  replayed frames advance the same counter, so a positional fault
  would otherwise re-trip forever and the run could never converge.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

from ..model.packet import Packet
from .errors import (
    PermanentSourceError,
    ShardCrashError,
    TransientSourceError,
)
from .sources import PacketSource

#: Exit code an injected worker kill uses (visible in ShardCrashError).
KILL_EXIT_CODE = 70

SHARD_FAULT_KINDS = ("kill", "stall", "drop")
SOURCE_FAULT_KINDS = ("transient", "permanent")
CHECKPOINT_FAULT_MODES = ("flip", "truncate", "zero")
MIGRATION_FAULT_MODES = ("fail", "stall", "kill")
MIGRATION_FAULT_PHASES = ("freeze", "extract", "install", "cutover")
TUNE_FAULT_MODES = ("fail", "stall", "kill")
TUNE_FAULT_PHASES = ("propose", "freeze", "apply", "verify", "commit")
NET_FAULT_KINDS = ("drop", "dup", "reorder", "delay", "partition", "halfopen")


@dataclass
class ShardFault:
    """A fault pinned to one shard at a shard-local packet index."""

    kind: str  # kill | stall | drop
    shard: int
    at: int  # 1-based shard-local packet index
    count: int = 1  # drop window length
    duration_s: float = 0.0  # stall sleep
    fired: bool = False

    def __post_init__(self):
        if self.kind not in SHARD_FAULT_KINDS:
            raise ValueError(
                f"shard fault kind must be one of {SHARD_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if self.at < 1:
            raise ValueError(f"fault position must be >= 1, got {self.at}")
        if self.count < 1:
            raise ValueError(f"drop count must be >= 1, got {self.count}")


@dataclass
class SourceFault:
    """Make the source raise after delivering ``at`` packets."""

    kind: str  # transient | permanent
    at: int
    fired: bool = False

    def __post_init__(self):
        if self.kind not in SOURCE_FAULT_KINDS:
            raise ValueError(
                f"source fault kind must be one of {SOURCE_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.at < 0:
            raise ValueError(f"fault position must be >= 0, got {self.at}")


@dataclass
class CheckpointFault:
    """Damage the checkpoint file right after its ``after``-th write."""

    after: int  # 1-based write index
    mode: str = "flip"
    fired: bool = False

    def __post_init__(self):
        if self.mode not in CHECKPOINT_FAULT_MODES:
            raise ValueError(
                f"checkpoint fault mode must be one of "
                f"{CHECKPOINT_FAULT_MODES}, got {self.mode!r}"
            )
        if self.after < 1:
            raise ValueError(f"after must be >= 1, got {self.after}")


@dataclass
class MigrationFault:
    """A fault fired at a phase boundary of the ``at``-th migration."""

    phase: str  # freeze | extract | install | cutover
    mode: str = "fail"  # fail | stall | kill
    at: int = 1  # 1-based migration index in the run
    duration_s: float = 0.1  # stall sleep
    fired: bool = False

    def __post_init__(self):
        if self.phase not in MIGRATION_FAULT_PHASES:
            raise ValueError(
                f"migration fault phase must be one of "
                f"{MIGRATION_FAULT_PHASES}, got {self.phase!r}"
            )
        if self.mode not in MIGRATION_FAULT_MODES:
            raise ValueError(
                f"migration fault mode must be one of "
                f"{MIGRATION_FAULT_MODES}, got {self.mode!r}"
            )
        if self.at < 1:
            raise ValueError(f"migration index must be >= 1, got {self.at}")


@dataclass
class TuneFault:
    """A fault fired at a phase boundary of the ``at``-th retune."""

    phase: str  # propose | freeze | apply | verify | commit
    mode: str = "fail"  # fail | stall | kill
    at: int = 1  # 1-based retune index in the run
    duration_s: float = 0.1  # stall sleep
    fired: bool = False

    def __post_init__(self):
        if self.phase not in TUNE_FAULT_PHASES:
            raise ValueError(
                f"tune fault phase must be one of "
                f"{TUNE_FAULT_PHASES}, got {self.phase!r}"
            )
        if self.mode not in TUNE_FAULT_MODES:
            raise ValueError(
                f"tune fault mode must be one of "
                f"{TUNE_FAULT_MODES}, got {self.mode!r}"
            )
        if self.at < 1:
            raise ValueError(f"retune index must be >= 1, got {self.at}")


@dataclass
class NetFault:
    """A fault fired at an exact frame index on one shard connection.

    ``at`` is the 1-based index in the connection's *send attempt*
    stream (replays advance it too).  ``duration_s`` is the delay for
    ``delay`` faults and the reconnect-refusal window for ``partition``
    faults; ``count`` widens ``drop`` windows.
    """

    kind: str  # drop | dup | reorder | delay | partition | halfopen
    shard: int
    at: int  # 1-based frame send index on that connection
    count: int = 1  # drop window length
    duration_s: float = 0.0  # delay sleep / partition reconnect refusal
    fired: bool = False

    def __post_init__(self):
        if self.kind not in NET_FAULT_KINDS:
            raise ValueError(
                f"net fault kind must be one of {NET_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if self.at < 1:
            raise ValueError(f"fault position must be >= 1, got {self.at}")
        if self.count < 1:
            raise ValueError(f"drop count must be >= 1, got {self.count}")
        if self.duration_s < 0:
            raise ValueError(
                f"duration must be >= 0, got {self.duration_s}"
            )


Fault = Union[ShardFault, SourceFault, CheckpointFault, MigrationFault,
              TuneFault, NetFault]


class FaultPlan:
    """A deterministic schedule of injected failures.

    One plan instance is threaded through a whole supervised run — the
    engines, the source wrapper, and the checkpoint writer all consult
    the *same* object, which is how fire-once faults stay fired across a
    supervised engine rebuild.
    """

    def __init__(self, faults: "List[Fault] | Tuple[Fault, ...]" = (),
                 seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self.shard_faults: List[ShardFault] = []
        self.source_faults: List[SourceFault] = []
        self.checkpoint_faults: List[CheckpointFault] = []
        self.migration_faults: List[MigrationFault] = []
        self.tune_faults: List[TuneFault] = []
        self.net_faults: List[NetFault] = []
        for fault in faults:
            self.add(fault)

    def add(self, fault: Fault) -> "FaultPlan":
        if isinstance(fault, ShardFault):
            self.shard_faults.append(fault)
        elif isinstance(fault, SourceFault):
            self.source_faults.append(fault)
        elif isinstance(fault, CheckpointFault):
            self.checkpoint_faults.append(fault)
        elif isinstance(fault, MigrationFault):
            self.migration_faults.append(fault)
        elif isinstance(fault, TuneFault):
            self.tune_faults.append(fault)
        elif isinstance(fault, NetFault):
            self.net_faults.append(fault)
        else:
            raise TypeError(f"not a fault: {fault!r}")
        return self

    def __bool__(self) -> bool:
        return bool(
            self.shard_faults
            or self.source_faults
            or self.checkpoint_faults
            or self.migration_faults
            or self.tune_faults
            or self.net_faults
        )

    # -- parsing -----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the CLI spec format (see the module docstring)."""
        plan = cls()
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if ":" not in clause:
                raise ValueError(
                    f"bad fault clause {clause!r}: expected 'kind:key=value,...'"
                )
            kind, _, body = clause.partition(":")
            kind = kind.strip()
            if kind == "seed":
                plan.seed = int(body)
                plan._rng = random.Random(plan.seed)
                continue
            fields = {}
            for pair in body.split(","):
                if "=" not in pair:
                    raise ValueError(
                        f"bad fault field {pair!r} in clause {clause!r}"
                    )
                key, _, value = pair.partition("=")
                fields[key.strip()] = value.strip()
            try:
                plan.add(cls._parse_clause(kind, fields))
            except (KeyError, ValueError) as error:
                raise ValueError(
                    f"bad fault clause {clause!r}: {error}"
                ) from error
        return plan

    @staticmethod
    def _parse_clause(kind: str, fields: dict) -> Fault:
        if kind == "kill":
            return ShardFault(
                "kill", shard=int(fields["shard"]), at=int(fields["at"])
            )
        if kind == "stall":
            return ShardFault(
                "stall",
                shard=int(fields["shard"]),
                at=int(fields["at"]),
                duration_s=float(fields.get("secs", 0.1)),
            )
        if kind == "drop":
            return ShardFault(
                "drop",
                shard=int(fields["shard"]),
                at=int(fields["at"]),
                count=int(fields.get("count", 1)),
            )
        if kind == "source":
            return SourceFault(fields["kind"], at=int(fields["at"]))
        if kind == "ckpt":
            return CheckpointFault(
                after=int(fields["after"]), mode=fields.get("mode", "flip")
            )
        if kind == "mig":
            return MigrationFault(
                phase=fields["phase"],
                mode=fields.get("mode", "fail"),
                at=int(fields.get("at", 1)),
                duration_s=float(fields.get("secs", 0.1)),
            )
        if kind == "tune":
            return TuneFault(
                phase=fields["phase"],
                mode=fields.get("mode", "fail"),
                at=int(fields.get("at", 1)),
                duration_s=float(fields.get("secs", 0.1)),
            )
        if kind == "net":
            return NetFault(
                kind=fields["kind"],
                shard=int(fields["shard"]),
                at=int(fields["at"]),
                count=int(fields.get("count", 1)),
                duration_s=float(fields.get("secs", 0.05)),
            )
        raise ValueError(f"unknown fault kind {kind!r}")

    def describe(self) -> str:
        parts = []
        for fault in self.shard_faults:
            extra = ""
            if fault.kind == "drop":
                extra = f",count={fault.count}"
            elif fault.kind == "stall":
                extra = f",secs={fault.duration_s:g}"
            parts.append(
                f"{fault.kind}:shard={fault.shard},at={fault.at}{extra}"
                + (" (fired)" if fault.fired else "")
            )
        for fault in self.source_faults:
            parts.append(
                f"source:kind={fault.kind},at={fault.at}"
                + (" (fired)" if fault.fired else "")
            )
        for fault in self.checkpoint_faults:
            parts.append(
                f"ckpt:after={fault.after},mode={fault.mode}"
                + (" (fired)" if fault.fired else "")
            )
        for fault in self.migration_faults:
            extra = (
                f",secs={fault.duration_s:g}" if fault.mode == "stall" else ""
            )
            parts.append(
                f"mig:phase={fault.phase},mode={fault.mode},at={fault.at}"
                f"{extra}" + (" (fired)" if fault.fired else "")
            )
        for fault in self.tune_faults:
            extra = (
                f",secs={fault.duration_s:g}" if fault.mode == "stall" else ""
            )
            parts.append(
                f"tune:phase={fault.phase},mode={fault.mode},at={fault.at}"
                f"{extra}" + (" (fired)" if fault.fired else "")
            )
        for fault in self.net_faults:
            extra = ""
            if fault.kind == "drop" and fault.count > 1:
                extra = f",count={fault.count}"
            elif fault.kind in ("delay", "partition"):
                extra = f",secs={fault.duration_s:g}"
            parts.append(
                f"net:kind={fault.kind},shard={fault.shard},at={fault.at}"
                f"{extra}" + (" (fired)" if fault.fired else "")
            )
        return "; ".join(parts) if parts else "(empty plan)"

    # -- shard-fault queries (engines call these) --------------------------

    def kill_at(self, shard: int) -> Optional[int]:
        """The next unfired kill position for ``shard``, or None."""
        for fault in self.shard_faults:
            if fault.kind == "kill" and fault.shard == shard and not fault.fired:
                return fault.at
        return None

    def mark_kill_fired(self, shard: int) -> None:
        """Record that ``shard``'s pending kill fault went off (called by
        the parent when it detects the death — the dying worker cannot)."""
        for fault in self.shard_faults:
            if fault.kind == "kill" and fault.shard == shard and not fault.fired:
                fault.fired = True
                return

    def take_kill(self, shard: int, local_index: int) -> Optional[ShardFault]:
        """In-process kill check: fires (once) when the shard's local
        packet index reaches the fault position."""
        for fault in self.shard_faults:
            if (
                fault.kind == "kill"
                and fault.shard == shard
                and not fault.fired
                and local_index >= fault.at
            ):
                fault.fired = True
                return fault
        return None

    def take_stall(self, shard: int, local_index: int) -> Optional[ShardFault]:
        for fault in self.shard_faults:
            if (
                fault.kind == "stall"
                and fault.shard == shard
                and not fault.fired
                and local_index >= fault.at
            ):
                fault.fired = True
                return fault
        return None

    def stall_for(self, shard: int) -> Optional[ShardFault]:
        """The next unfired stall fault for ``shard`` (handed to a
        multiprocess worker at spawn)."""
        for fault in self.shard_faults:
            if fault.kind == "stall" and fault.shard == shard and not fault.fired:
                return fault
        return None

    def should_drop(self, shard: int, local_index: int) -> bool:
        """Whether the shard's ``local_index``-th packet falls inside an
        injected drop window.  Positional, hence idempotent on replay."""
        for fault in self.shard_faults:
            if (
                fault.kind == "drop"
                and fault.shard == shard
                and fault.at <= local_index < fault.at + fault.count
            ):
                return True
        return False

    # -- migration-fault queries (the reshard executor calls this) ---------

    def take_migration(
        self, phase: str, migration_index: int
    ) -> Optional[MigrationFault]:
        """The fault (if any) armed for this phase boundary of the
        ``migration_index``-th migration.  Fire-once: a rolled-back
        migration's retry attempts do not re-trip the same fault, so
        chaos runs converge instead of crash-looping."""
        for fault in self.migration_faults:
            if (
                fault.phase == phase
                and fault.at == migration_index
                and not fault.fired
            ):
                fault.fired = True
                return fault
        return None

    # -- tune-fault queries (the retune executor calls this) ---------------

    def take_tune(self, phase: str, retune_index: int) -> Optional[TuneFault]:
        """The fault (if any) armed for this phase boundary of the
        ``retune_index``-th retune.  Fire-once, like migration faults: a
        rolled-back retune's retry attempts do not re-trip the same
        fault, so control-plane chaos runs converge."""
        for fault in self.tune_faults:
            if (
                fault.phase == phase
                and fault.at == retune_index
                and not fault.fired
            ):
                fault.fired = True
                return fault
        return None

    # -- net-fault queries (the TCP transport calls this) ------------------

    def take_net(self, shard: int, frame_index: int) -> Optional[NetFault]:
        """The fault (if any) armed for this send attempt on ``shard``'s
        connection.  ``frame_index`` is 1-based and counts every frame
        the transport tries to send, replays included.  Fire-once: a
        replayed frame re-enters the counter stream, so a positional
        fault would re-trip on its own replay forever; firing once lets
        the exactly-once machinery converge.  ``drop`` windows wider
        than one frame stay armed until the whole window has passed."""
        for fault in self.net_faults:
            if fault.shard != shard or fault.fired:
                continue
            if fault.kind == "drop":
                if fault.at <= frame_index < fault.at + fault.count:
                    if frame_index == fault.at + fault.count - 1:
                        fault.fired = True
                    return fault
            elif fault.at == frame_index:
                fault.fired = True
                return fault
        return None

    # -- source-fault queries ----------------------------------------------

    def source_fault_at(self, position: int) -> Optional[SourceFault]:
        """The fault (if any) that fires once the source has delivered
        ``position`` packets.  Transient faults are marked fired;
        permanent faults keep firing on every attempt."""
        for fault in self.source_faults:
            if fault.at == position and (
                fault.kind == "permanent" or not fault.fired
            ):
                fault.fired = True
                return fault
        return None

    # -- checkpoint-fault application --------------------------------------

    def corrupt_checkpoint(self, path, write_index: int) -> Optional[str]:
        """Damage ``path`` if a checkpoint fault targets the
        ``write_index``-th write; returns the mode applied, else None."""
        for fault in self.checkpoint_faults:
            if fault.after == write_index and not fault.fired:
                fault.fired = True
                self._apply_corruption(path, fault.mode)
                return fault.mode
        return None

    def _apply_corruption(self, path, mode: str) -> None:
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        if mode == "zero" or not data:
            data = bytearray()
        elif mode == "truncate":
            data = data[: max(1, len(data) // 2)]
        else:  # flip — seeded, hence reproducible
            index = self._rng.randrange(len(data))
            data[index] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
            handle.flush()
            os.fsync(handle.fileno())

    def __repr__(self) -> str:
        return f"FaultPlan({self.describe()!r}, seed={self.seed})"


class FaultySource(PacketSource):
    """Wrap a source so it raises according to a :class:`FaultPlan`.

    The error is raised *before* the packet at the fault position is
    delivered, so ``position`` in the raised :class:`SourceError` equals
    the number of packets successfully handed downstream.
    """

    def __init__(self, inner: PacketSource, plan: FaultPlan):
        self._inner = inner
        self._plan = plan
        self.name = f"faulty({inner.name})"
        self.replayable = inner.replayable

    def iter_packets(self) -> Iterator[Packet]:
        plan = self._plan
        position = 0
        for packet in self._inner.iter_packets():
            fault = plan.source_fault_at(position)
            if fault is not None:
                raise self._error(fault, position)
            yield packet
            position += 1
        fault = plan.source_fault_at(position)
        if fault is not None:
            raise self._error(fault, position)

    @staticmethod
    def _error(fault: SourceFault, position: int) -> Exception:
        if fault.kind == "transient":
            return TransientSourceError(
                f"injected transient source error after {position} packets",
                position=position,
            )
        return PermanentSourceError(
            f"injected permanent source error after {position} packets",
            position=position,
        )
