"""Pull-based packet sources for the streaming service.

The runtime consumes traffic through one narrow interface,
:class:`PacketSource`: a *pull-based*, batched iterator over time-ordered
packets.  Pull (rather than push) is what makes backpressure trivial — the
engine simply stops pulling while its shard queues are full, so memory
stays bounded no matter how fast the source could produce.

Adapters wrap everything the library can already produce:

- :class:`StreamSource` — any in-memory iterable of packets
  (:class:`~repro.model.stream.PacketStream`, a list, ...);
- :class:`TraceFileSource` — ``.csv`` / ``.ert`` / ``.pcap`` trace files,
  re-read from disk on every iteration (so a crashed service can re-open
  the file and replay from a checkpoint boundary);
- :class:`SyntheticSource` — a zero-argument factory returning a fresh
  packet iterable per iteration, for generator-based synthetic workloads.

All sources support ``skip``: resuming from a checkpoint taken after ``k``
packets replays the source from packet ``k`` — the *checkpoint boundary*
— so recovery is exact (see :mod:`repro.service.runtime`).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Union

from ..model.packet import Packet

PathLike = Union[str, Path]

#: Default packets per pulled batch.
DEFAULT_BATCH_SIZE = 1024


class PacketSource(ABC):
    """A replayable, time-ordered packet supply.

    Subclasses implement :meth:`iter_packets`, producing the *full* stream
    from its beginning; the shared :meth:`batches` helper layers skipping
    and batching on top.  ``iter_packets`` may be called more than once
    (each call restarts the stream) unless :attr:`replayable` is False.
    """

    #: Human-readable origin, recorded in checkpoints for inspection.
    name: str = "source"

    #: Whether :meth:`iter_packets` can be called again after exhaustion.
    #: Non-replayable sources cannot be resumed from a checkpoint.
    replayable: bool = True

    @abstractmethod
    def iter_packets(self) -> Iterator[Packet]:
        """Iterate the stream from its first packet."""

    def batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE, skip: int = 0
    ) -> Iterator[List[Packet]]:
        """Yield non-empty lists of up to ``batch_size`` packets, starting
        ``skip`` packets into the stream.

        ``skip`` is how crash recovery replays from a checkpoint boundary:
        a checkpoint taken after ``k`` ingested packets is resumed with
        ``skip=k``.
        """
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        if skip < 0:
            raise ValueError(f"skip must be >= 0, got {skip}")
        packets = self.iter_packets()
        if skip:
            packets = itertools.islice(packets, skip, None)
        while True:
            batch = list(itertools.islice(packets, batch_size))
            if not batch:
                return
            yield batch

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class StreamSource(PacketSource):
    """Wrap an in-memory packet iterable (``PacketStream``, list, ...).

    The wrapped object must be re-iterable for checkpoint resume to work;
    a one-shot iterator is accepted but flagged non-replayable.
    """

    def __init__(self, packets: Iterable[Packet], name: str = "stream"):
        self._packets = packets
        self.name = name
        self.replayable = not isinstance(packets, Iterator)

    def iter_packets(self) -> Iterator[Packet]:
        return iter(self._packets)


class TraceFileSource(PacketSource):
    """Stream a trace file from disk, re-reading it on every iteration.

    Formats are dispatched by extension exactly like ``eardet detect``:
    ``.csv``, ``.ert`` (binary) and ``.pcap``/``.cap``.
    """

    def __init__(self, path: PathLike, by_host_pair: bool = False):
        self.path = Path(path)
        self.by_host_pair = by_host_pair
        self.name = str(self.path)
        suffix = self.path.suffix.lower()
        if suffix not in (".csv", ".ert", ".pcap", ".cap"):
            raise ValueError(
                f"unsupported trace extension {suffix!r}; "
                "expected .csv, .ert or .pcap"
            )
        self._suffix = suffix

    def iter_packets(self) -> Iterator[Packet]:
        from ..traffic import pcap, trace_io

        if self._suffix == ".csv":
            return iter(trace_io.read_csv(self.path))
        if self._suffix == ".ert":
            return iter(trace_io.read_binary(self.path))
        stream, _ = pcap.read_pcap(self.path, by_host_pair=self.by_host_pair)
        return iter(stream)


class SyntheticSource(PacketSource):
    """A factory-backed source for generated workloads.

    ``factory`` is called once per iteration and must return a fresh
    time-ordered packet iterable — typically a closure over a seeded
    generator, so every replay produces the identical stream (a
    requirement for exact checkpoint recovery).
    """

    def __init__(
        self,
        factory: Callable[[], Iterable[Packet]],
        name: str = "synthetic",
    ):
        self._factory = factory
        self.name = name

    def iter_packets(self) -> Iterator[Packet]:
        return iter(self._factory())


def as_source(packets: Union[PacketSource, Iterable[Packet]]) -> PacketSource:
    """Coerce an arbitrary packet supply to a :class:`PacketSource`."""
    if isinstance(packets, PacketSource):
        return packets
    return StreamSource(packets)
