"""Pull-based packet sources for the streaming service.

The runtime consumes traffic through one narrow interface,
:class:`PacketSource`: a *pull-based*, batched iterator over time-ordered
packets.  Pull (rather than push) is what makes backpressure trivial — the
engine simply stops pulling while its shard queues are full, so memory
stays bounded no matter how fast the source could produce.

Adapters wrap everything the library can already produce:

- :class:`StreamSource` — any in-memory iterable of packets
  (:class:`~repro.model.stream.PacketStream`, a list, ...);
- :class:`TraceFileSource` — ``.csv`` / ``.ert`` / ``.pcap`` trace files,
  re-read from disk on every iteration (so a crashed service can re-open
  the file and replay from a checkpoint boundary);
- :class:`SyntheticSource` — a zero-argument factory returning a fresh
  packet iterable per iteration, for generator-based synthetic workloads.

Two wrappers compose on top of any source: :class:`RetryingSource`
(absorb transient failures with bounded retry) and :class:`GuardedSource`
(validate/repair the stream through a :class:`~repro.guard.StreamValidator`
— see :mod:`repro.guard`).

All sources support ``skip``: resuming from a checkpoint taken after ``k``
packets replays the source from packet ``k`` — the *checkpoint boundary*
— so recovery is exact (see :mod:`repro.service.runtime`).
"""

from __future__ import annotations

import itertools
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Union

from ..model.packet import Packet
from .backoff import BackoffPolicy

PathLike = Union[str, Path]

#: Default packets per pulled batch.
DEFAULT_BATCH_SIZE = 1024


class PacketSource(ABC):
    """A replayable, time-ordered packet supply.

    Subclasses implement :meth:`iter_packets`, producing the *full* stream
    from its beginning; the shared :meth:`batches` helper layers skipping
    and batching on top.  ``iter_packets`` may be called more than once
    (each call restarts the stream) unless :attr:`replayable` is False.
    """

    #: Human-readable origin, recorded in checkpoints for inspection.
    name: str = "source"

    #: Whether :meth:`iter_packets` can be called again after exhaustion.
    #: Non-replayable sources cannot be resumed from a checkpoint.
    replayable: bool = True

    @abstractmethod
    def iter_packets(self) -> Iterator[Packet]:
        """Iterate the stream from its first packet."""

    def batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE, skip: int = 0
    ) -> Iterator[List[Packet]]:
        """Yield non-empty lists of up to ``batch_size`` packets, starting
        ``skip`` packets into the stream.

        ``skip`` is how crash recovery replays from a checkpoint boundary:
        a checkpoint taken after ``k`` ingested packets is resumed with
        ``skip=k``.
        """
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        if skip < 0:
            raise ValueError(f"skip must be >= 0, got {skip}")
        from .errors import SourceError

        packets = self.iter_packets()
        if skip:
            packets = itertools.islice(packets, skip, None)
        while True:
            batch = []
            try:
                for _ in range(batch_size):
                    batch.append(next(packets))
            except StopIteration:
                if batch:
                    yield batch
                return
            except SourceError:
                # Hand over what was read before the failure, then let the
                # error propagate on the next pull — a dying source must
                # not swallow packets it already delivered.
                if batch:
                    yield batch
                raise
            yield batch

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class StreamSource(PacketSource):
    """Wrap an in-memory packet iterable (``PacketStream``, list, ...).

    The wrapped object must be re-iterable for checkpoint resume to work;
    a one-shot iterator is accepted but flagged non-replayable.
    """

    def __init__(self, packets: Iterable[Packet], name: str = "stream"):
        self._packets = packets
        self.name = name
        self.replayable = not isinstance(packets, Iterator)

    def iter_packets(self) -> Iterator[Packet]:
        return iter(self._packets)


class TraceFileSource(PacketSource):
    """Stream a trace file from disk, re-reading it on every iteration.

    Formats are dispatched by extension exactly like ``eardet detect``:
    ``.csv``, ``.ert`` (binary) and ``.pcap``/``.cap``.

    ``validator`` is an optional :class:`~repro.guard.StreamValidator`.
    It must be applied *here*, inside the readers, not by an outer
    :class:`GuardedSource`: the csv/ert readers build a
    :class:`~repro.model.stream.PacketStream`, which rejects disorder at
    construction — an outer wrapper would never see the packets a
    repair/reorder policy is meant to fix.  Stats accumulate across
    iterations (a checkpoint-resume replay re-validates the prefix) and
    surface through :func:`validation_stats`.
    """

    def __init__(
        self,
        path: PathLike,
        by_host_pair: bool = False,
        validator=None,
    ):
        self.path = Path(path)
        self.by_host_pair = by_host_pair
        self.validator = validator
        self.name = str(self.path)
        suffix = self.path.suffix.lower()
        if suffix not in (".csv", ".ert", ".pcap", ".cap"):
            raise ValueError(
                f"unsupported trace extension {suffix!r}; "
                "expected .csv, .ert or .pcap"
            )
        self._suffix = suffix

    @property
    def validation_stats(self):
        """Cumulative :class:`~repro.guard.ValidationStats`, or None when
        the source is unguarded."""
        return None if self.validator is None else self.validator.stats

    def iter_packets(self) -> Iterator[Packet]:
        from ..traffic import pcap, trace_io

        if self._suffix == ".csv":
            return iter(trace_io.read_csv(self.path, validator=self.validator))
        if self._suffix == ".ert":
            return iter(
                trace_io.read_binary(self.path, validator=self.validator)
            )
        stream, _ = pcap.read_pcap(self.path, by_host_pair=self.by_host_pair)
        if self.validator is not None:
            stream = self.validator.validate(list(stream))
        return iter(stream)


class SyntheticSource(PacketSource):
    """A factory-backed source for generated workloads.

    ``factory`` is called once per iteration and must return a fresh
    time-ordered packet iterable — typically a closure over a seeded
    generator, so every replay produces the identical stream (a
    requirement for exact checkpoint recovery).
    """

    def __init__(
        self,
        factory: Callable[[], Iterable[Packet]],
        name: str = "synthetic",
    ):
        self._factory = factory
        self.name = name

    def iter_packets(self) -> Iterator[Packet]:
        return iter(self._factory())


class RetryingSource(PacketSource):
    """Absorb transient source failures with bounded retry + backoff.

    Wraps any replayable source.  When the inner source raises a
    :class:`~repro.service.errors.TransientSourceError` mid-iteration,
    the wrapper sleeps (exponential backoff, capped), re-opens the inner
    source, fast-forwards past the packets already delivered, and
    continues — downstream consumers never see the hiccup, only a
    monotone packet stream.  After ``max_retries`` consecutive failures
    the error escalates to a
    :class:`~repro.service.errors.PermanentSourceError` (the supervisor
    then degrades instead of spinning).

    ``retries`` counts every absorbed failure, for the service report.

    The delay schedule is a shared
    :class:`~repro.service.backoff.BackoffPolicy`; pass ``backoff=`` to
    replace it wholesale (e.g. with seeded jitter).  The individual
    ``backoff_*`` parameters are kept for compatibility and build a
    jitter-free policy with the historical defaults.
    """

    def __init__(
        self,
        inner: PacketSource,
        max_retries: int = 3,
        backoff_initial_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
        backoff: "BackoffPolicy | None" = None,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self._inner = inner
        self.max_retries = max_retries
        self.backoff = backoff or BackoffPolicy(
            initial_s=backoff_initial_s,
            factor=backoff_factor,
            max_s=backoff_max_s,
        )
        self.backoff_initial_s = self.backoff.initial_s
        self.backoff_factor = self.backoff.factor
        self.backoff_max_s = self.backoff.max_s
        self._sleep = sleep
        self.retries = 0
        self.name = f"retry({inner.name})"
        self.replayable = inner.replayable

    def _delay_s(self, attempt: int) -> float:
        return self.backoff.delay_s(attempt)

    def iter_packets(self) -> Iterator[Packet]:
        from .errors import PermanentSourceError, TransientSourceError

        delivered = 0
        failures = 0
        while True:
            iterator = self._inner.iter_packets()
            try:
                if delivered:
                    # Fast-forward past what downstream already consumed;
                    # these re-read packets do not count as deliveries.
                    for _ in itertools.islice(iterator, delivered):
                        pass
                for packet in iterator:
                    yield packet
                    delivered += 1
                    failures = 0  # progress resets the consecutive count
                return
            except TransientSourceError as error:
                failures += 1
                self.retries += 1
                if failures > self.max_retries:
                    raise PermanentSourceError(
                        f"source failed {failures} consecutive times at "
                        f"packet {delivered}; retry budget "
                        f"({self.max_retries}) exhausted: {error}",
                        position=delivered,
                    ) from error
                if not self.replayable:
                    raise PermanentSourceError(
                        f"transient source error at packet {delivered}, but "
                        "the source is not replayable so it cannot be "
                        f"re-opened: {error}",
                        position=delivered,
                    ) from error
                self._sleep(self._delay_s(failures - 1))


class GuardedSource(PacketSource):
    """Apply a :class:`~repro.guard.StreamValidator` to an inner source.

    Every packet pulled from the inner source passes through the
    validator's policy (reject / clamp / drop / bounded reorder) before
    the engine sees it, so the runtime's input contract — monotone
    timestamps, sizes inside the frame envelope, sane flow IDs — holds no
    matter what the raw source produces.

    The validator's :class:`~repro.guard.ValidationStats` accumulate
    across iterations (a checkpoint-resume replay re-validates the
    prefix deterministically), and the service folds them into the
    :class:`~repro.service.health.ServiceReport`: any *mutation* of the
    stream (clamp or drop) voids the exactness guarantee exactly like a
    lost packet.  Under the strict policy a violation raises
    :class:`~repro.guard.StreamViolationError` instead.
    """

    def __init__(self, inner: PacketSource, validator=None, policy=None):
        from ..guard import StreamValidator

        if validator is not None and policy is not None:
            raise ValueError("pass either a validator or a policy, not both")
        self._inner = inner
        self.validator = validator or StreamValidator(policy)
        self.name = f"guarded({inner.name})"
        self.replayable = inner.replayable

    @property
    def validation_stats(self):
        """The validator's cumulative :class:`~repro.guard.ValidationStats`."""
        return self.validator.stats

    def iter_packets(self) -> Iterator[Packet]:
        return self.validator.iter_validated(self._inner.iter_packets())


def validation_stats(source) -> "object | None":
    """The first :class:`~repro.guard.ValidationStats` found anywhere in
    a source wrapper chain (each wrapper holds the next as ``_inner``),
    or None when the chain is unguarded."""
    seen = set()
    while source is not None and id(source) not in seen:
        seen.add(id(source))
        stats = getattr(source, "validation_stats", None)
        if stats is not None:
            return stats
        source = getattr(source, "_inner", None)
    return None


def as_source(packets: Union[PacketSource, Iterable[Packet]]) -> PacketSource:
    """Coerce an arbitrary packet supply to a :class:`PacketSource`."""
    if isinstance(packets, PacketSource):
        return packets
    return StreamSource(packets)
