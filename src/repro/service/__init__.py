"""Streaming detection service: sharded ingestion with exact checkpoints.

This package turns the EARDet library into a deployable runtime
(``eardet serve``): pull-based packet sources, a sharded engine with
bounded queues and backpressure (in-process for determinism,
multiprocess for throughput), an exact binary checkpoint/restore layer,
the service lifecycle gluing them together, and a fault-tolerance layer
— deterministic fault injection (:mod:`repro.service.faults`),
supervised restart with checkpoint recovery
(:mod:`repro.service.supervisor`), and per-shard exactness envelopes
that state precisely where the no-FN/no-FP guarantee still holds.
Ingest hardening and runtime invariant checking come from
:mod:`repro.guard` (wrap any source in :class:`GuardedSource`; arm the
checker with ``invariant_every``).  See ``docs/SERVICE.md``,
``docs/FAULT_TOLERANCE.md`` and ``docs/GUARDRAILS.md``.
"""

from .checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    describe_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from .engine import InProcessEngine
from .errors import (
    InvariantViolation,
    PermanentSourceError,
    QueueStallError,
    RecoverableServiceError,
    RestartBudgetExceededError,
    ServiceError,
    ShardCrashError,
    SourceError,
    TransientSourceError,
)
from .faults import (
    CheckpointFault,
    FaultPlan,
    FaultySource,
    ShardFault,
    SourceFault,
)
from .health import (
    DeadLetter,
    DeadLetterSink,
    ExactnessEnvelope,
    ServiceReport,
    ShardHealth,
)
from .runtime import DetectionService
from .sources import (
    GuardedSource,
    PacketSource,
    RetryingSource,
    StreamSource,
    SyntheticSource,
    TraceFileSource,
    as_source,
)
from .supervisor import RestartPolicy, Supervisor
from .workers import MultiprocessEngine, WorkerError

__all__ = [
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointFault",
    "DeadLetter",
    "DeadLetterSink",
    "DetectionService",
    "ExactnessEnvelope",
    "FaultPlan",
    "FaultySource",
    "GuardedSource",
    "InProcessEngine",
    "InvariantViolation",
    "MultiprocessEngine",
    "PacketSource",
    "PermanentSourceError",
    "QueueStallError",
    "RecoverableServiceError",
    "RestartBudgetExceededError",
    "RestartPolicy",
    "RetryingSource",
    "ServiceError",
    "ServiceReport",
    "ShardCrashError",
    "ShardFault",
    "ShardHealth",
    "SourceError",
    "SourceFault",
    "StreamSource",
    "Supervisor",
    "SyntheticSource",
    "TraceFileSource",
    "TransientSourceError",
    "WorkerError",
    "as_source",
    "describe_checkpoint",
    "read_checkpoint",
    "write_checkpoint",
]
