"""Streaming detection service: sharded ingestion with exact checkpoints.

This package turns the EARDet library into a deployable runtime
(``eardet serve``): pull-based packet sources, a sharded engine with
bounded queues and backpressure (in-process for determinism,
multiprocess for throughput), an exact binary checkpoint/restore layer,
and the service lifecycle gluing them together.  See ``docs/SERVICE.md``
for the architecture and the checkpoint format.
"""

from .checkpoint import (
    CheckpointError,
    describe_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from .engine import InProcessEngine
from .health import ServiceReport, ShardHealth
from .runtime import DetectionService
from .sources import (
    PacketSource,
    StreamSource,
    SyntheticSource,
    TraceFileSource,
    as_source,
)
from .workers import MultiprocessEngine, WorkerError

__all__ = [
    "CheckpointError",
    "DetectionService",
    "InProcessEngine",
    "MultiprocessEngine",
    "PacketSource",
    "ServiceReport",
    "ShardHealth",
    "StreamSource",
    "SyntheticSource",
    "TraceFileSource",
    "WorkerError",
    "as_source",
    "describe_checkpoint",
    "read_checkpoint",
    "write_checkpoint",
]
