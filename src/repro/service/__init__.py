"""Streaming detection service: sharded ingestion with exact checkpoints.

This package turns the EARDet library into a deployable runtime
(``eardet serve``): pull-based packet sources, a sharded engine with
bounded queues and backpressure (in-process for determinism,
multiprocess for throughput), an exact binary checkpoint/restore layer,
the service lifecycle gluing them together, and a fault-tolerance layer
— deterministic fault injection (:mod:`repro.service.faults`),
supervised restart with checkpoint recovery
(:mod:`repro.service.supervisor`), and per-shard exactness envelopes
that state precisely where the no-FN/no-FP guarantee still holds.
Ingest hardening and runtime invariant checking come from
:mod:`repro.guard` (wrap any source in :class:`GuardedSource`; arm the
checker with ``invariant_every``).  Overload resilience — admission
control with hysteresis watermarks, the accounted degradation ladder
(EXACT → DEFERRED → AGGREGATED → SHEDDING), and graceful drain — lives
in :mod:`repro.service.overload`; retry timing everywhere goes through
the shared :class:`BackoffPolicy`.  The two-stage pipeline
(:mod:`repro.service.pipeline`) arms a per-shard ambiguity-region
watcher — CLEF's twin RLFDs or LOFT — whose probabilistic verdicts are
reported strictly apart from the exact detection set.  Elastic scaling
lives in :mod:`repro.service.reshard`: flows hash into a fixed slot
space, a versioned :class:`ShardLayout` maps slots onto shards, and
:func:`execute_migration` moves whole slots between shards live — a
two-phase freeze/extract → install/cutover protocol with rollback — so
detections are bit-identical under any migration history; the
:class:`Coordinator` proposes such plans under sustained skew.  The
multi-host layer (:mod:`repro.service.net`, :mod:`repro.service.remote`)
carries the same wire tuples over TCP with exactly-once batch delivery —
CRC-protected frames, monotonic sequences, cumulative acks, an
unacked-frame replay ring — so a :class:`RemoteEngine` coordinator can
drive ``eardet worker --listen`` shard servers on other hosts with
bit-identical detections; outages are masked exactly within a bounded
window and accounted in the envelope beyond it.  Incident forensics —
the append-only CRC'd incident log, replay-bundle capture, and
deterministic bit-identical re-execution of any detection — lives in
:mod:`repro.forensics` (``--forensics-dir``, ``eardet replay``,
``eardet incidents``).  See ``docs/SERVICE.md``,
``docs/FAULT_TOLERANCE.md``, ``docs/GUARDRAILS.md``,
``docs/OVERLOAD.md``, ``docs/DETECTORS.md`` and ``docs/FORENSICS.md``.
"""

from .backoff import DEFAULT_BACKOFF, BackoffPolicy
from .checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    describe_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from .engine import InProcessEngine
from .errors import (
    FrameCorruptError,
    HandshakeError,
    InvariantViolation,
    MigrationError,
    OverloadError,
    PermanentSourceError,
    QueueStallError,
    RecoverableServiceError,
    ReplayIncompleteError,
    RestartBudgetExceededError,
    RetuneError,
    ServiceError,
    ShardCrashError,
    SourceError,
    TransientSourceError,
    TransportError,
)
from .faults import (
    CheckpointFault,
    FaultPlan,
    FaultySource,
    MigrationFault,
    NetFault,
    ShardFault,
    SourceFault,
    TuneFault,
)
from .net import (
    NET_PROTOCOL_VERSION,
    TRANSPORT_ABORT_EXIT_CODE,
    ShardConnection,
    ShardServer,
    parse_endpoint,
    parse_endpoints,
    run_worker,
)
from .remote import RemoteEngine
from .health import (
    DeadLetter,
    DeadLetterSink,
    ExactnessEnvelope,
    ServiceReport,
    ShardHealth,
)
from .overload import (
    AdmissionController,
    DegradationAccount,
    DegradationLevel,
    OverloadPolicy,
    ShardOverload,
)
from .pipeline import WATCHER_KINDS, WatcherPolicy, WatcherStage
from .reshard import (
    Coordinator,
    CoordinatorPolicy,
    MigrationPlan,
    MigrationReport,
    ShardLayout,
    SlotMove,
    execute_migration,
)
from .runtime import DetectionService
from .sources import (
    GuardedSource,
    PacketSource,
    RetryingSource,
    StreamSource,
    SyntheticSource,
    TraceFileSource,
    as_source,
)
from .supervisor import RestartPolicy, Supervisor
from .workers import (
    DRAIN_EXIT_CODE,
    MIGRATION_ABORT_EXIT_CODE,
    MultiprocessEngine,
    WorkerError,
)

__all__ = [
    "AdmissionController",
    "BackoffPolicy",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointFault",
    "Coordinator",
    "CoordinatorPolicy",
    "DEFAULT_BACKOFF",
    "DRAIN_EXIT_CODE",
    "DeadLetter",
    "DeadLetterSink",
    "DegradationAccount",
    "DegradationLevel",
    "DetectionService",
    "ExactnessEnvelope",
    "FaultPlan",
    "FaultySource",
    "FrameCorruptError",
    "GuardedSource",
    "HandshakeError",
    "InProcessEngine",
    "InvariantViolation",
    "MIGRATION_ABORT_EXIT_CODE",
    "MigrationError",
    "MigrationFault",
    "MigrationPlan",
    "MigrationReport",
    "MultiprocessEngine",
    "NET_PROTOCOL_VERSION",
    "NetFault",
    "OverloadError",
    "OverloadPolicy",
    "PacketSource",
    "PermanentSourceError",
    "QueueStallError",
    "RecoverableServiceError",
    "RemoteEngine",
    "ReplayIncompleteError",
    "RestartBudgetExceededError",
    "RestartPolicy",
    "RetryingSource",
    "RetuneError",
    "ServiceError",
    "ServiceReport",
    "ShardConnection",
    "ShardCrashError",
    "ShardFault",
    "ShardHealth",
    "ShardLayout",
    "ShardOverload",
    "ShardServer",
    "SlotMove",
    "SourceError",
    "SourceFault",
    "StreamSource",
    "Supervisor",
    "SyntheticSource",
    "TRANSPORT_ABORT_EXIT_CODE",
    "TraceFileSource",
    "TransientSourceError",
    "TransportError",
    "TuneFault",
    "WATCHER_KINDS",
    "WatcherPolicy",
    "WatcherStage",
    "WorkerError",
    "as_source",
    "describe_checkpoint",
    "execute_migration",
    "parse_endpoint",
    "parse_endpoints",
    "read_checkpoint",
    "run_worker",
    "write_checkpoint",
]
