"""Two-stage exact + probabilistic detection pipeline.

EARDet shards are exact *outside* the ambiguity region; a flow pacing
itself between ``TH_l`` and ``TH_h`` is invisible to them forever.  This
module adds the second stage that watches exactly that blind spot: a
per-shard **watcher** — :class:`~repro.detectors.clef.TwinRLFD` (the
CLEF arrangement; the exact half of CLEF *is* the shard's EARDet) or
:class:`~repro.detectors.loft.LOFT` — observing the same routed
sub-stream as the shard's EARDet.

Stage separation is a hard semantic boundary, mirroring how the
exactness envelope refuses to launder lost packets:

- The watcher **taps the stream at the routing point**, before queueing,
  overflow, fault injection, or the overload ladder touch it.  It never
  feeds the EARDet shards and never consumes from their queues, so
  enabling a watcher leaves exact detections bit-identical — and the
  watcher keeps seeing in-region traffic even while the ladder sheds the
  exact stage's load (which is precisely when the ambiguity region
  widens and watching it matters most).
- Watcher verdicts are **probabilistic** and are carried in their own
  :class:`ServiceReport` section.  Nothing in this module ever merges
  them into ``ServiceReport.detections`` or the exactness envelope.

The stage checkpoints with the engine: its snapshot rides in the engine
snapshot's optional ``"watcher"`` key (engine format unchanged — old
checkpoints simply have no watcher state and restore a fresh stage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.config import EARDetConfig
from ..detectors.base import Detector
from ..detectors.clef import TwinRLFD
from ..detectors.loft import LOFT
from ..model.packet import FlowId, Packet

#: Watcher kinds the service can arm ("none" is expressed as no policy).
WATCHER_KINDS = ("clef", "loft")

#: Default sizing: small enough to be an obviously-cheap sidecar next to
#: an EARDet shard, large enough to localize a handful of in-region
#: flows (override per deployment via the CLI sizing flags).
DEFAULT_COUNTERS = 32
DEFAULT_DEPTH = 2
DEFAULT_FAST_PERIOD_NS = 50_000_000
DEFAULT_SLOW_PERIOD_NS = 400_000_000
DEFAULT_EPOCH_NS = 100_000_000
DEFAULT_STAGES = 2
DEFAULT_WATCHLIST = 64
DEFAULT_FLOW_LIMIT = 4096


@dataclass(frozen=True)
class WatcherPolicy:
    """Which watcher to arm per shard, and its sizing.

    ``counters`` is the RLFD branching factor for ``kind="clef"`` and
    the per-stage aggregate count for ``kind="loft"``; the remaining
    fields apply to one kind each and are ignored by the other.
    """

    kind: str
    counters: int = DEFAULT_COUNTERS
    depth: int = DEFAULT_DEPTH
    fast_period_ns: int = DEFAULT_FAST_PERIOD_NS
    slow_period_ns: int = DEFAULT_SLOW_PERIOD_NS
    epoch_ns: int = DEFAULT_EPOCH_NS
    stages: int = DEFAULT_STAGES
    watchlist: int = DEFAULT_WATCHLIST
    flow_limit: int = DEFAULT_FLOW_LIMIT
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in WATCHER_KINDS:
            raise ValueError(
                f"watcher kind must be one of {WATCHER_KINDS}, got "
                f"{self.kind!r}"
            )

    def build(self, config: EARDetConfig, shard: int) -> Detector:
        """Instantiate this policy's watcher for one shard (seeds are
        salted per shard so shards group flows independently)."""
        shard_seed = (self.seed * 0x1000003) ^ (shard + 1)
        if self.kind == "clef":
            return TwinRLFD.for_config(
                config,
                counters=self.counters,
                depth=self.depth,
                fast_period_ns=self.fast_period_ns,
                slow_period_ns=self.slow_period_ns,
                seed=shard_seed,
            )
        return LOFT.for_config(
            config,
            aggregates=self.counters,
            epoch_ns=self.epoch_ns,
            stages=self.stages,
            watchlist=self.watchlist,
            flow_limit=self.flow_limit,
            seed=shard_seed,
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form stored in checkpoint metadata."""
        return {
            "kind": self.kind,
            "counters": self.counters,
            "depth": self.depth,
            "fast_period_ns": self.fast_period_ns,
            "slow_period_ns": self.slow_period_ns,
            "epoch_ns": self.epoch_ns,
            "stages": self.stages,
            "watchlist": self.watchlist,
            "flow_limit": self.flow_limit,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WatcherPolicy":
        known = {name for name in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown watcher policy fields {sorted(unknown)!r}"
            )
        return cls(**data)  # type: ignore[arg-type]


class WatcherStage:
    """Per-shard ambiguity-region watchers riding next to the engine.

    The engine calls :meth:`observe` for every packet at its routing
    point; everything else here is reporting and checkpointing.  The
    stage never returns verdicts into the ingest path — a probabilistic
    verdict must be *read out* of the watcher section, never folded into
    the exact detection set.
    """

    #: Version of the stage snapshot schema; bump on incompatible change.
    SNAPSHOT_FORMAT = 1

    def __init__(
        self, policy: WatcherPolicy, config: EARDetConfig, shards: int
    ):
        if shards < 1:
            raise ValueError(f"need at least 1 shard, got {shards}")
        self.policy = policy
        self.config = config
        self._watchers: List[Detector] = [
            policy.build(config, shard) for shard in range(shards)
        ]

    # -- hot path ----------------------------------------------------------

    def observe(self, packet: Packet, shard: int) -> None:
        """Feed one routed packet to its shard's watcher.  The verdict
        (if any) lands in the watcher's own sink; nothing is returned to
        the caller's ingest path by design."""
        self._watchers[shard].observe(packet)

    # -- introspection -----------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._watchers)

    @property
    def kind(self) -> str:
        return self.policy.kind

    def watcher(self, shard: int) -> Detector:
        """The underlying detector of one shard (tests, telemetry)."""
        return self._watchers[shard]

    def verdicts(self) -> Dict[FlowId, int]:
        """Merged ``{flow: first-flag time ns}`` across shards.  Flows
        are disjoint across shards (same router as the exact stage), so
        the union is conflict-free.  **Probabilistic** — never merge
        into an exact detection set."""
        merged: Dict[FlowId, int] = {}
        for watcher in self._watchers:
            for fid, time_ns in watcher.detected.items():
                current = merged.get(fid)
                if current is None or time_ns < current:
                    merged[fid] = time_ns
        return merged

    def occupancy(self, shard: int) -> int:
        """Counters/buckets the shard's watcher currently holds."""
        return self._watchers[shard].counter_count()

    def shard_stats(self, shard: int) -> Dict[str, int]:
        """The shard watcher's operational stats (kind-specific keys;
        LOFT exposes churn, TwinRLFD per-twin descent counts)."""
        watcher = self._watchers[shard]
        if isinstance(watcher, TwinRLFD):
            fast = watcher.fast.stats
            slow = watcher.slow.stats
            return {
                "packets": fast.packets,
                "fast_period_ends": fast.period_ends,
                "fast_descents": fast.descents,
                "fast_flags": fast.flags,
                "slow_period_ends": slow.period_ends,
                "slow_descents": slow.descents,
                "slow_flags": slow.flags,
            }
        assert isinstance(watcher, LOFT)
        return watcher.stats.snapshot()

    def churn(self) -> Dict[str, int]:
        """Candidate churn summed across shards: how busy the
        promotion/descent machinery is (telemetry)."""
        totals = {"promotions": 0, "evictions": 0, "demotions": 0, "descents": 0}
        for shard in range(len(self._watchers)):
            stats = self.shard_stats(shard)
            totals["promotions"] += stats.get("promotions", 0)
            totals["evictions"] += stats.get("evictions", 0)
            totals["demotions"] += stats.get("demotions", 0)
            totals["descents"] += stats.get(
                "descents",
                stats.get("fast_descents", 0) + stats.get("slow_descents", 0),
            )
        return totals

    def report(self) -> Dict[str, object]:
        """The ``ServiceReport.watcher`` section: JSON-safe, explicitly
        labelled probabilistic, with per-shard occupancy and churn."""
        verdicts = self.verdicts()
        return {
            "kind": self.policy.kind,
            "probabilistic": True,
            "verdicts": {
                str(fid): time_ns
                for fid, time_ns in sorted(
                    verdicts.items(), key=lambda item: (item[1], str(item[0]))
                )
            },
            "verdict_count": len(verdicts),
            "memory_counters": sum(
                self.occupancy(shard) for shard in range(len(self._watchers))
            ),
            "churn": self.churn(),
            "shards": [
                {
                    "shard": shard,
                    "occupancy": self.occupancy(shard),
                    "verdicts": len(self._watchers[shard].detected),
                    "stats": self.shard_stats(shard),
                }
                for shard in range(len(self._watchers))
            ],
        }

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Complete stage state as plain data (rides in the engine
        snapshot's optional ``"watcher"`` key)."""
        return {
            "format": self.SNAPSHOT_FORMAT,
            "policy": self.policy.as_dict(),
            "shards": [watcher.snapshot() for watcher in self._watchers],
        }

    def restore(self, state: Dict[str, object]) -> None:
        fmt = state.get("format")
        if fmt != self.SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported watcher stage snapshot format {fmt!r} "
                f"(this build reads format {self.SNAPSHOT_FORMAT})"
            )
        policy = WatcherPolicy.from_dict(state["policy"])  # type: ignore[arg-type]
        if policy != self.policy:
            raise ValueError(
                f"watcher snapshot policy {policy.as_dict()!r} does not "
                f"match armed policy {self.policy.as_dict()!r}"
            )
        shards = state["shards"]
        if len(shards) != len(self._watchers):  # type: ignore[arg-type]
            raise ValueError(
                f"watcher snapshot has {len(shards)} shards, "  # type: ignore[arg-type]
                f"stage has {len(self._watchers)}"
            )
        for watcher, shard_state in zip(self._watchers, shards):  # type: ignore[arg-type]
            watcher.restore(shard_state)  # type: ignore[attr-defined]

    def reset(self) -> None:
        for watcher in self._watchers:
            watcher.reset()

    def __repr__(self) -> str:
        return (
            f"WatcherStage(kind={self.policy.kind!r}, "
            f"shards={len(self._watchers)}, "
            f"verdicts={len(self.verdicts())})"
        )
