"""Runtime assertion of the paper's algorithm-state invariants.

The guarantees of Section 3 are consequences of invariants that the
detector state must satisfy after *every* packet.  Software does not stay
correct by proof alone — memory corruption, a buggy refactor, a bad
checkpoint restore, or an unforeseen input path can all break them —
so :class:`InvariantChecker` re-derives the invariants from live state
at a configurable sampling cadence and raises a typed
:class:`InvariantViolation` (with full state forensics) the moment one
fails.

Invariants checked for :class:`~repro.core.eardet.EARDet`:

``counter-bound``
    Every stored counter value lies in ``[1, beta_th + alpha]``
    (Section 3.3: the blacklist caps growth at ``beta_th`` plus one
    maximum-size packet; zeroed counters must have been evicted).
``store-size``
    At most ``n`` counters are stored.
``carryover-range``
    The virtual-traffic carryover numerator satisfies
    ``-NS/2 <= r < NS/2`` in byte-nanosecond units (the paper's
    "differs from the true volume by less than one byte" bound).
``blacklist-bound``
    ``|L| <= n`` — the bounded local blacklist never outgrows the
    counter store.
``blacklist-reported``
    Every blacklisted flow appears in the report sink: a flow is only
    blacklisted at the moment it is reported, and the sink never
    forgets (no silent re-admission of a detected flow).
``blacklist-monotone``
    While a flow stays blacklisted and stored, its counter is only ever
    touched by ``decrement_all`` — values must be monotone
    non-increasing between samples.  (The tracker is invalidated when a
    detection or prune occurred in between, since legitimate
    re-detection resets a counter.)
``time-monotone``
    The detector's internal clock (``_last_time``) never runs backward.

For :class:`~repro.detectors.exact.ExactLeakyBucketDetector`:

``bucket-level``
    Every bucket satisfies ``0 <= level_scaled <= peak_scaled``.
``bucket-drain``
    Per-flow bucket clocks and peaks are monotone non-decreasing
    between samples.

For every :class:`~repro.detectors.base.Detector` (including the
``fmf``/``amf`` baselines):

``sink-monotone``
    The report sink never shrinks — detections are permanent.

Checks are read-only and touch every counter, so a full check is O(n);
``every=k`` samples one check per ``k`` packets to amortize the cost
(see ``benchmarks/bench_guard.py`` for measured overhead).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Optional

from ..model.units import NS_PER_S

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.eardet import EARDet
    from ..detectors.base import Detector
    from ..detectors.exact import ExactLeakyBucketDetector


class InvariantViolation(RuntimeError):
    """An algorithm-state invariant does not hold.

    This is *not* a recoverable condition: the detector's logic or
    memory is corrupted, so restarting from the same state (or a
    checkpoint of it) cannot help.  The service supervisor treats it as
    permanent and aborts with the attached forensics.

    Attributes
    ----------
    check:
        Machine-readable invariant name (e.g. ``"counter-bound"``).
    detector:
        The detector's scheme name (``"eardet"``, ``"exact"``, ...).
    observed / bound:
        The violating value and the bound it broke, stringified.
    forensics:
        JSON-safe snapshot of the relevant detector state at the moment
        of the violation.
    """

    def __init__(
        self,
        message: str,
        *,
        check: str,
        detector: str,
        observed: Optional[object] = None,
        bound: Optional[object] = None,
        forensics: Optional[Dict[str, object]] = None,
    ):
        super().__init__(message)
        self.check = check
        self.detector = detector
        self.observed = None if observed is None else str(observed)
        self.bound = None if bound is None else str(bound)
        self.forensics: Dict[str, object] = forensics or {}

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe payload (crosses process boundaries in the
        multiprocess engine's worker replies)."""
        return {
            "message": str(self),
            "check": self.check,
            "detector": self.detector,
            "observed": self.observed,
            "bound": self.bound,
            "forensics": self.forensics,
        }


class InvariantChecker:
    """Sampled runtime verification of detector-state invariants.

    Attach with :meth:`repro.detectors.base.Detector.attach_checker`;
    the detector then calls :meth:`after_packet` after each processed
    packet and the checker runs a full :meth:`check_now` every
    ``every`` packets.  ``every=1`` checks after every packet (maximum
    detection latency: one packet); larger values trade latency for
    overhead.

    The checker is a monitor, not part of detector state: it holds only
    derived tracking data (last seen clocks, last seen counter values)
    and must be :meth:`reset` whenever the detector's state jumps
    discontinuously (reset, checkpoint restore) — the detector hooks do
    this automatically.
    """

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError(f"sampling cadence must be >= 1, got {every}")
        self.every = every
        #: Packets observed since the last reset.
        self.packets_seen = 0
        #: Full invariant sweeps executed.
        self.checks_run = 0
        #: Monotonic nanoseconds spent inside sweeps — the measured
        #: sampling cost telemetry surfaces per shard.  Accumulates across
        #: :meth:`reset` (it describes the monitor, not detector state).
        self.check_time_ns = 0
        #: Violations raised (at most 1 unless the caller swallows them).
        self.violations = 0
        self._sink_size = 0
        self._last_time: Optional[int] = None
        self._blacklist_values: Dict[object, int] = {}
        self._event_marker: Optional[object] = None
        self._bucket_clocks: Dict[object, int] = {}
        self._bucket_peaks: Dict[object, int] = {}

    def after_packet(self, detector: "Detector") -> None:
        """Per-packet hook: run a full check every ``every`` packets."""
        self.packets_seen += 1
        if self.packets_seen % self.every == 0:
            self.check_now(detector)

    def reset(self) -> None:
        """Forget all tracking state (call on detector reset/restore)."""
        self.packets_seen = 0
        self._sink_size = 0
        self._last_time = None
        self._blacklist_values = {}
        self._event_marker = None
        self._bucket_clocks = {}
        self._bucket_peaks = {}

    # -- the sweep ---------------------------------------------------------

    def check_now(self, detector: "Detector") -> None:
        """Run every applicable invariant check against live state.

        Raises :class:`InvariantViolation` on the first failure.
        """
        self.checks_run += 1
        started = time.monotonic_ns()
        try:
            self._check_sink(detector)
            # Local imports keep repro.guard importable without dragging
            # in every detector implementation.
            from ..core.eardet import EARDet
            from ..detectors.exact import ExactLeakyBucketDetector

            if isinstance(detector, EARDet):
                self._check_eardet(detector)
            elif isinstance(detector, ExactLeakyBucketDetector):
                self._check_exact(detector)
        finally:
            # Count the sweep's cost even when it raises: a violating
            # sweep still spent the time.
            self.check_time_ns += time.monotonic_ns() - started

    # -- generic -----------------------------------------------------------

    def _check_sink(self, detector: "Detector") -> None:
        size = len(detector.sink)
        if size < self._sink_size:
            self._fail(
                detector,
                check="sink-monotone",
                message=(
                    f"report sink shrank from {self._sink_size} to {size} "
                    "flows; detections must be permanent"
                ),
                observed=size,
                bound=self._sink_size,
            )
        self._sink_size = size

    # -- EARDet ------------------------------------------------------------

    def _check_eardet(self, detector: "EARDet") -> None:
        config = detector.config
        store = detector._store
        blacklist = detector._blacklist

        stored = len(store)
        if stored > config.n:
            self._fail(
                detector,
                check="store-size",
                message=(
                    f"counter store holds {stored} flows but is budgeted "
                    f"for n={config.n}"
                ),
                observed=stored,
                bound=config.n,
            )

        counter_bound = config.beta_th + config.alpha
        for fid, value in store.items():
            if not 1 <= value <= counter_bound:
                self._fail(
                    detector,
                    check="counter-bound",
                    message=(
                        f"counter for flow {fid!r} is {value}B, outside "
                        f"[1, beta_th + alpha] = [1, {counter_bound}]"
                    ),
                    observed=value,
                    bound=counter_bound,
                )

        remainder = detector._carryover.remainder_scaled
        half = NS_PER_S // 2
        if not -half <= remainder < half:
            self._fail(
                detector,
                check="carryover-range",
                message=(
                    f"carryover numerator {remainder} outside "
                    f"[-{half}, {half}) byte-ns"
                ),
                observed=remainder,
                bound=f"[-{half}, {half})",
            )

        if len(blacklist) > config.n:
            self._fail(
                detector,
                check="blacklist-bound",
                message=(
                    f"blacklist holds {len(blacklist)} flows, more than "
                    f"the n={config.n} bound"
                ),
                observed=len(blacklist),
                bound=config.n,
            )

        for fid in blacklist:
            if fid not in detector.sink:
                self._fail(
                    detector,
                    check="blacklist-reported",
                    message=(
                        f"flow {fid!r} is blacklisted but absent from the "
                        "report sink; detections must precede blacklisting "
                        "and are permanent"
                    ),
                    observed=repr(fid),
                )

        # A detection or prune between samples can legitimately reset a
        # blacklisted counter (decay -> re-admission -> re-detection), so
        # the monotone tracker is only trusted while no such event fired.
        marker = (
            detector.stats.detections,
            detector.stats.blacklist_prunes,
        )
        if marker != self._event_marker:
            self._blacklist_values = {}
            self._event_marker = marker
        current: Dict[object, int] = {}
        for fid in blacklist:
            if fid in store:
                value = store.get(fid)
                previous = self._blacklist_values.get(fid)
                if previous is not None and value > previous:
                    self._fail(
                        detector,
                        check="blacklist-monotone",
                        message=(
                            f"blacklisted flow {fid!r}'s counter grew from "
                            f"{previous}B to {value}B; only decrement_all "
                            "may touch a blacklisted counter"
                        ),
                        observed=value,
                        bound=previous,
                    )
                current[fid] = value
        self._blacklist_values = current

        last_time = detector._last_time
        if self._last_time is not None and last_time < self._last_time:
            self._fail(
                detector,
                check="time-monotone",
                message=(
                    f"detector clock ran backward: {last_time}ns after "
                    f"{self._last_time}ns"
                ),
                observed=last_time,
                bound=self._last_time,
            )
        self._last_time = last_time

    # -- exact leaky-bucket detector ---------------------------------------

    def _check_exact(self, detector: "ExactLeakyBucketDetector") -> None:
        current_clocks: Dict[object, int] = {}
        current_peaks: Dict[object, int] = {}
        for fid, bucket in detector._buckets.items():
            if not 0 <= bucket.level_scaled <= bucket.peak_scaled:
                self._fail(
                    detector,
                    check="bucket-level",
                    message=(
                        f"bucket for flow {fid!r} has level "
                        f"{bucket.level_scaled} outside "
                        f"[0, peak={bucket.peak_scaled}]"
                    ),
                    observed=bucket.level_scaled,
                    bound=bucket.peak_scaled,
                )
            previous_clock = self._bucket_clocks.get(fid)
            if previous_clock is not None and bucket.last_time < previous_clock:
                self._fail(
                    detector,
                    check="bucket-drain",
                    message=(
                        f"bucket clock for flow {fid!r} ran backward: "
                        f"{bucket.last_time}ns after {previous_clock}ns"
                    ),
                    observed=bucket.last_time,
                    bound=previous_clock,
                )
            previous_peak = self._bucket_peaks.get(fid)
            if previous_peak is not None and bucket.peak_scaled < previous_peak:
                self._fail(
                    detector,
                    check="bucket-drain",
                    message=(
                        f"bucket peak for flow {fid!r} decreased from "
                        f"{previous_peak} to {bucket.peak_scaled}"
                    ),
                    observed=bucket.peak_scaled,
                    bound=previous_peak,
                )
            current_clocks[fid] = bucket.last_time
            current_peaks[fid] = bucket.peak_scaled
        self._bucket_clocks = current_clocks
        self._bucket_peaks = current_peaks

    # -- failure -----------------------------------------------------------

    def _fail(
        self,
        detector: "Detector",
        *,
        check: str,
        message: str,
        observed: Optional[object] = None,
        bound: Optional[object] = None,
    ) -> None:
        self.violations += 1
        raise InvariantViolation(
            f"{detector.name} invariant {check!r} violated after "
            f"{self.packets_seen} packets: {message}",
            check=check,
            detector=detector.name,
            observed=observed,
            bound=bound,
            forensics=self._forensics(detector),
        )

    def _forensics(self, detector: "Detector") -> Dict[str, object]:
        """JSON-safe snapshot of the state that broke the invariant."""
        payload: Dict[str, object] = {
            "detector": detector.name,
            "packets_seen": self.packets_seen,
            "checks_run": self.checks_run,
            "sink_size": len(detector.sink),
        }
        from ..core.eardet import EARDet
        from ..detectors.exact import ExactLeakyBucketDetector

        if isinstance(detector, EARDet):
            config = detector.config
            payload.update(
                {
                    "config": {
                        "rho": config.rho,
                        "n": config.n,
                        "beta_th": config.beta_th,
                        "alpha": config.alpha,
                        "virtual_unit": config.virtual_unit,
                    },
                    "store": sorted(
                        (repr(fid), value)
                        for fid, value in detector._store.items()
                    ),
                    "blacklist": sorted(
                        repr(fid) for fid in detector._blacklist
                    ),
                    "carryover_numerator": (
                        detector._carryover.remainder_scaled
                    ),
                    "last_time": detector._last_time,
                    "last_size": detector._last_size,
                    "stats": detector.stats.snapshot(),
                }
            )
        elif isinstance(detector, ExactLeakyBucketDetector):
            payload.update(
                {
                    "threshold": {
                        "gamma": detector.threshold.gamma,
                        "beta": detector.threshold.beta,
                    },
                    "buckets": sorted(
                        (
                            repr(fid),
                            bucket.level_scaled,
                            bucket.peak_scaled,
                            bucket.last_time,
                        )
                        for fid, bucket in detector._buckets.items()
                    ),
                }
            )
        return payload

    def __repr__(self) -> str:
        return (
            f"InvariantChecker(every={self.every}, "
            f"packets_seen={self.packets_seen}, "
            f"checks_run={self.checks_run})"
        )
