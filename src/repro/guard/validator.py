"""Stream validation: the ingest-hardening half of :mod:`repro.guard`.

Every guarantee in the paper assumes the detector sees a *physical*
packet stream: non-decreasing timestamps, sizes within the link's frame
envelope ``[min_size, max_size]`` (``alpha`` is the upper end), and flow
IDs that identify real flows.  Real ingest paths violate all three —
capture reordering, corrupted trace records, adversarially crafted
metadata — so :class:`StreamValidator` sits at the boundary and gives
each violation class an explicit policy instead of silently trusting
input:

========================  =======================================
violation class           what it means
========================  =======================================
``negative-time``         arrival time below zero
``time-regression``       packet arrives before its predecessor
``size-range``            size outside ``[min_size, max_size]``
``fid-invalid``           flow ID is None, unhashable, or spoofs
                          the internal virtual-flow namespace
========================  =======================================

Policies per class: ``reject`` (raise :class:`StreamViolationError` with
forensics), ``clamp`` (repair the offending field), ``drop`` (discard
the packet), and — for ``time-regression`` only — ``reorder`` (hold up
to ``reorder_window`` packets in a bounded buffer and re-emit them in
time order; packets displaced further than the window are dropped).

Accounting is exact: :class:`ValidationStats` counts every examined
packet, every violation by class, and every action taken, as plain
integers.  Clamping or dropping *mutates the stream*, which voids the
paper's exactness guarantee exactly like a lost packet — the service
layer surfaces ``stats.mutated`` through the
:class:`~repro.service.health.ServiceReport` envelope.  Reordering, by
contrast, preserves the packet multiset: it repairs capture jitter
rather than changing what was sent, so it is accounted but does not
void exactness.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.virtual import is_virtual_fid
from ..model.packet import MAX_PACKET_SIZE, MIN_PACKET_SIZE, FlowId, Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model.stream import PacketStream

#: Violation classes.
NEGATIVE_TIME = "negative-time"
TIME_REGRESSION = "time-regression"
SIZE_RANGE = "size-range"
FID_INVALID = "fid-invalid"

VIOLATION_CLASSES = (NEGATIVE_TIME, TIME_REGRESSION, SIZE_RANGE, FID_INVALID)

#: Policy actions.
REJECT = "reject"
CLAMP = "clamp"
DROP = "drop"
REORDER = "reorder"

#: Retained per-violation detail records (counts are always exact).
DEFAULT_SAMPLE_CAPACITY = 64


class StreamViolationError(ValueError):
    """A stream violation under the ``reject`` policy.

    Carries forensics: the violation class, the 0-based index of the
    offending packet in the raw input, and the packet's fields.
    """

    def __init__(
        self,
        message: str,
        violation: str,
        index: int,
        packet: Optional[Packet] = None,
    ):
        super().__init__(message)
        self.violation = violation
        self.index = index
        self.packet = packet


@dataclass(frozen=True)
class ViolationSample:
    """One recorded violation: which packet, what was wrong, what we did."""

    index: int
    violation: str
    action: str
    time_ns: int
    size: int
    fid: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "violation": self.violation,
            "action": self.action,
            "time_ns": self.time_ns,
            "size": self.size,
            "fid": self.fid,
        }


@dataclass
class ValidationStats:
    """Exact integer accounting of a validator's work.

    ``mutated`` counts packets whose content the validator changed or
    removed (clamps + drops) — the exactness-voiding actions.  Reorders
    preserve the packet multiset and are counted separately.
    """

    examined: int = 0
    emitted: int = 0
    violations: Dict[str, int] = field(default_factory=dict)
    clamped: int = 0
    dropped: int = 0
    reordered: int = 0
    rejected: int = 0
    first_mutation_time_ns: Optional[int] = None
    first_mutation_index: Optional[int] = None
    samples: List[ViolationSample] = field(default_factory=list)
    sample_capacity: int = DEFAULT_SAMPLE_CAPACITY

    @property
    def mutated(self) -> int:
        """Packets altered or removed — each voids exactness like a loss."""
        return self.clamped + self.dropped

    @property
    def total_violations(self) -> int:
        return sum(self.violations.values())

    def record(
        self,
        violation: str,
        action: str,
        index: int,
        packet: Packet,
    ) -> None:
        """Count one violation and the action applied to it."""
        self.violations[violation] = self.violations.get(violation, 0) + 1
        if action == CLAMP:
            self.clamped += 1
        elif action == DROP:
            self.dropped += 1
        elif action == REORDER:
            self.reordered += 1
        elif action == REJECT:
            self.rejected += 1
        if action in (CLAMP, DROP) and self.first_mutation_index is None:
            self.first_mutation_index = index
            self.first_mutation_time_ns = packet.time
        if len(self.samples) < self.sample_capacity:
            self.samples.append(
                ViolationSample(
                    index=index,
                    violation=violation,
                    action=action,
                    time_ns=packet.time,
                    size=packet.size,
                    fid=repr(packet.fid),
                )
            )

    def as_dict(self) -> Dict[str, object]:
        """Machine-consumable form (folded into ``ServiceReport``).

        ``violations`` is zero-filled over every class in
        :data:`VIOLATION_CLASSES`: a clean run emits the same schema as a
        dirty one, so JSON consumers (dashboards, the metrics exporter)
        never have to special-case missing keys.
        """
        violations = {name: 0 for name in VIOLATION_CLASSES}
        violations.update(self.violations)
        return {
            "examined": self.examined,
            "emitted": self.emitted,
            "violations": violations,
            "clamped": self.clamped,
            "dropped": self.dropped,
            "reordered": self.reordered,
            "rejected": self.rejected,
            "mutated": self.mutated,
            "first_mutation_time_ns": self.first_mutation_time_ns,
            "first_mutation_index": self.first_mutation_index,
            "samples": [sample.as_dict() for sample in self.samples],
        }

    def reset(self) -> None:
        self.examined = 0
        self.emitted = 0
        self.violations = {}
        self.clamped = 0
        self.dropped = 0
        self.reordered = 0
        self.rejected = 0
        self.first_mutation_time_ns = None
        self.first_mutation_index = None
        self.samples = []


@dataclass(frozen=True)
class GuardPolicy:
    """Per-violation-class actions plus the size envelope.

    ``min_size``/``max_size`` default to the Ethernet frame envelope the
    paper uses (``alpha = 1518``); pass a different ``max_size`` to match
    the detector's engineered ``alpha``.  ``reorder_window`` is the
    bounded buffer depth used when ``time_regression == "reorder"``: a
    late packet displaced by at most that many packets is re-slotted into
    time order; one displaced further is dropped (and counted).
    """

    negative_time: str = REJECT
    time_regression: str = REJECT
    size_range: str = REJECT
    fid_invalid: str = REJECT
    min_size: int = MIN_PACKET_SIZE
    max_size: int = MAX_PACKET_SIZE
    reorder_window: int = 0

    def __post_init__(self) -> None:
        for name, allowed in (
            ("negative_time", (REJECT, CLAMP, DROP)),
            ("time_regression", (REJECT, CLAMP, DROP, REORDER)),
            ("size_range", (REJECT, CLAMP, DROP)),
            # Clamping a flow ID would merge distinct invalid flows into
            # one synthetic flow — a correctness trap, so it is not
            # offered.
            ("fid_invalid", (REJECT, DROP)),
        ):
            value = getattr(self, name)
            if value not in allowed:
                raise ValueError(
                    f"{name} policy must be one of {allowed}, got {value!r}"
                )
        if not 0 < self.min_size <= self.max_size:
            raise ValueError(
                f"need 0 < min_size <= max_size, got "
                f"[{self.min_size}, {self.max_size}]"
            )
        if self.time_regression == REORDER and self.reorder_window < 1:
            raise ValueError(
                "time_regression='reorder' needs reorder_window >= 1, "
                f"got {self.reorder_window}"
            )
        if self.reorder_window < 0:
            raise ValueError(
                f"reorder_window must be >= 0, got {self.reorder_window}"
            )

    # -- presets -----------------------------------------------------------

    @classmethod
    def strict(cls, **overrides: object) -> "GuardPolicy":
        """Reject every violation (the default)."""
        return cls(**overrides)  # type: ignore[arg-type]

    @classmethod
    def repair(cls, **overrides: object) -> "GuardPolicy":
        """Best-effort repair: clamp times/sizes, drop invalid flow IDs.

        Every repair is counted as a mutation, so downstream exactness
        reporting stays honest.
        """
        settings: Dict[str, object] = {
            "negative_time": CLAMP,
            "time_regression": CLAMP,
            "size_range": CLAMP,
            "fid_invalid": DROP,
        }
        settings.update(overrides)
        return cls(**settings)  # type: ignore[arg-type]

    @classmethod
    def reordering(cls, window: int, **overrides: object) -> "GuardPolicy":
        """Repair preset with a bounded reorder buffer for late packets."""
        settings: Dict[str, object] = {
            "negative_time": CLAMP,
            "time_regression": REORDER,
            "size_range": CLAMP,
            "fid_invalid": DROP,
            "reorder_window": window,
        }
        settings.update(overrides)
        return cls(**settings)  # type: ignore[arg-type]


class StreamValidator:
    """Validate (and optionally repair) a packet stream at the ingest
    boundary.

    One validator may process many streams; positional state (last
    accepted time, the reorder buffer) is local to each
    :meth:`iter_validated` call, while :attr:`stats` accumulates across
    calls — so a replayed source (checkpoint recovery) keeps exact
    cumulative accounting.
    """

    def __init__(
        self,
        policy: Optional[GuardPolicy] = None,
        stats: Optional[ValidationStats] = None,
    ):
        self.policy = policy or GuardPolicy()
        self.stats = stats if stats is not None else ValidationStats()

    # -- the validation pass ----------------------------------------------

    def iter_validated(self, packets: Iterable[Packet]) -> Iterator[Packet]:
        """Yield the validated stream, applying this validator's policy.

        Output timestamps are guaranteed non-decreasing and every output
        size lies in ``[min_size, max_size]`` (unless the corresponding
        policies are ``reject``, in which case a violation raises
        instead).
        """
        policy = self.policy
        stats = self.stats
        reorder = policy.time_regression == REORDER
        window = policy.reorder_window
        # Bounded min-heap of (time, arrival sequence, packet); ties keep
        # arrival order, matching repro.model.stream.merge semantics.
        buffer: List[Tuple[int, int, Packet]] = []
        last_time: Optional[int] = None
        max_seen: Optional[int] = None

        def emit_ordered(packet: Packet, index: int) -> Optional[Packet]:
            """Enforce output monotonicity; returns the packet to yield
            (possibly clamped) or None when it was dropped."""
            nonlocal last_time
            if last_time is not None and packet.time < last_time:
                if reorder:
                    # Popped from the sorted buffer yet still late: the
                    # displacement exceeded the window.  The multiset
                    # can no longer be preserved — drop, and count the
                    # mutation.
                    stats.record(TIME_REGRESSION, DROP, index, packet)
                    return None
                action = policy.time_regression
                stats.record(TIME_REGRESSION, action, index, packet)
                if action == REJECT:
                    raise StreamViolationError(
                        f"packet #{index} at t={packet.time}ns arrives "
                        f"after a packet at t={last_time}ns",
                        violation=TIME_REGRESSION,
                        index=index,
                        packet=packet,
                    )
                if action == DROP:
                    return None
                packet = Packet(
                    time=last_time, size=packet.size, fid=packet.fid
                )
            last_time = packet.time
            return packet

        screen = self._screen
        min_size = policy.min_size
        max_size = policy.max_size
        for index, packet in enumerate(packets):
            stats.examined += 1
            # Fast path: int/str flow IDs are always hashable and can
            # never spoof the (tuple-typed) virtual namespace, so a
            # packet with one and clean time/size needs no screening.
            fid_type = type(packet.fid)
            if (
                (fid_type is int or fid_type is str)
                and packet.time >= 0
                and min_size <= packet.size <= max_size
            ):
                pass
            else:
                screened = screen(packet, index)
                if screened is None:
                    continue
                packet = screened
            if reorder:
                if max_seen is not None and packet.time < max_seen:
                    # Genuinely out of order; the buffer will re-slot it
                    # (or emit_ordered will drop it if it pops too late).
                    stats.record(TIME_REGRESSION, REORDER, index, packet)
                if max_seen is None or packet.time > max_seen:
                    max_seen = packet.time
                heapq.heappush(buffer, (packet.time, index, packet))
                if len(buffer) > window:
                    _, popped_index, popped = heapq.heappop(buffer)
                    emitted = emit_ordered(popped, popped_index)
                    if emitted is not None:
                        stats.emitted += 1
                        yield emitted
            else:
                emitted = emit_ordered(packet, index)
                if emitted is not None:
                    stats.emitted += 1
                    yield emitted
        while buffer:
            _, popped_index, popped = heapq.heappop(buffer)
            emitted = emit_ordered(popped, popped_index)
            if emitted is not None:
                stats.emitted += 1
                yield emitted

    def validate(self, packets: Iterable[Packet]) -> "PacketStream":
        """Validate eagerly into a time-ordered
        :class:`~repro.model.stream.PacketStream`."""
        from ..model.stream import PacketStream

        return PacketStream(self.iter_validated(packets))

    # -- per-packet screening ---------------------------------------------

    def _screen(self, packet: Packet, index: int) -> Optional[Packet]:
        """Apply the time-sign, size-envelope and fid checks; returns the
        (possibly clamped) packet, or None when it was dropped."""
        policy = self.policy
        stats = self.stats

        fid_problem = self._fid_problem(packet.fid)
        if fid_problem is not None:
            action = policy.fid_invalid
            stats.record(FID_INVALID, action, index, packet)
            if action == REJECT:
                raise StreamViolationError(
                    f"packet #{index} has an invalid flow ID: {fid_problem}",
                    violation=FID_INVALID,
                    index=index,
                    packet=packet,
                )
            return None

        # Packet.__post_init__ already rejects negative times at
        # construction; this guards paths that bypass it (deserializers,
        # subclasses) so the validator's output contract holds anyway.
        if packet.time < 0:
            action = policy.negative_time
            stats.record(NEGATIVE_TIME, action, index, packet)
            if action == REJECT:
                raise StreamViolationError(
                    f"packet #{index} has negative time {packet.time}ns",
                    violation=NEGATIVE_TIME,
                    index=index,
                    packet=packet,
                )
            if action == DROP:
                return None
            packet = Packet(time=0, size=packet.size, fid=packet.fid)

        size = packet.size
        if not policy.min_size <= size <= policy.max_size:
            action = policy.size_range
            stats.record(SIZE_RANGE, action, index, packet)
            if action == REJECT:
                raise StreamViolationError(
                    f"packet #{index} size {size}B is outside "
                    f"[{policy.min_size}, {policy.max_size}]",
                    violation=SIZE_RANGE,
                    index=index,
                    packet=packet,
                )
            if action == DROP:
                return None
            clamped = min(max(size, policy.min_size), policy.max_size)
            packet = Packet(time=packet.time, size=clamped, fid=packet.fid)
        return packet

    @staticmethod
    def _fid_problem(fid: FlowId) -> Optional[str]:
        """Why a flow ID is unusable, or None when it is fine."""
        if fid is None:
            return "None is not a flow"
        try:
            hash(fid)
        except TypeError:
            return f"unhashable flow ID of type {type(fid).__name__}"
        if is_virtual_fid(fid):
            return (
                "flow ID spoofs the detector's internal virtual-flow "
                "namespace"
            )
        return None

    def __repr__(self) -> str:
        return (
            f"StreamValidator(policy={self.policy!r}, "
            f"examined={self.stats.examined}, mutated={self.stats.mutated})"
        )


def validate_stream(
    packets: Iterable[Packet], policy: Optional[GuardPolicy] = None
) -> Tuple["PacketStream", ValidationStats]:
    """One-shot convenience: validate ``packets`` under ``policy``.

    Returns ``(stream, stats)`` where ``stream`` is a time-ordered
    :class:`~repro.model.stream.PacketStream` of the surviving packets.
    """
    validator = StreamValidator(policy)
    stream = validator.validate(packets)
    return stream, validator.stats
