"""Ingest hardening and runtime invariant guardrails.

The paper's headline guarantees — no-FN above ``TH_h``, no-FP below
``TH_l``, exactness outside the ambiguity region — are deterministic
invariants *of the algorithm state*, but they are conditional on sane
input: a trace with non-monotonic timestamps, out-of-range sizes, or
flow IDs that collide with the detector's internal virtual-flow
namespace can drive EARDet into states where the guarantees are void
with no signal to the operator.  This package closes both gaps:

- :mod:`repro.guard.validator` hardens the ingest boundary.  A
  :class:`StreamValidator` wraps any packet iterable and enforces
  timestamp monotonicity, the ``min_size <= size <= max_size`` envelope
  (configurable alpha), non-negative times and flow-ID sanity — with an
  explicit, per-violation-class policy (``reject`` / ``clamp`` /
  ``drop`` / bounded ``reorder``) and exact integer accounting of every
  packet a policy touched.  A clamped or dropped packet voids the
  exactness guarantee the same way a lost one does, and the service
  layer reflects that in its :class:`~repro.service.health.ServiceReport`.
- :mod:`repro.guard.invariants` asserts the paper's Section-3 algorithm-
  state invariants at a configurable sampling cadence while the detector
  runs: counters bounded by ``beta_th + alpha``, the virtual-traffic
  carryover numerator inside its half-open window, counter-store size
  ``<= n``, blacklist discipline, and monotone time/drain progression.
  A violated invariant raises a typed :class:`InvariantViolation`
  carrying full state forensics; the service supervisor treats it as
  permanent (restarting cannot fix corrupted logic or memory).

See ``docs/GUARDRAILS.md`` for policies, the invariant catalogue, and
measured overhead.
"""

from .invariants import InvariantChecker, InvariantViolation
from .validator import (
    CLAMP,
    DROP,
    FID_INVALID,
    NEGATIVE_TIME,
    REJECT,
    REORDER,
    SIZE_RANGE,
    TIME_REGRESSION,
    GuardPolicy,
    StreamValidator,
    StreamViolationError,
    ValidationStats,
    ViolationSample,
    validate_stream,
)

__all__ = [
    "CLAMP",
    "DROP",
    "FID_INVALID",
    "GuardPolicy",
    "InvariantChecker",
    "InvariantViolation",
    "NEGATIVE_TIME",
    "REJECT",
    "REORDER",
    "SIZE_RANGE",
    "StreamValidator",
    "StreamViolationError",
    "TIME_REGRESSION",
    "ValidationStats",
    "ViolationSample",
    "validate_stream",
]
