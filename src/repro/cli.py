"""Command-line entry point: regenerate paper experiments, detect on traces.

Usage::

    eardet list                       # what can be regenerated
    eardet figure5                    # one experiment at default params
    eardet all --preset quick         # everything, CI-sized
    eardet figure6 --scale 1.0 --repetitions 10 --attack-flows 50
    eardet figure5 --dataset caida    # the CAIDA-like trace instead

    # run the detector on a trace file (csv / binary / pcap):
    eardet detect --trace capture.pcap --rho 25000000 \\
        --gamma-l 25000 --beta-l 6072 --gamma-h 250000

    # run the streaming service with 4 shards and periodic checkpoints:
    eardet serve --trace capture.ert --rho 25000000 \\
        --gamma-l 25000 --gamma-h 250000 --shards 4 \\
        --checkpoint state.ckpt --checkpoint-every 100000

    # recover after a crash (replays from the checkpoint boundary):
    eardet serve --trace capture.ert --checkpoint state.ckpt --resume

    # inspect a checkpoint file:
    eardet checkpoint inspect --checkpoint state.ckpt

(Installed as ``eardet`` via the package's console script; also runnable
as ``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List

from .core.config import engineer
from .core.eardet import EARDet
from .experiments import (
    ablations,
    ambiguity,
    appendix_a,
    dynamics,
    elasticity,
    figure1,
    figure5,
    figure6,
    figure7,
    figure8,
    mitigation,
    robustness,
    scalability,
    table2,
    table3,
    tables456,
    window_models,
)
from .experiments.report import ExperimentParams, Table
from .model.units import NS_PER_S


def _as_list(result) -> List:
    if isinstance(result, (list, tuple)):
        return list(result)
    return [result]


#: Experiment registry: name -> callable(params) -> renderable(s).
EXPERIMENTS: Dict[str, Callable[[ExperimentParams], List]] = {
    "figure1": lambda params: _as_list(figure1.run()),
    "table2": lambda params: _as_list(table2.run()),
    "table3": lambda params: _as_list(table3.run(params)),
    "tables456": lambda params: _as_list(tables456.run(scale=params.scale, seed=params.seed)),
    "figure5": lambda params: _as_list(figure5.run(params)),
    "figure6": lambda params: _as_list(figure6.run(params)),
    "figure7": lambda params: _as_list(figure7.run(params)),
    "figure8": lambda params: _as_list(figure8.run()),
    "appendix-a": lambda params: _as_list(appendix_a.run()),
    "scalability": lambda params: _as_list(scalability.run(params)),
    "ablations": lambda params: _as_list(ablations.run(params)),
    "ambiguity": lambda params: _as_list(ambiguity.run(params)),
    "dynamics": lambda params: _as_list(dynamics.run(params)),
    "window-models": lambda params: _as_list(window_models.run(params)),
    "mitigation": lambda params: _as_list(mitigation.run(params)),
    "robustness": lambda params: _as_list(robustness.run(params)),
    "elasticity": lambda params: _as_list(elasticity.run(params)),
}

PRESETS = {
    "quick": ExperimentParams.quick,
    "default": ExperimentParams,
    "paper": ExperimentParams.paper,
}


def package_version() -> str:
    """The installed package version, falling back to the source tree's
    ``repro.__version__`` when running uninstalled (e.g. PYTHONPATH=src)."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from . import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="eardet",
        description=(
            "Regenerate the EARDet paper's tables and figures, run the "
            "detector over a trace file, or serve a stream with the "
            "sharded checkpointing runtime."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {package_version()}",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "list", "all", "detect", "detectors", "analyze", "simulate",
            "serve", "worker", "checkpoint", "metrics", "replay",
            "incidents", "tune", *EXPERIMENTS,
        ],
        help=(
            "experiment to run ('list' to enumerate, 'all' for everything, "
            "'detect'/'analyze' to process a trace file, 'detectors' to "
            "list every detection scheme with its exactness class, "
            "'simulate' for the closed-loop mitigation pipeline, 'serve' "
            "for the streaming service, 'worker' for a remote shard "
            "server (--listen), 'checkpoint' for checkpoint tooling, "
            "'metrics' to fetch a running service's metrics endpoint, "
            "'replay' to re-execute an incident bundle deterministically, "
            "'incidents' to list/show/export the forensic incident log, "
            "'tune' to propose/apply a guarded retune or --watch a live "
            "service's SLO burn rate)"
        ),
    )
    parser.add_argument(
        "subaction",
        nargs="?",
        default=None,
        help="sub-action for multi-verb commands (e.g. 'checkpoint inspect')",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="default",
        help="parameter preset (quick/default/paper)",
    )
    parser.add_argument("--scale", type=float, help="trace scale override")
    parser.add_argument(
        "--repetitions", type=int, help="repetitions-per-point override"
    )
    parser.add_argument(
        "--attack-flows", type=int, help="attack flows per scenario override"
    )
    parser.add_argument("--seed", type=int, help="base RNG seed override")
    parser.add_argument(
        "--dataset",
        choices=["federico", "caida"],
        help="which synthetic dataset the trace-driven experiments use",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit experiment results as JSON instead of text tables",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="draw figure series as ASCII charts instead of tables",
    )

    detect = parser.add_argument_group("detect options")
    detect.add_argument("--trace", help="trace file (.csv, .ert, or .pcap)")
    detect.add_argument("--rho", type=int, help="link capacity, bytes/s")
    detect.add_argument(
        "--gamma-l", type=int, help="protected rate, bytes/s (detect)"
    )
    detect.add_argument(
        "--beta-l", type=int, default=6072, help="protected burst, bytes"
    )
    detect.add_argument(
        "--gamma-h", type=int, help="detection rate, bytes/s (detect)"
    )
    detect.add_argument(
        "--t-upincb", type=float, default=1.0,
        help="incubation-period budget, seconds",
    )
    detect.add_argument(
        "--host-pair", action="store_true",
        help="define flows by (src, dst) instead of the 5-tuple (pcap only)",
    )
    detect.add_argument(
        "--window-ms", type=float, default=100.0,
        help="probe window for peak-rate statistics (analyze)",
    )
    detect.add_argument(
        "--top", type=int, default=10, help="top talkers to list (analyze)"
    )

    serve = parser.add_argument_group("serve / checkpoint options")
    serve.add_argument(
        "--shards", type=int, default=1,
        help="worker shards for the streaming service (serve)",
    )
    serve.add_argument(
        "--engine", choices=["inprocess", "multiprocess", "remote"],
        default=None,
        help="service engine: deterministic in-process, one process per "
        "shard, or one TCP shard server per shard (serve; default "
        "inprocess, or the checkpoint's on --resume; remote requires "
        "--workers)",
    )
    serve.add_argument(
        "--workers", default=None, metavar="HOST:PORT,...",
        help="comma-separated shard-server endpoints for --engine remote "
        "(one per shard, in shard order; extras idle as split spares) "
        "(serve)",
    )
    serve.add_argument(
        "--terminate-grace", type=float, default=None, metavar="SECONDS",
        help="grace the multiprocess engine gives each worker to exit "
        "before escalating SIGTERM -> SIGKILL on abort (serve; default "
        "5s)",
    )
    serve.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="endpoint a remote shard server binds (worker; port 0 picks "
        "an ephemeral port, printed on stdout)",
    )
    serve.add_argument(
        "--checkpoint",
        help="checkpoint file to write periodically / read back (serve, "
        "checkpoint inspect)",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=None,
        help="checkpoint interval in ingested packets (serve)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=1024,
        help="packets pulled from the source per batch (serve)",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=4096,
        help="max pending packets per shard queue (serve)",
    )
    serve.add_argument(
        "--overflow", choices=["block", "drop"], default="block",
        help="full-queue policy: block (exact backpressure) or drop "
        "(lossy, counted) (serve)",
    )
    serve.add_argument(
        "--max-packets", type=int, default=None,
        help="stop after this many packets (serve; for bounded runs)",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="restore state from --checkpoint and replay the trace from "
        "the checkpoint boundary (serve)",
    )
    serve.add_argument(
        "--supervise", action="store_true",
        help="run under the fault-tolerant supervisor: dead shards are "
        "restarted from the last checkpoint with bounded backoff (serve)",
    )
    serve.add_argument(
        "--max-restarts", type=int, default=5,
        help="supervised-restart budget before giving up (serve "
        "--supervise)",
    )
    serve.add_argument(
        "--heartbeat-timeout", type=float, default=None,
        help="treat a shard as wedged when its heartbeat is older than "
        "this many seconds (serve --supervise, multiprocess engine)",
    )
    serve.add_argument(
        "--retry-source", type=int, default=0,
        help="retry transient source failures up to this many consecutive "
        "times with exponential backoff (serve)",
    )
    serve.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help="inject deterministic faults for chaos testing, e.g. "
        "'kill:shard=1,at=5000;drop:shard=0,at=200,count=10;"
        "source:kind=transient,at=3000;ckpt:after=2,mode=truncate;"
        "mig:phase=install,mode=fail,at=1' (serve)",
    )

    reshard = parser.add_argument_group(
        "resharding options",
        description=(
            "Exact live resharding for the streaming service (see "
            "docs/SERVICE.md).  --slots fixes the flow-routing "
            "granularity above the shard count so whole slots can "
            "migrate between shards at batch boundaries without "
            "perturbing detections; --coordinate arms the elastic "
            "coordinator, which splits hot shards / merges cold ones "
            "when load skew persists past its hysteresis."
        ),
    )
    reshard.add_argument(
        "--slots", type=int, default=None, metavar="N",
        help="flow-routing slots (>= --shards; default equal to "
        "--shards, which leaves no resharding headroom) (serve)",
    )
    reshard.add_argument(
        "--coordinate", action="store_true",
        help="arm the skew-driven elastic coordinator (serve; needs "
        "--slots > --shards to have anything to move)",
    )
    reshard.add_argument(
        "--skew-high", type=float, default=2.0, metavar="RATIO",
        help="max/mean per-shard load ratio that triggers a split once "
        "persistent (default 2.0)",
    )
    reshard.add_argument(
        "--skew-low", type=float, default=1.25, metavar="RATIO",
        help="skew ratio below which a merge becomes eligible "
        "(default 1.25)",
    )
    reshard.add_argument(
        "--reshard-persistence", type=int, default=3, metavar="WINDOWS",
        help="consecutive observation windows the skew must persist "
        "before the coordinator acts (default 3)",
    )
    reshard.add_argument(
        "--reshard-cooldown", type=int, default=10, metavar="WINDOWS",
        help="observation windows after any migration attempt before "
        "the next proposal (default 10)",
    )
    reshard.add_argument(
        "--max-shards", type=int, default=8, metavar="N",
        help="ceiling on coordinator-provisioned shards (default 8)",
    )

    control = parser.add_argument_group(
        "adaptive control options",
        description=(
            "Telemetry-driven retuning with guarded, exact hot "
            "reconfiguration (see docs/CONTROL.md).  --control arms the "
            "closed-loop controller on 'serve' (requires telemetry, "
            "e.g. --metrics-port, plus --gamma-h): it scrapes the "
            "metric registry each window, re-runs the Appendix-A "
            "solver under sustained pressure or slack, and applies the "
            "result through the verify-then-commit retune protocol — "
            "config changes land only at batch boundaries as explicit "
            "config epochs, rolled back on any failure.  'tune' is the "
            "manual verb: propose a retune from a checkpoint, --apply "
            "it through the same guarded path (rewriting the "
            "checkpoint at the new epoch), or --watch a live metrics "
            "endpoint's SLO burn rate."
        ),
    )
    control.add_argument(
        "--control", action="store_true",
        help="arm the adaptive controller (serve; needs --gamma-h and a "
        "telemetry flag such as --metrics-port)",
    )
    control.add_argument(
        "--control-every", type=int, default=8, metavar="BATCHES",
        help="controller sampling cadence in ingested batches (default 8)",
    )
    control.add_argument(
        "--control-min-window", type=int, default=4096, metavar="PACKETS",
        help="smallest packet window the controller will judge; shorter "
        "windows accumulate (default 4096)",
    )
    control.add_argument(
        "--control-persistence", type=int, default=3, metavar="WINDOWS",
        help="consecutive windows pressure/slack must persist before a "
        "retune is proposed (default 3)",
    )
    control.add_argument(
        "--control-cooldown", type=int, default=8, metavar="WINDOWS",
        help="windows after any retune attempt (committed, rolled back "
        "or infeasible) before the next proposal (default 8)",
    )
    control.add_argument(
        "--control-widen", type=float, default=2.0, metavar="FACTOR",
        help="multiplicative gamma_l step per coarsen/refine retune "
        "(default 2.0)",
    )
    control.add_argument(
        "--control-max-counters", type=int, default=None, metavar="N",
        help="operator memory cap on the solved counter count n "
        "(serve --control, tune)",
    )
    control.add_argument(
        "--slo-drop-budget", type=float, default=None, metavar="FRAC",
        help="SLO error budget: tolerated dropped-packet fraction "
        "feeding the burn-rate rules (default 0.001)",
    )
    control.add_argument(
        "--tune-gamma-l", type=int, default=None, metavar="RATE",
        help="target protected rate for 'tune' propose/--apply "
        "(default: re-derive at the checkpoint's current gamma_l)",
    )
    control.add_argument(
        "--apply", action="store_true",
        help="tune: execute the proposed retune against the checkpoint "
        "through the guarded five-phase protocol and rewrite it at the "
        "new config epoch (a rolled-back failure leaves it untouched)",
    )
    control.add_argument(
        "--watch", action="store_true",
        help="tune: poll a live /metrics.json endpoint (--metrics-port) "
        "and print control samples plus SLO alerts each round",
    )
    control.add_argument(
        "--watch-interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between --watch polls (default 2)",
    )
    control.add_argument(
        "--watch-rounds", type=int, default=None, metavar="N",
        help="stop --watch after N polls (default: until interrupted)",
    )

    watcher = parser.add_argument_group(
        "watcher options",
        description=(
            "Second-stage ambiguity-region watcher for the streaming "
            "service (see docs/DETECTORS.md).  --watcher arms one "
            "probabilistic detector per shard — CLEF's twin RLFDs or "
            "LOFT — tapping the routed stream next to the exact EARDet "
            "shards.  Exact detections are bit-identical with or "
            "without a watcher; watcher verdicts appear in their own "
            "probabilistic report section and are never merged into "
            "the exact set."
        ),
    )
    watcher.add_argument(
        "--watcher", choices=["clef", "loft", "none"], default="none",
        help="ambiguity-region watcher armed next to each EARDet shard "
        "(serve; default none)",
    )
    watcher.add_argument(
        "--watcher-counters", type=int, default=None, metavar="M",
        help="watcher memory: RLFD branching factor (clef) or per-stage "
        "aggregates (loft)",
    )
    watcher.add_argument(
        "--watcher-depth", type=int, default=None, metavar="D",
        help="RLFD virtual tree depth (clef)",
    )
    watcher.add_argument(
        "--watcher-fast-period-ms", type=float, default=None, metavar="MS",
        help="fast twin RLFD level period (clef)",
    )
    watcher.add_argument(
        "--watcher-slow-period-ms", type=float, default=None, metavar="MS",
        help="slow twin RLFD level period (clef)",
    )
    watcher.add_argument(
        "--watcher-epoch-ms", type=float, default=None, metavar="MS",
        help="sketch aggregation epoch (loft)",
    )
    watcher.add_argument(
        "--watcher-stages", type=int, default=None, metavar="D",
        help="sketch stages (loft)",
    )
    watcher.add_argument(
        "--watcher-watchlist", type=int, default=None, metavar="K",
        help="exact watchlist capacity for promoted candidates (loft)",
    )
    watcher.add_argument(
        "--watcher-flow-limit", type=int, default=None, metavar="N",
        help="max distinct flows tracked per sketch epoch (loft)",
    )
    watcher.add_argument(
        "--watcher-seed", type=int, default=None, metavar="SEED",
        help="watcher hash seed (salted per shard; default 0)",
    )

    overload = parser.add_argument_group(
        "overload options",
        description=(
            "Admission control for the streaming service "
            "(see docs/OVERLOAD.md).  --overload-policy ladder arms a "
            "per-shard degradation ladder (exact -> deferred -> "
            "aggregated -> shedding) driven by queue occupancy with "
            "hysteresis watermarks; every offered byte is attributed to "
            "exactly one rung, so the report's account always sums to "
            "the offered total.  SIGTERM/SIGINT during serve request a "
            "graceful drain: finish the batch, flush every rung buffer, "
            "write the final checkpoint, then report."
        ),
    )
    overload.add_argument(
        "--overload-policy", choices=["off", "ladder"], default="off",
        help="overload response: 'off' (pure backpressure) or 'ladder' "
        "(accounted degradation) (serve)",
    )
    overload.add_argument(
        "--high-watermark", type=float, default=0.75, metavar="FRAC",
        help="queue occupancy fraction that escalates the ladder one "
        "rung (default 0.75)",
    )
    overload.add_argument(
        "--low-watermark", type=float, default=0.25, metavar="FRAC",
        help="queue occupancy fraction that de-escalates one rung after "
        "the cooldown (default 0.25)",
    )
    overload.add_argument(
        "--overload-cooldown", type=int, default=4, metavar="BATCHES",
        help="batches a shard must observe after a transition before it "
        "may de-escalate (escalation is never delayed; default 4)",
    )
    overload.add_argument(
        "--drain-budget", type=int, default=None, metavar="PACKETS",
        help="packets each shard may process per batch under the ladder "
        "(in-process engine; models worker capacity; default unbounded)",
    )
    overload.add_argument(
        "--aggregate-window-ms", type=float, default=10.0, metavar="MS",
        help="epoch length for the AGGREGATED rung's per-flow coalescing "
        "(bounds the ambiguity widening; default 10)",
    )
    overload.add_argument(
        "--defer-deadline-batches", type=int, default=4, metavar="N",
        help="batches a DEFERRED buffer may age before it is force-"
        "released (default 4)",
    )

    telemetry = parser.add_argument_group(
        "telemetry options",
        description=(
            "Live observability for the streaming service "
            "(see docs/OBSERVABILITY.md).  Any of these flags turns the "
            "metric registry on; without them the hot path runs with "
            "telemetry fully disabled."
        ),
    )
    telemetry.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve live metrics over HTTP on this port while serving "
        "(0 = OS-assigned; endpoints /metrics, /metrics.json, /healthz) "
        "(serve; also the port 'metrics' fetches from)",
    )
    telemetry.add_argument(
        "--metrics-host", default="127.0.0.1", metavar="HOST",
        help="bind/fetch host for the metrics endpoint (default 127.0.0.1)",
    )
    telemetry.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="after the run, dump the final metrics to this file "
        "(.json = JSON, anything else = Prometheus text) (serve)",
    )

    guard = parser.add_argument_group(
        "guard options",
        description=(
            "Ingest hardening and runtime invariant checking "
            "(see docs/GUARDRAILS.md).  --validate screens every trace "
            "packet for negative times, time regressions, out-of-envelope "
            "sizes and invalid flow IDs before the detector sees it; "
            "'strict' rejects the trace on the first violation, 'repair' "
            "clamps/drops offenders (voiding the exactness guarantee), "
            "'reorder' additionally re-sorts late packets within "
            "--reorder-window.  --invariant-every samples the paper's "
            "algorithm-state invariants on the live detector."
        ),
    )
    guard.add_argument(
        "--validate", choices=["strict", "repair", "reorder"], default=None,
        help="screen trace packets through the ingest validator "
        "(detect, analyze, serve)",
    )
    guard.add_argument(
        "--reorder-window", type=int, default=64,
        help="max buffered packets when re-sorting a mildly disordered "
        "stream (--validate reorder)",
    )
    guard.add_argument(
        "--min-packet-size", type=int, default=None,
        help="smallest acceptable packet size in bytes (with --validate; "
        "default: Ethernet minimum)",
    )
    guard.add_argument(
        "--max-packet-size", type=int, default=None,
        help="largest acceptable packet size in bytes (with --validate; "
        "default: Ethernet maximum)",
    )
    guard.add_argument(
        "--invariant-every", type=int, default=None, metavar="N",
        help="assert the detector's algorithm-state invariants every N "
        "packets; violations abort with forensics (detect, serve)",
    )

    forensics = parser.add_argument_group(
        "forensics options",
        description=(
            "Incident forensics and deterministic replay "
            "(see docs/FORENSICS.md).  --forensics-dir arms the lab on "
            "'serve': every detection, watcher verdict, overload "
            "transition, migration, recovery and violation is appended "
            "to an append-only CRC'd incident log, and the replayable "
            "classes get a minimal replay bundle.  'replay "
            "<bundle-or-id>' re-executes one bundle bit-identically; "
            "'incidents list|show|export' reads the log back."
        ),
    )
    forensics.add_argument(
        "--forensics-dir", default=None, metavar="DIR",
        help="arm the forensics lab: incident log at DIR/incidents.jsonl, "
        "replay bundles under DIR/bundles (serve, replay, incidents)",
    )
    forensics.add_argument(
        "--forensics-ring-capacity", type=int, default=None, metavar="N",
        help="trace packets the capture ring retains between checkpoint "
        "baselines; incidents whose window outgrows it are marked "
        "truncated and refuse replay (default 65536)",
    )
    forensics.add_argument(
        "--step", action="store_true",
        help="replay: additionally dump per-packet counter/bucket deltas "
        "(diagnostic; implies a packet-at-a-time re-execution)",
    )
    forensics.add_argument(
        "--id", type=int, default=None, metavar="ID", dest="incident_id",
        help="incident id ('incidents show'; also resolves 'replay <id>' "
        "when given instead of a positional id)",
    )
    forensics.add_argument(
        "--html", action="store_true",
        help="incidents export: render the zero-dependency HTML timeline "
        "viewer instead of JSON",
    )
    forensics.add_argument(
        "--out", default=None, metavar="PATH",
        help="incidents export: output file (default stdout for JSON, "
        "incidents.html next to the log for --html)",
    )

    sim = parser.add_argument_group("simulate options")
    sim.add_argument(
        "--bottleneck", type=int, default=2_000_000,
        help="bottleneck capacity, bytes/s (simulate)",
    )
    sim.add_argument(
        "--victims", type=int, default=4, help="TCP-like victims (simulate)"
    )
    sim.add_argument(
        "--burst-kb", type=int, default=120,
        help="attacker burst size, KB (simulate)",
    )
    sim.add_argument(
        "--period-ms", type=int, default=500,
        help="attacker burst period, ms (simulate)",
    )
    sim.add_argument(
        "--duration-s", type=float, default=20.0,
        help="simulated duration, seconds (simulate)",
    )
    sim.add_argument(
        "--no-policer", action="store_true",
        help="run without the EARDet policer (simulate)",
    )
    return parser


def resolve_params(args: argparse.Namespace) -> ExperimentParams:
    base = PRESETS[args.preset]()
    overrides = {
        name: value
        for name, value in (
            ("scale", args.scale),
            ("repetitions", args.repetitions),
            ("attack_flows", args.attack_flows),
            ("seed", args.seed),
            ("dataset", args.dataset),
        )
        if value is not None
    }
    if not overrides:
        return base
    return replace(base, **overrides)


def _guard_policy(args: argparse.Namespace):
    """Build the ingest-validation policy from the guard options, or None
    when --validate was not given."""
    from .guard import GuardPolicy

    if args.validate is None:
        for flag, value in (
            ("--min-packet-size", args.min_packet_size),
            ("--max-packet-size", args.max_packet_size),
        ):
            if value is not None:
                raise SystemExit(f"{flag} requires --validate")
        return None
    if args.validate == "strict":
        policy = GuardPolicy.strict()
    elif args.validate == "repair":
        policy = GuardPolicy.repair()
    else:
        if args.reorder_window < 1:
            raise SystemExit(
                f"--reorder-window must be >= 1, got {args.reorder_window}"
            )
        policy = GuardPolicy.reordering(window=args.reorder_window)
    overrides = {}
    if args.min_packet_size is not None:
        overrides["min_size"] = args.min_packet_size
    if args.max_packet_size is not None:
        overrides["max_size"] = args.max_packet_size
    if overrides:
        try:
            policy = replace(policy, **overrides)
        except ValueError as error:
            raise SystemExit(f"bad guard options: {error}")
    return policy


def _overload_policy(args: argparse.Namespace):
    """Build the :class:`~repro.service.OverloadPolicy` from the overload
    options, or None when ``--overload-policy off`` (the default)."""
    if args.overload_policy == "off":
        return None
    from .service import OverloadPolicy

    try:
        return OverloadPolicy(
            high_watermark=args.high_watermark,
            low_watermark=args.low_watermark,
            cooldown=args.overload_cooldown,
            drain_budget=args.drain_budget,
            aggregate_window_ns=max(
                1, round(args.aggregate_window_ms * 1_000_000)
            ),
            defer_deadline_batches=args.defer_deadline_batches,
        )
    except ValueError as error:
        raise SystemExit(f"bad overload options: {error}")


def _watcher_policy(args: argparse.Namespace):
    """Build the :class:`~repro.service.WatcherPolicy` from the watcher
    options, or None when ``--watcher none`` (the default)."""
    sizing_flags = (
        ("--watcher-counters", args.watcher_counters),
        ("--watcher-depth", args.watcher_depth),
        ("--watcher-fast-period-ms", args.watcher_fast_period_ms),
        ("--watcher-slow-period-ms", args.watcher_slow_period_ms),
        ("--watcher-epoch-ms", args.watcher_epoch_ms),
        ("--watcher-stages", args.watcher_stages),
        ("--watcher-watchlist", args.watcher_watchlist),
        ("--watcher-flow-limit", args.watcher_flow_limit),
        ("--watcher-seed", args.watcher_seed),
    )
    if args.watcher == "none":
        for flag, value in sizing_flags:
            if value is not None:
                raise SystemExit(f"{flag} requires --watcher clef|loft")
        return None
    from .service import WatcherPolicy

    def _ns(ms: float) -> int:
        return max(1, round(ms * 1_000_000))

    overrides = {}
    if args.watcher_counters is not None:
        overrides["counters"] = args.watcher_counters
    if args.watcher_depth is not None:
        overrides["depth"] = args.watcher_depth
    if args.watcher_fast_period_ms is not None:
        overrides["fast_period_ns"] = _ns(args.watcher_fast_period_ms)
    if args.watcher_slow_period_ms is not None:
        overrides["slow_period_ns"] = _ns(args.watcher_slow_period_ms)
    if args.watcher_epoch_ms is not None:
        overrides["epoch_ns"] = _ns(args.watcher_epoch_ms)
    if args.watcher_stages is not None:
        overrides["stages"] = args.watcher_stages
    if args.watcher_watchlist is not None:
        overrides["watchlist"] = args.watcher_watchlist
    if args.watcher_flow_limit is not None:
        overrides["flow_limit"] = args.watcher_flow_limit
    if args.watcher_seed is not None:
        overrides["seed"] = args.watcher_seed
    try:
        return WatcherPolicy(kind=args.watcher, **overrides)
    except ValueError as error:
        raise SystemExit(f"bad watcher options: {error}")


def _coordinator_policy(args: argparse.Namespace):
    """Build the :class:`~repro.service.CoordinatorPolicy` from the
    resharding options, or None when ``--coordinate`` was not given."""
    if not args.coordinate:
        return None
    from .service import CoordinatorPolicy

    try:
        return CoordinatorPolicy(
            skew_high=args.skew_high,
            skew_low=args.skew_low,
            persistence=args.reshard_persistence,
            cooldown=args.reshard_cooldown,
            max_shards=args.max_shards,
        )
    except ValueError as error:
        raise SystemExit(f"bad resharding options: {error}")


def _control_policy(args: argparse.Namespace):
    """Build the adaptive controller from the control options, or None
    when ``--control`` was not given.

    Returns a :class:`~repro.control.ControlPolicy` (the service
    promotes it to a controller), or a pre-built
    :class:`~repro.control.Controller` when an SLO override needs a
    custom evaluator."""
    if not args.control:
        return None
    if args.gamma_h is None:
        raise SystemExit(
            "--control requires --gamma-h (the Appendix-A solver's "
            "detection-rate input, which the running config does not "
            "record)"
        )
    from .control import ControlPolicy

    try:
        policy = ControlPolicy(
            gamma_h=args.gamma_h,
            t_upincb_seconds=args.t_upincb,
            every_batches=args.control_every,
            min_window_packets=args.control_min_window,
            persistence=args.control_persistence,
            cooldown=args.control_cooldown,
            widen_factor=args.control_widen,
            max_counters=args.control_max_counters,
        )
        if args.slo_drop_budget is None:
            return policy
        from .control import Controller, SLOEvaluator, SLOPolicy

        return Controller(
            policy,
            slo=SLOEvaluator(SLOPolicy(drop_budget=args.slo_drop_budget)),
        )
    except ValueError as error:
        raise SystemExit(f"bad control options: {error}")


def _install_drain_handlers(request_drain) -> "dict | None":
    """Route SIGTERM/SIGINT to a graceful drain request.

    The first signal asks the serve loop to stop at the next batch
    boundary and flush (``request_drain`` only sets a flag, so it is
    signal-safe); a second signal falls through to the previous handler
    (normally KeyboardInterrupt) for a hard stop.  Returns the previous
    handlers for :func:`_restore_drain_handlers`, or None when not on
    the main thread (signal.signal would raise there).
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return None
    previous = {}
    fired = []

    def handler(signum, frame):
        if fired:
            prior = previous.get(signum)
            if callable(prior):
                prior(signum, frame)
                return
            raise KeyboardInterrupt
        fired.append(signum)
        request_drain()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass
    return previous


def _restore_drain_handlers(previous) -> None:
    import signal

    if not previous:
        return
    for signum, handler in previous.items():
        try:
            signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover
            pass


def _guard_validator(args: argparse.Namespace):
    """A fresh :class:`~repro.guard.StreamValidator` for the guard
    options, or None when validation is off."""
    from .guard import StreamValidator

    policy = _guard_policy(args)
    if policy is None:
        return None
    return StreamValidator(policy)


def _print_validation_summary(stats) -> None:
    if stats is None or stats.total_violations == 0:
        return
    print(
        f"ingest validation: {stats.examined} packets examined, "
        f"{stats.total_violations} violations "
        f"({stats.clamped} clamped, {stats.dropped} dropped, "
        f"{stats.reordered} reordered)"
    )
    if stats.mutated:
        print(
            f"WARNING: validator mutated {stats.mutated} packets — the "
            "no-FN/no-FP guarantee applies to the repaired stream, not "
            "the wire stream"
        )


def load_trace(path: str, by_host_pair: bool = False, validator=None):
    """Load a trace by extension: .csv, .ert (binary), or .pcap.

    ``validator`` is an optional :class:`~repro.guard.StreamValidator`
    applied to the parsed packets before stream construction (required
    for repair/reorder policies — a disordered trace never survives
    :class:`~repro.model.stream.PacketStream` construction otherwise).
    """
    from .traffic import pcap, trace_io

    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return trace_io.read_csv(path, validator=validator)
    if suffix == ".ert":
        return trace_io.read_binary(path, validator=validator)
    if suffix in (".pcap", ".cap"):
        stream, _ = pcap.read_pcap(path, by_host_pair=by_host_pair)
        if validator is not None:
            return validator.validate(list(stream))
        return stream
    raise SystemExit(
        f"unsupported trace extension {suffix!r}; expected .csv, .ert or .pcap"
    )


def run_detect(args: argparse.Namespace) -> int:
    """The ``detect`` command: engineer a config and process a trace."""
    missing = [
        flag
        for flag, value in (
            ("--trace", args.trace),
            ("--rho", args.rho),
            ("--gamma-l", args.gamma_l),
            ("--gamma-h", args.gamma_h),
        )
        if value is None
    ]
    if missing:
        raise SystemExit(f"detect requires {', '.join(missing)}")
    from .guard import InvariantViolation, StreamViolationError

    validator = _guard_validator(args)
    try:
        stream = load_trace(
            args.trace, by_host_pair=args.host_pair, validator=validator
        )
    except StreamViolationError as error:
        raise SystemExit(
            f"trace rejected by ingest validation: {error} "
            "(use --validate repair/reorder to continue on a repaired "
            "stream)"
        )
    config = engineer(
        rho=args.rho,
        gamma_l=args.gamma_l,
        beta_l=args.beta_l,
        gamma_h=args.gamma_h,
        t_upincb_seconds=args.t_upincb,
    )
    print(config.describe())
    stats = stream.stats()
    print(
        f"trace: {stats.packet_count} packets, {stats.flow_count} flows, "
        f"{stats.total_bytes} bytes over {stats.duration_ns / NS_PER_S:.3f}s"
    )
    if validator is not None:
        _print_validation_summary(validator.stats)
    detector = EARDet(config)
    if args.invariant_every is not None:
        from .guard import InvariantChecker

        detector.attach_checker(InvariantChecker(every=args.invariant_every))
    try:
        detector.observe_stream(stream)
    except InvariantViolation as error:
        raise SystemExit(
            f"invariant violation ({error.check}): {error}\n"
            f"forensics: {error.forensics}"
        )
    table = Table(
        title=f"Large flows detected in {args.trace}",
        headers=["flow", "detected at (s)"],
    )
    for fid, time_ns in sorted(
        detector.detected.items(), key=lambda item: item[1]
    ):
        table.add_row(str(fid), round(time_ns / NS_PER_S, 6))
    if not detector.detected:
        table.add_note("no flow violated the high-bandwidth threshold")
    print(table.render())
    return 0


def run_detectors(args: argparse.Namespace) -> int:
    """The ``detectors`` command: enumerate every detection scheme the
    library ships with its parameters and exactness class."""
    from .detectors import DETECTOR_CATALOG, render_catalog

    try:
        if args.json:
            import json

            payload = {
                name: {
                    "class": f"{entry.module}.{entry.cls_name}",
                    "exactness": entry.exactness,
                    "summary": entry.summary,
                    "parameters": entry.parameters(),
                    "checkpointable": entry.checkpointable,
                }
                for name, entry in sorted(DETECTOR_CATALOG.items())
            }
            print(json.dumps(payload, indent=2))
        else:
            print(render_catalog(verbose=True))
    except BrokenPipeError:
        # Downstream pager/`head` closed early; exit quietly.
        sys.stderr.close()
    return 0


def run_analyze(args: argparse.Namespace) -> int:
    """The ``analyze`` command: per-flow statistics of a trace, plus the
    ground-truth class breakdown when thresholds are given."""
    from .analysis.flowstats import analyze_stream, summarize, top_talkers
    from .analysis.groundtruth import label_stream
    from .model.thresholds import ThresholdFunction
    from .model.units import bytes_to_human, rate_to_human

    if args.trace is None:
        raise SystemExit("analyze requires --trace")
    from .guard import StreamViolationError

    validator = _guard_validator(args)
    try:
        stream = load_trace(
            args.trace, by_host_pair=args.host_pair, validator=validator
        )
    except StreamViolationError as error:
        raise SystemExit(f"trace rejected by ingest validation: {error}")
    if validator is not None:
        _print_validation_summary(validator.stats)
    window_ns = max(1, round(args.window_ms * 1_000_000))
    stats = analyze_stream(stream, window_ns=window_ns)
    labels = None
    if args.gamma_h and args.gamma_l:
        config = engineer(
            rho=args.rho,
            gamma_l=args.gamma_l,
            beta_l=args.beta_l,
            gamma_h=args.gamma_h,
            t_upincb_seconds=args.t_upincb,
        )
        labels = label_stream(
            stream,
            high=ThresholdFunction(gamma=args.gamma_h, beta=config.beta_h),
            low=ThresholdFunction(gamma=args.gamma_l, beta=args.beta_l),
        )
    summary = summarize(stats, window_ns, labels=labels)
    overview = Table(title=f"Trace overview: {args.trace}", headers=["metric", "value"])
    for key, value in summary.items():
        if key.endswith("bytes"):
            value = bytes_to_human(value)
        elif key.endswith("bps"):
            value = rate_to_human(value)
        overview.add_row(key.replace("_", " "), value)
    print(overview.render())
    print()
    talkers = Table(
        title=f"Top {args.top} talkers (peak over {args.window_ms:g} ms windows)",
        headers=["flow", "bytes", "packets", "avg rate", "peak rate", "burstiness"],
    )
    for flow in top_talkers(stats, count=args.top):
        talkers.add_row(
            str(flow.fid),
            bytes_to_human(flow.bytes),
            flow.packets,
            rate_to_human(flow.average_rate_bps),
            rate_to_human(flow.peak_rate_bps(window_ns)),
            round(flow.burstiness(window_ns), 2),
        )
    print(talkers.render())
    return 0


def _serve_config(args: argparse.Namespace):
    missing = [
        flag
        for flag, value in (
            ("--rho", args.rho),
            ("--gamma-l", args.gamma_l),
            ("--gamma-h", args.gamma_h),
        )
        if value is None
    ]
    if missing:
        raise SystemExit(f"serve requires {', '.join(missing)}")
    return engineer(
        rho=args.rho,
        gamma_l=args.gamma_l,
        beta_l=args.beta_l,
        gamma_h=args.gamma_h,
        t_upincb_seconds=args.t_upincb,
    )


def run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` command: the sharded streaming runtime over a trace
    source, with optional periodic checkpoints, crash recovery, fault
    injection (``--fault-plan``) and supervised restart (``--supervise``)."""
    from .service import (
        DetectionService,
        FaultPlan,
        FaultySource,
        RestartPolicy,
        RetryingSource,
        Supervisor,
        TraceFileSource,
    )
    from .guard import InvariantViolation, StreamViolationError
    from .model.stream import StreamOrderError

    if args.trace is None:
        raise SystemExit("serve requires --trace")
    # Validation happens inside the trace readers, before PacketStream
    # construction — the only point where a repair/reorder policy can fix
    # a disordered trace (the stream type rejects disorder outright).
    source = TraceFileSource(
        args.trace,
        by_host_pair=args.host_pair,
        validator=_guard_validator(args),
    )
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as error:
            raise SystemExit(f"bad --fault-plan: {error}")
        if fault_plan.source_faults:
            source = FaultySource(source, fault_plan)
        if not args.json:
            print(f"fault plan armed: {fault_plan.describe()}")
    if args.retry_source:
        source = RetryingSource(source, max_retries=args.retry_source)

    telemetry, metrics_server = _serve_telemetry(args)
    overload = _overload_policy(args)
    watcher = _watcher_policy(args)
    coordinator = _coordinator_policy(args)
    controller = _control_policy(args)
    if controller is not None and telemetry is None:
        raise SystemExit(
            "--control needs telemetry to scrape; add --metrics-port "
            "or --metrics-out"
        )
    if args.slots is not None and args.slots < args.shards:
        raise SystemExit(
            f"--slots must be >= --shards, got {args.slots} slots for "
            f"{args.shards} shards"
        )
    engine_options = _engine_options(args)
    forensics = _forensics_lab(args)
    if forensics is not None and not args.json:
        print(f"forensics: incident log at {forensics.store.path}")

    if args.supervise:
        if args.resume:
            raise SystemExit(
                "--supervise already recovers from --checkpoint; "
                "drop --resume"
            )
        from .service import RestartBudgetExceededError

        config = _serve_config(args)
        supervisor = Supervisor(
            config,
            shards=args.shards,
            engine=args.engine or "inprocess",
            seed=args.seed or 0,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            batch_size=args.batch_size,
            queue_capacity=args.queue_capacity,
            overflow=args.overflow,
            policy=RestartPolicy(max_restarts=args.max_restarts),
            fault_plan=fault_plan,
            heartbeat_timeout_s=args.heartbeat_timeout,
            invariant_every=args.invariant_every,
            telemetry=telemetry,
            overload=overload,
            watcher=watcher,
            slots=args.slots,
            coordinator=coordinator,
            engine_options=engine_options,
            forensics=forensics,
            controller=controller,
        )
        if not args.json:
            print(config.describe())
        handlers = _install_drain_handlers(supervisor.request_drain)
        try:
            report = supervisor.run(source, max_packets=args.max_packets)
        except RestartBudgetExceededError as error:
            raise SystemExit(f"supervision failed: {error}")
        except (InvariantViolation, StreamViolationError) as error:
            raise SystemExit(f"serve aborted: {error}")
        except StreamOrderError as error:
            raise SystemExit(
                f"serve aborted: {error} "
                "(disordered trace — use --validate reorder to repair it)"
            )
        finally:
            _restore_drain_handlers(handlers)
            supervisor.shutdown(drain=supervisor.drain_requested)
            _finish_telemetry(args, telemetry, metrics_server)
            if forensics is not None:
                forensics.close()
        return _emit_report(args, report)

    if args.resume:
        if args.checkpoint is None:
            raise SystemExit("serve --resume requires --checkpoint")
        from .service import CheckpointError

        try:
            service = DetectionService.resume(
                args.checkpoint,
                engine=args.engine,
                checkpoint_every=args.checkpoint_every,
                batch_size=args.batch_size,
                queue_capacity=args.queue_capacity,
                overflow=args.overflow,
                fault_plan=fault_plan,
                invariant_every=args.invariant_every,
                telemetry=telemetry,
                overload=overload,
                watcher=watcher,
                coordinator=coordinator,
                engine_options=engine_options,
                forensics=forensics,
                controller=controller,
            )
        except (CheckpointError, FileNotFoundError) as error:
            raise SystemExit(f"cannot resume from {args.checkpoint}: {error}")
        print(
            f"resuming from {args.checkpoint} at packet {service.ingested} "
            f"({service.shards} shards, {service.engine_kind})"
        )
    else:
        config = _serve_config(args)
        service = DetectionService(
            config,
            shards=args.shards,
            engine=args.engine or "inprocess",
            seed=args.seed or 0,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            batch_size=args.batch_size,
            queue_capacity=args.queue_capacity,
            overflow=args.overflow,
            fault_plan=fault_plan,
            invariant_every=args.invariant_every,
            telemetry=telemetry,
            overload=overload,
            watcher=watcher,
            slots=args.slots,
            coordinator=coordinator,
            engine_options=engine_options,
            forensics=forensics,
            controller=controller,
        )
    if not args.json:
        print(service.config.describe())
    handlers = _install_drain_handlers(service.request_drain)
    try:
        report = service.serve(source, max_packets=args.max_packets)
    except (InvariantViolation, StreamViolationError) as error:
        raise SystemExit(f"serve aborted: {error}")
    except StreamOrderError as error:
        raise SystemExit(
            f"serve aborted: {error} "
            "(disordered trace — use --validate reorder to repair it)"
        )
    finally:
        _restore_drain_handlers(handlers)
        service.shutdown(drain=service.drain_requested)
        _finish_telemetry(args, telemetry, metrics_server)
        if forensics is not None:
            forensics.close()
    return _emit_report(args, report)


def _engine_options(args: argparse.Namespace):
    """Collect engine-specific ``serve`` flags into the ``engine_options``
    dict :class:`~repro.service.DetectionService` forwards to its engine,
    validating flag/engine pairings up front."""
    options = {}
    if args.workers is not None:
        if args.engine != "remote":
            raise SystemExit("--workers requires --engine remote")
        from .service import parse_endpoints

        try:
            endpoints = parse_endpoints(args.workers)
        except ValueError as error:
            raise SystemExit(f"bad --workers: {error}")
        if len(endpoints) < args.shards:
            raise SystemExit(
                f"--workers lists {len(endpoints)} endpoints for "
                f"{args.shards} shards"
            )
        options["workers"] = endpoints
    elif args.engine == "remote":
        raise SystemExit("--engine remote requires --workers HOST:PORT,...")
    if args.terminate_grace is not None:
        if (args.engine or "inprocess") != "multiprocess":
            raise SystemExit(
                "--terminate-grace only applies to --engine multiprocess"
            )
        if args.terminate_grace <= 0:
            raise SystemExit("--terminate-grace must be positive")
        options["terminate_grace_s"] = args.terminate_grace
    return options or None


def run_worker_cmd(args: argparse.Namespace) -> int:
    """The ``worker`` command: one blocking remote shard server.

    Exit codes mirror the multiprocess worker's: 0 (clean stop),
    75 (graceful drain), 76 (permanent transport/configuration
    disagreement), 86 (invariant violation) — see
    ``docs/FAULT_TOLERANCE.md``.
    """
    if args.listen is None:
        raise SystemExit("worker requires --listen HOST:PORT")
    from .service import run_worker

    try:
        return run_worker(args.listen)
    except ValueError as error:
        raise SystemExit(f"bad --listen: {error}")
    except KeyboardInterrupt:
        return 0


def _serve_telemetry(args: argparse.Namespace):
    """Build the (optional) telemetry context for ``serve``.

    Returns ``(telemetry, metrics_server)`` — both ``None`` unless a
    metrics flag was given, so the default hot path stays uninstrumented.
    """
    if args.metrics_port is None and args.metrics_out is None:
        return None, None
    from .telemetry import Telemetry

    telemetry = Telemetry()
    server = None
    if args.metrics_port is not None:
        server = telemetry.serve(host=args.metrics_host, port=args.metrics_port)
        if not args.json:
            print(f"metrics: serving at {server.url}/metrics")
    return telemetry, server


def _finish_telemetry(args: argparse.Namespace, telemetry, server) -> None:
    """Stop the metrics server and honour ``--metrics-out``.

    Runs in the serve ``finally`` blocks so a crashed run still leaves a
    final scrape behind for forensics.
    """
    if telemetry is None:
        return
    if server is not None:
        server.stop()
    if args.metrics_out:
        if args.metrics_out.endswith(".json"):
            import json

            body = json.dumps(telemetry.as_dict(), indent=2) + "\n"
        else:
            body = telemetry.render_prometheus()
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(body)
        if not args.json:
            print(f"metrics: wrote {args.metrics_out}")


def run_metrics(args: argparse.Namespace) -> int:
    """The ``metrics`` command: scrape the live endpoint of a running
    ``serve --metrics-port`` process and print it (Prometheus text by
    default, the JSON payload with ``--json``)."""
    import urllib.error
    import urllib.request

    if args.metrics_port is None:
        raise SystemExit("metrics requires --metrics-port")
    path = "/metrics.json" if args.json else "/metrics"
    url = f"http://{args.metrics_host}:{args.metrics_port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            body = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as error:
        raise SystemExit(f"cannot fetch {url}: {error}")
    print(body, end="" if body.endswith("\n") else "\n")
    return 0


def _emit_report(args: argparse.Namespace, report) -> int:
    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return 0


def run_checkpoint(args: argparse.Namespace) -> int:
    """The ``checkpoint`` command; sub-action ``inspect`` renders a
    checkpoint file's metadata and per-shard state summary."""
    from .service import CheckpointError, describe_checkpoint, read_checkpoint
    from .service.checkpoint import summarize_checkpoint

    subaction = args.subaction or "inspect"
    if subaction != "inspect":
        raise SystemExit(
            f"unknown checkpoint sub-action {subaction!r}; expected 'inspect'"
        )
    if args.checkpoint is None:
        raise SystemExit("checkpoint inspect requires --checkpoint")
    try:
        payload = read_checkpoint(args.checkpoint)
    except (CheckpointError, FileNotFoundError) as error:
        raise SystemExit(f"cannot read {args.checkpoint}: {error}")
    if args.json:
        import json

        meta = dict(payload["meta"])
        summary = summarize_checkpoint(payload)
        meta["layout"] = summary["layout"]
        meta["shard_summaries"] = [
            {
                "shard": row["shard"],
                "slots": row["slots"],
                "counters": row["counters_in_use"],
                "counter_capacity": row["counter_capacity"],
                "blacklisted": row["blacklist"],
                "detections": row["detections"],
                "packets": row["packets"],
                "watcher_watchlist": row["watcher_watchlist"],
                "per_slot": row["per_slot"],
            }
            for row in summary["shards"]
        ]
        print(json.dumps(meta, indent=2, default=str))
    else:
        print(describe_checkpoint(payload))
    return 0


def _tune_watch(args: argparse.Namespace) -> int:
    """``tune --watch``: poll a live ``/metrics.json`` endpoint, print
    control samples and SLO alerts.  Advisory only — applying a retune
    needs the in-process controller (``serve --control``) or the
    checkpoint path (``tune --apply``)."""
    import json as json_module
    import time as time_module
    import urllib.error
    import urllib.request

    from .control import SLOEvaluator, SLOPolicy, sample_from_exposition

    if args.metrics_port is None:
        raise SystemExit("tune --watch requires --metrics-port")
    url = f"http://{args.metrics_host}:{args.metrics_port}/metrics.json"
    policy = (
        SLOPolicy(drop_budget=args.slo_drop_budget)
        if args.slo_drop_budget is not None
        else SLOPolicy()
    )
    evaluator = SLOEvaluator(policy)
    rounds = 0
    try:
        while args.watch_rounds is None or rounds < args.watch_rounds:
            if rounds:
                time_module.sleep(args.watch_interval)
            try:
                with urllib.request.urlopen(url, timeout=5.0) as response:
                    payload = json_module.loads(
                        response.read().decode("utf-8")
                    )
            except (urllib.error.URLError, OSError, ValueError) as error:
                raise SystemExit(f"cannot fetch {url}: {error}")
            sample = sample_from_exposition(payload)
            alerts = evaluator.evaluate(sample)
            rounds += 1
            if args.json:
                print(
                    json_module.dumps(
                        {
                            "round": rounds,
                            "sample": sample.as_dict(),
                            "alerts": [alert.as_dict() for alert in alerts],
                        }
                    )
                )
            else:
                print(
                    f"[{rounds}] packets={sample.packets} "
                    f"dropped={sample.dropped} "
                    f"evictions={sample.evictions} "
                    f"occupancy={sample.max_occupancy} "
                    f"rung={sample.worst_rung} "
                    f"exact={'yes' if sample.exact else 'NO'}"
                )
                for alert in alerts:
                    print(
                        f"    SLO {alert.severity}: {alert.rule} — "
                        f"{alert.detail}"
                    )
    except KeyboardInterrupt:
        pass
    return 0


def run_tune(args: argparse.Namespace) -> int:
    """The ``tune`` command: the manual face of the adaptive control
    plane (see docs/CONTROL.md).

    Default (propose): read ``--checkpoint``, re-run the Appendix-A
    solver at ``--tune-gamma-l`` (default: the current ``gamma_l``)
    clamped so the new counter bank holds the checkpoint's live
    occupancy, and print the resulting plan — or the typed
    infeasibility with its binding constraint (exit code 1).

    ``--apply`` executes the plan against the checkpoint through the
    same guarded five-phase protocol the closed loop uses
    (:meth:`~repro.service.runtime.DetectionService.apply_retune`) and
    rewrites the checkpoint at the new config epoch; a rolled-back
    failure leaves the file untouched.  ``--watch`` instead polls a
    live metrics endpoint (see :func:`_tune_watch`).
    """
    import json as json_module

    if args.watch:
        return _tune_watch(args)
    from .control import RetunePlan, derive_config
    from .core.config import EARDetConfig, InfeasibleConfigError
    from .service import CheckpointError, read_checkpoint
    from .service.checkpoint import summarize_checkpoint

    if args.checkpoint is None:
        raise SystemExit(
            "tune requires --checkpoint (or --watch with --metrics-port)"
        )
    try:
        payload = read_checkpoint(args.checkpoint)
    except (CheckpointError, FileNotFoundError) as error:
        raise SystemExit(f"cannot read {args.checkpoint}: {error}")
    meta = payload["meta"]
    if meta.get("kind") != "eardet-service":
        raise SystemExit(
            f"{args.checkpoint} is not a service checkpoint "
            f"(kind {meta.get('kind')!r})"
        )
    config = EARDetConfig(**meta["config"])
    control_meta = meta.get("control") or {}
    inputs = control_meta.get("inputs") or {}
    epoch = int(control_meta.get("epoch", 0))
    # An explicit --gamma-h takes the whole input vector from the flags;
    # otherwise both missing solver inputs come from the checkpoint's
    # recorded control metadata (written by a controller-armed serve).
    if args.gamma_h is not None:
        gamma_h, t_upincb = args.gamma_h, args.t_upincb
    elif inputs.get("gamma_h") is not None:
        gamma_h = int(inputs["gamma_h"])
        t_upincb = float(inputs.get("t_upincb_seconds", args.t_upincb))
    else:
        raise SystemExit(
            "tune requires --gamma-h: the checkpoint records no solver "
            "inputs (it was written without a controller)"
        )
    occupancy = max(
        (
            row["counters_in_use"]
            for row in summarize_checkpoint(payload)["shards"]
        ),
        default=0,
    )
    target = (
        args.tune_gamma_l if args.tune_gamma_l is not None else config.gamma_l
    )
    if not target:
        raise SystemExit(
            "tune requires --tune-gamma-l (the checkpoint's config has "
            "no protected rate to re-derive from)"
        )
    try:
        new_config = derive_config(
            rho=config.rho,
            gamma_l=target,
            beta_l=config.beta_l,
            gamma_h=gamma_h,
            t_upincb_seconds=t_upincb,
            alpha=config.alpha,
            min_counters=max(2, occupancy),
            max_counters=args.control_max_counters,
        )
    except InfeasibleConfigError as error:
        if args.json:
            print(
                json_module.dumps(
                    {"feasible": False, **error.as_dict()}, indent=2
                )
            )
        else:
            print(f"infeasible: {error}")
            print(f"  binding constraint: {error.constraint}")
        return 1
    if new_config == config:
        if args.json:
            print(
                json_module.dumps(
                    {
                        "feasible": True,
                        "changed": False,
                        "epoch": epoch,
                        "config": meta["config"],
                    },
                    indent=2,
                )
            )
        else:
            print(
                f"no retune needed: the solver re-derives the current "
                f"config at gamma_l={target} (epoch {epoch}, "
                f"n={config.n}, beta_th={config.beta_th})"
            )
        return 0
    plan = RetunePlan(
        old_config=config,
        new_config=new_config,
        reason=f"manual tune: gamma_l {config.gamma_l}->{target}",
        inputs={
            "gamma_l": target,
            "beta_l": config.beta_l,
            "gamma_h": gamma_h,
            "t_upincb_seconds": t_upincb,
            "alpha": config.alpha,
        },
    )
    if not args.apply:
        if args.json:
            print(
                json_module.dumps(
                    {
                        "feasible": True,
                        "changed": True,
                        "epoch": epoch,
                        "proposed_epoch": epoch + 1,
                        "occupancy": occupancy,
                        "old_config": meta["config"],
                        "new_config": _tune_config_dict(new_config),
                        "reason": plan.reason,
                    },
                    indent=2,
                )
            )
        else:
            print(f"proposal (config epoch {epoch} -> {epoch + 1}):")
            print(f"  {plan.describe()}")
            print(
                f"  occupancy clamp: n >= {max(2, occupancy)} "
                f"(checkpoint holds {occupancy} live counters)"
            )
            print("  re-run with --apply to execute the guarded retune")
        return 0

    from .service import DetectionService, FaultPlan, RetuneError

    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as error:
            raise SystemExit(f"bad --fault-plan: {error}")
    service = DetectionService.resume(
        args.checkpoint,
        engine=args.engine,
        fault_plan=fault_plan,
        invariant_every=args.invariant_every,
    )
    try:
        report = service.apply_retune(plan)
    except RetuneError as error:
        service.shutdown()
        if args.json:
            print(
                json_module.dumps(
                    {
                        "committed": False,
                        "rolled_back": error.rolled_back,
                        "phase": error.phase,
                        "epoch": epoch,
                        "error": str(error),
                    },
                    indent=2,
                )
            )
        else:
            print(
                f"retune rolled back at phase {error.phase!r}: {error} "
                f"(checkpoint untouched, still epoch {epoch})"
            )
        return 1
    service.checkpoint_now()
    service.shutdown()
    if args.json:
        print(
            json_module.dumps(
                {
                    "committed": True,
                    "from_epoch": report.from_epoch,
                    "to_epoch": report.to_epoch,
                    "pause_ns": report.pause_ns,
                    "config": _tune_config_dict(new_config),
                },
                indent=2,
            )
        )
    else:
        print(
            f"retune committed: config epoch {report.from_epoch} -> "
            f"{report.to_epoch} (pause {report.pause_ns / NS_PER_S * 1e3:.2f}ms); "
            f"checkpoint rewritten at {args.checkpoint}"
        )
    return 0


def _tune_config_dict(config) -> dict:
    from .control import config_as_dict

    return config_as_dict(config)


def _forensics_lab(args: argparse.Namespace):
    """Build the ``serve`` forensics lab from ``--forensics-dir``, or
    None when forensics is not armed."""
    if args.forensics_dir is None:
        if args.forensics_ring_capacity is not None:
            raise SystemExit(
                "--forensics-ring-capacity requires --forensics-dir"
            )
        return None
    from .forensics import DEFAULT_RING_CAPACITY, ForensicsLab

    return ForensicsLab(
        args.forensics_dir,
        ring_capacity=args.forensics_ring_capacity or DEFAULT_RING_CAPACITY,
    )


def _load_incident_log(args: argparse.Namespace):
    """Read and CRC-verify the incident log named by --forensics-dir."""
    from .forensics import IncidentLogCorruptError, IncidentStore

    if args.forensics_dir is None:
        raise SystemExit(
            f"{args.experiment} requires --forensics-dir (the directory "
            "a 'serve --forensics-dir' run wrote)"
        )
    path = Path(args.forensics_dir) / "incidents.jsonl"
    if not path.exists():
        raise SystemExit(f"no incident log at {path}")
    try:
        return path, IncidentStore.load(path)
    except IncidentLogCorruptError as error:
        raise SystemExit(f"incident log damaged: {error}")


def run_replay(args: argparse.Namespace) -> int:
    """The ``replay`` command: deterministically re-execute one incident
    bundle and verify the detection re-derives bit-identically.

    The positional argument is either a bundle file path or a numeric
    incident id (resolved against ``--forensics-dir``).  Exit code 0
    means the replay was exact; 1 means it diverged; a truncated or
    incomplete bundle refuses loudly with a typed error.
    """
    from .forensics import replay_bundle
    from .service import CheckpointError, ReplayIncompleteError

    target = args.subaction
    if target is None and args.incident_id is not None:
        target = str(args.incident_id)
    if target is None:
        raise SystemExit("replay requires a bundle path or incident id")
    if target.isdigit() and not Path(target).exists():
        incident_id = int(target)
        if args.forensics_dir is None:
            raise SystemExit(
                "replay by incident id requires --forensics-dir"
            )
        bundle = (
            Path(args.forensics_dir)
            / "bundles"
            / f"incident-{incident_id:06d}.bundle"
        )
        if not bundle.exists():
            raise SystemExit(f"no bundle for incident {incident_id} "
                             f"({bundle} does not exist)")
        target = str(bundle)
    try:
        result = replay_bundle(target, step=args.step)
    except ReplayIncompleteError as error:
        raise SystemExit(f"replay refused: {error}")
    except (CheckpointError, FileNotFoundError) as error:
        raise SystemExit(f"cannot replay {target}: {error}")
    if args.json:
        import json

        print(json.dumps(result.as_dict(), indent=2, default=str))
        return 0 if result.exact else 1
    verdict = "EXACT" if result.exact else "DIVERGED"
    print(f"replay: {result.incident_class} bundle {result.bundle_path}")
    print(
        f"  {verdict}: expected {result.expected}, observed "
        f"{result.observed}"
    )
    print(
        f"  replayed {result.packets_replayed} packets, re-injected "
        f"{result.skips_injected} positional losses"
    )
    if result.steps is not None:
        for step in result.steps:
            deltas = ", ".join(
                f"{fid}: {before} -> {after}"
                for fid, (before, after) in sorted(
                    step.counter_deltas.items()
                )
            )
            line = (
                f"  [{step.index:6d}] t={step.packet[0]} "
                f"size={step.packet[1]} fid={step.packet[2]} "
                f"slot={step.slot} shard={step.shard}"
            )
            if deltas:
                line += f" | {deltas}"
            for fid, time_ns in step.detections.items():
                line += f" | DETECTED {fid} at {time_ns} ns"
            print(line)
    return 0 if result.exact else 1


def run_incidents(args: argparse.Namespace) -> int:
    """The ``incidents`` command: ``list`` (default) tabulates the log,
    ``show --id N`` dumps one record, ``export`` writes JSON (or the
    static HTML timeline with ``--html``)."""
    subaction = args.subaction or "list"
    if subaction not in ("list", "show", "export"):
        raise SystemExit(
            f"unknown incidents sub-action {subaction!r}; expected "
            "'list', 'show' or 'export'"
        )
    path, records = _load_incident_log(args)

    if subaction == "show":
        if args.incident_id is None:
            raise SystemExit("incidents show requires --id")
        for record in records:
            if record.id == args.incident_id:
                import json

                print(json.dumps(record.as_dict(), indent=2, default=str))
                return 0
        raise SystemExit(
            f"no incident {args.incident_id} in {path} "
            f"({len(records)} records)"
        )

    if subaction == "export":
        if args.html:
            from .forensics import render_html

            body = render_html(records)
            out = args.out or str(Path(path).parent / "incidents.html")
        else:
            import json

            body = (
                json.dumps(
                    [record.as_dict() for record in records], indent=2,
                    default=str,
                )
                + "\n"
            )
            out = args.out
        if out is None:
            print(body, end="")
            return 0
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(body)
        print(f"wrote {len(records)} incidents to {out}")
        return 0

    if args.json:
        import json

        print(
            json.dumps(
                [record.as_dict() for record in records], indent=2,
                default=str,
            )
        )
        return 0
    table = Table(
        title=f"Incident log: {path} ({len(records)} records)",
        headers=["id", "class", "severity", "packet", "shard", "message"],
    )
    for record in records:
        table.add_row(
            record.id,
            record.incident_class,
            record.severity,
            "" if record.packet_index is None else record.packet_index,
            "" if record.shard is None else record.shard,
            record.message,
        )
    bundles = sum(1 for record in records if record.bundle)
    table.add_note(
        f"{bundles} incident(s) carry replay bundles; "
        "re-execute one with: eardet replay <id> --forensics-dir "
        f"{Path(path).parent}"
    )
    try:
        print(table.render())
    except BrokenPipeError:
        # `eardet incidents list | head` closing the pipe early is not
        # an error worth a traceback.
        pass
    return 0


def run_simulate(args: argparse.Namespace) -> int:
    """The ``simulate`` command: the Shrew-vs-TCP mitigation pipeline with
    CLI-tunable parameters (see repro.simulation)."""
    from .model.units import milliseconds, rate_to_human, seconds
    from .simulation import (
        AimdSource,
        ConstantBitRateSource,
        ShrewSource,
        simulate,
    )

    rho = args.bottleneck
    access_rate = 10 * rho
    sources = [
        AimdSource(fid=f"victim-{index}", max_cwnd=30)
        for index in range(args.victims)
    ] + [
        ConstantBitRateSource(fid="background", rate=max(1, rho // 20)),
        ShrewSource(
            fid="attacker",
            burst_bytes=args.burst_kb * 1_000,
            period_ns=milliseconds(args.period_ms),
            link_rate=access_rate,
        ),
    ]
    detector = None
    if not args.no_policer:
        config = engineer(
            rho=13 * rho,  # the ingress aggregate the policer watches
            gamma_l=max(1, round(0.175 * rho)),
            beta_l=20_000,
            gamma_h=max(2, round(0.4 * rho)),
            t_upincb_seconds=1.0,
        )
        detector = EARDet(config)
        print(f"policer: {config.describe().splitlines()[0]}")
    result = simulate(
        sources,
        rho=rho,
        buffer_bytes=max(10_000, rho // 60),
        duration_ns=seconds(args.duration_s),
        slot_ns=milliseconds(100),
        detector=detector,
    )
    table = Table(
        title=(
            f"Mitigation simulation: {args.victims} victims vs "
            f"{args.burst_kb} KB bursts every {args.period_ms} ms"
        ),
        headers=["flow", "offered", "delivered", "policed", "goodput"],
    )
    for fid, outcome in result.flows.items():
        table.add_row(
            str(fid),
            outcome.offered_bytes,
            outcome.delivered_bytes,
            outcome.policed_bytes,
            rate_to_human(result.goodput_bps(fid)),
        )
    if detector is not None:
        table.add_note(
            "cut off: "
            + (", ".join(map(str, result.detected_flows())) or "nobody")
        )
    print(table.render())
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        # Stable machine-parseable contract: one experiment name per line,
        # names match [a-z0-9-]+, nothing else on stdout, exit code 0.
        try:
            for name in EXPERIMENTS:
                print(name)
        except BrokenPipeError:
            # Downstream `head` closed early; exit quietly.
            sys.stderr.close()
        return 0
    if args.experiment == "detect":
        return run_detect(args)
    if args.experiment == "detectors":
        return run_detectors(args)
    if args.experiment == "analyze":
        return run_analyze(args)
    if args.experiment == "simulate":
        return run_simulate(args)
    if args.experiment == "serve":
        return run_serve(args)
    if args.experiment == "worker":
        return run_worker_cmd(args)
    if args.experiment == "checkpoint":
        return run_checkpoint(args)
    if args.experiment == "metrics":
        return run_metrics(args)
    if args.experiment == "replay":
        return run_replay(args)
    if args.experiment == "incidents":
        return run_incidents(args)
    if args.experiment == "tune":
        return run_tune(args)
    params = resolve_params(args)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        if args.json:
            import json

            from .experiments.report import to_dict

            payload = {
                name: [to_dict(item) for item in EXPERIMENTS[name](params)]
                for name in names
            }
            print(json.dumps(payload, indent=2))
        else:
            from .experiments.charts import render_chart
            from .experiments.report import SeriesSet

            for name in names:
                for item in EXPERIMENTS[name](params):
                    if args.chart and isinstance(item, SeriesSet):
                        print(render_chart(item))
                    else:
                        print(item.render())
                    print()
    except BrokenPipeError:
        # Downstream pager/`head` closed early; exit quietly.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
