"""Ambiguity-region attacks: how much damage can an undetectable flow do?

EARDet's exactness has a deliberate hole: a flow holding its rate between
``TH_l`` and ``TH_h`` is *never* caught, so the overuse it inflicts —
bytes beyond the protected allowance ``TH_l(t) = gamma_l t + beta_l`` —
grows linearly for as long as it runs.  This experiment measures that
damage under three in-region strategies and shows how the second-stage
watchers (CLEF's twin RLFDs, LOFT) bound it:

1. **In-region pulse** — on/off bursts whose *average* sits mid-region
   while every burst stays below the no-FNl envelope.
2. **Rate-limit skimming** — a constant rate pinned just under the high
   threshold: the most damage per second an undetectable flow can buy.
3. **Coordinated many-small-flows** — several flows each hovering just
   above ``gamma_l``; individually modest, collectively a large theft.

For every scenario the table reports, per scheme, the attackers caught,
the latest detection time, and the **measured damage**: overuse bytes
accumulated before each attacker's detection (its whole-run overuse when
it escapes).  The no-watcher baseline never detects an in-region flow,
so its damage column is the unbounded worst case; the watchers' columns
are the measured damage-limitation bound the composition buys.  Watcher
detections are probabilistic — the point here is damage limitation, not
exactness (the exact envelope is unchanged either way).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.config import EARDetConfig
from ..core.eardet import EARDet
from ..detectors.base import Detector
from ..detectors.clef import TwinRLFD
from ..detectors.loft import LOFT
from ..model.packet import FlowId, Packet
from ..model.stream import merge
from ..model.units import NS_PER_S
from .report import ExperimentParams, Table

#: Watcher sizing used by the experiment (kept equal for a fair
#: memory comparison: 32 counters/aggregates per scheme).
WATCHER_COUNTERS = 32
WATCHER_DEPTH = 2
FAST_PERIOD_NS = 50_000_000
SLOW_PERIOD_NS = 400_000_000
EPOCH_NS = 100_000_000


def experiment_config() -> EARDetConfig:
    """A small, fast config with a wide ambiguity region.

    ``gamma_l = 10 kB/s`` and ``rho/(n+1) = 200 kB/s`` leave a 20x band
    where EARDet is silent by design — room for every strategy below to
    operate without ever crossing ``TH_h``.
    """
    return EARDetConfig(
        rho=1_000_000, n=4, beta_th=500, alpha=100, beta_l=200,
        gamma_l=10_000,
    )


def _paced_flow(
    fid: FlowId,
    rate: int,
    duration_ns: int,
    rng: random.Random,
    start_ns: int = 0,
    size: int = 100,
    on_ns: Optional[int] = None,
    off_ns: Optional[int] = None,
) -> List[Packet]:
    """Fixed-size packets paced at ``rate`` bytes/s, optionally pulsed
    with ``on_ns`` active / ``off_ns`` silent phases (the *on-phase*
    rate is ``rate``; pulsing lowers the average below it)."""
    gap = max(1, (size * NS_PER_S) // rate)
    packets: List[Packet] = []
    time = start_ns + rng.randint(0, gap)
    while time < start_ns + duration_ns:
        if on_ns is not None and off_ns is not None:
            phase = (time - start_ns) % (on_ns + off_ns)
            if phase >= on_ns:
                time += (on_ns + off_ns) - phase
                continue
        packets.append(Packet(time=time, size=size, fid=fid))
        time += gap
    return packets


def _background(
    count: int, gamma_l: int, duration_ns: int, rng: random.Random
) -> List[List[Packet]]:
    """Benign small flows, each well below the protected rate."""
    return [
        _paced_flow(
            ("bg", index), max(1, gamma_l // 4), duration_ns, rng,
            size=rng.choice((60, 80, 100)),
        )
        for index in range(count)
    ]


def _scenarios(
    config: EARDetConfig, duration_ns: int, rng: random.Random
) -> List[Tuple[str, List[FlowId], List[List[Packet]]]]:
    """(name, attack fids, attack packet lists) per strategy.  Every
    attack rate sits strictly inside the ambiguity region."""
    gamma_l = config.gamma_l
    rnfn = int(config.rnfn)  # rho/(n+1), the no-FNl boundary
    pulse_fid: FlowId = ("atk", "pulse")
    skim_fid: FlowId = ("atk", "skim")
    small_fids: List[FlowId] = [("atk", f"small-{i}") for i in range(6)]
    scenarios: List[Tuple[str, List[FlowId], List[List[Packet]]]] = []
    # 1. Pulses at 60% of rnfn while on, 50% duty cycle: average 30%.
    scenarios.append(
        (
            "in-region pulse",
            [pulse_fid],
            [
                _paced_flow(
                    pulse_fid, (6 * rnfn) // 10, duration_ns, rng,
                    on_ns=40_000_000, off_ns=40_000_000,
                )
            ],
        )
    )
    # 2. Constant skimming at 75% of rnfn — never over TH_h.
    scenarios.append(
        (
            "rate-limit skimming",
            [skim_fid],
            [_paced_flow(skim_fid, (3 * rnfn) // 4, duration_ns, rng)],
        )
    )
    # 3. Six coordinated flows, each at 2.5x gamma_l (12.5% of rnfn).
    scenarios.append(
        (
            "coordinated small flows",
            small_fids,
            [
                _paced_flow(fid, (gamma_l * 5) // 2, duration_ns, rng)
                for fid in small_fids
            ],
        )
    )
    return scenarios


def _overuse_bytes(
    packets: Iterable[Packet],
    until_ns: Optional[int],
    gamma_l: int,
    beta_l: int,
    end_ns: int,
) -> int:
    """Bytes beyond the protected allowance ``TH_l`` that one flow
    landed before ``until_ns`` (the whole run when never detected)."""
    horizon = end_ns if until_ns is None else until_ns
    sent = sum(p.size for p in packets if p.time <= horizon)
    allowance = (gamma_l * horizon) // NS_PER_S + beta_l
    return max(0, sent - allowance)


def _union_verdicts(
    exact: Dict[FlowId, int], watcher: Optional[Dict[FlowId, int]]
) -> Dict[FlowId, int]:
    """Exact verdicts unioned with a watcher's probabilistic ones,
    keeping the earliest time per flow.  This mirrors how an operator
    reads a two-stage report — but the union exists only for the damage
    metric here; the service never merges the sets."""
    merged = dict(exact)
    for fid, time_ns in (watcher or {}).items():
        current = merged.get(fid)
        if current is None or time_ns < current:
            merged[fid] = time_ns
    return merged


def run(params: ExperimentParams = ExperimentParams()) -> List[Table]:
    """Damage-limitation comparison across the three in-region attacks."""
    config = experiment_config()
    rng = random.Random(params.seed)
    duration_ns = max(1, round(4 * max(params.scale, 0.25) * NS_PER_S))
    background = _background(12, config.gamma_l, duration_ns, rng)

    table = Table(
        title=(
            "Ambiguity-region attacks: overuse before detection "
            f"({duration_ns / NS_PER_S:.1f}s, seed {params.seed})"
        ),
        headers=[
            "scenario", "scheme", "caught", "latest detection (s)",
            "damage (overuse bytes)", "damage growth",
        ],
    )
    for name, attack_fids, attack_streams in _scenarios(
        config, duration_ns, rng
    ):
        stream = merge(*background, *attack_streams)
        end_ns = stream.end_time
        by_fid: Dict[FlowId, List[Packet]] = {
            fid: packets
            for fid, packets in zip(attack_fids, attack_streams)
        }
        baseline = EARDet(config).observe_stream(stream)
        exact = dict(baseline.detected)
        watchers: List[Tuple[str, Optional[Detector]]] = [
            ("eardet (no watcher)", None),
            (
                "eardet+clef",
                TwinRLFD.for_config(
                    config, WATCHER_COUNTERS, WATCHER_DEPTH,
                    FAST_PERIOD_NS, SLOW_PERIOD_NS, seed=params.seed,
                ),
            ),
            (
                "eardet+loft",
                LOFT.for_config(
                    config, aggregates=WATCHER_COUNTERS,
                    epoch_ns=EPOCH_NS, seed=params.seed,
                ),
            ),
        ]
        for scheme, watcher in watchers:
            if watcher is not None:
                watcher.observe_stream(stream)
            verdicts = _union_verdicts(
                exact, None if watcher is None else watcher.detected
            )
            caught = sum(1 for fid in attack_fids if fid in verdicts)
            times = [
                verdicts[fid] for fid in attack_fids if fid in verdicts
            ]
            damage = sum(
                _overuse_bytes(
                    by_fid[fid], verdicts.get(fid), config.gamma_l,
                    config.beta_l, end_ns,
                )
                for fid in attack_fids
            )
            benign_fps = sum(
                1 for fid in verdicts if fid not in by_fid
            )
            table.add_row(
                name,
                scheme + (f" [{benign_fps} benign FP]" if benign_fps else ""),
                f"{caught}/{len(attack_fids)}",
                round(max(times) / NS_PER_S, 3) if times else None,
                damage,
                "bounded" if caught == len(attack_fids) else "UNBOUNDED",
            )
    table.add_note(
        "damage = bytes beyond TH_l(t) = gamma_l t + beta_l landed before "
        "detection (full run when escaped); every attack rate is strictly "
        "inside the ambiguity region, so the no-watcher baseline never "
        "detects and its damage grows with run length"
    )
    table.add_note(
        "watcher verdicts are probabilistic — they bound damage; the "
        "exact no-FN/no-FP envelope is EARDet's and is identical in all "
        "three rows"
    )
    return [table]
