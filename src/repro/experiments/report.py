"""Plain-text rendering of experiment results.

The paper's figures are line charts and its tables are small grids; the
benchmark harness reproduces both as text: a :class:`Table` renders
aligned columns, a :class:`SeriesSet` renders one row per x-value with one
column per scheme — the same rows/series the paper plots, ready for
diffing across runs or piping into a plotting tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 10000 or abs(cell) < 0.001:
            return f"{cell:.4g}"
        return f"{cell:.4f}".rstrip("0").rstrip(".")
    return str(cell)


@dataclass
class Table:
    """A titled text table."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> "Table":
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} "
                "columns"
            )
        self.rows.append(cells)
        return self

    def add_note(self, note: str) -> "Table":
        self.notes.append(note)
        return self

    def render(self) -> str:
        formatted = [[_format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(header), *(len(row[i]) for row in formatted)) if formatted else len(header)
            for i, header in enumerate(self.headers)
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class SeriesSet:
    """Several named y-series over a shared x-axis (one paper figure panel)."""

    title: str
    x_label: str
    x_values: Sequence[Cell]
    series: Dict[str, Sequence[Cell]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, name: str, values: Sequence[Cell]) -> "SeriesSet":
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, x-axis has "
                f"{len(self.x_values)}"
            )
        self.series[name] = list(values)
        return self

    def add_note(self, note: str) -> "SeriesSet":
        self.notes.append(note)
        return self

    def to_table(self) -> Table:
        table = Table(
            title=self.title,
            headers=[self.x_label, *self.series.keys()],
        )
        for i, x in enumerate(self.x_values):
            table.add_row(x, *(values[i] for values in self.series.values()))
        table.notes = list(self.notes)
        return table

    def render(self) -> str:
        return self.to_table().render()

    def __str__(self) -> str:
        return self.render()


def render_all(*items: Union[Table, SeriesSet], sep: str = "\n\n") -> str:
    """Render several tables/series sets into one report string."""
    return sep.join(item.render() for item in items)


@dataclass(frozen=True)
class ExperimentParams:
    """Knobs shared by the trace-driven experiments.

    The defaults keep a full figure regeneration in the minutes range on
    a laptop; ``scale=1.0, repetitions=10`` reproduces the paper's full
    setup (30 s traces, averages of 10).
    """

    scale: float = 0.1
    repetitions: int = 3
    attack_flows: int = 20
    seed: int = 0
    dataset: str = "federico"

    #: The paper's full-scale settings, for reference.
    @classmethod
    def paper(cls) -> "ExperimentParams":
        return cls(scale=1.0, repetitions=10, attack_flows=50, seed=0)

    @classmethod
    def quick(cls) -> "ExperimentParams":
        """Smallest parameters that still exercise every code path."""
        return cls(scale=0.03, repetitions=1, attack_flows=5, seed=0)


def _jsonable(cell: Cell):
    """Cells are already JSON-compatible scalars; normalize exotic ints."""
    if isinstance(cell, float) or isinstance(cell, int) or cell is None:
        return cell
    return str(cell)


def table_to_dict(table: Table) -> dict:
    """A JSON-ready representation of a table (for plotting pipelines)."""
    return {
        "title": table.title,
        "headers": list(table.headers),
        "rows": [[_jsonable(cell) for cell in row] for row in table.rows],
        "notes": list(table.notes),
    }


def series_to_dict(series: SeriesSet) -> dict:
    """A JSON-ready representation of a series set."""
    return {
        "title": series.title,
        "x_label": series.x_label,
        "x": [_jsonable(x) for x in series.x_values],
        "series": {
            name: [_jsonable(v) for v in values]
            for name, values in series.series.items()
        },
        "notes": list(series.notes),
    }


def to_dict(item) -> dict:
    """Dispatch: JSON-ready dict for a Table or SeriesSet."""
    if isinstance(item, SeriesSet):
        return series_to_dict(item)
    if isinstance(item, Table):
        return table_to_dict(item)
    raise TypeError(f"cannot serialize {type(item).__name__}")


def write_csv_table(table: Table, path) -> None:
    """Write a table (or a SeriesSet via .to_table()) as CSV."""
    import csv

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.headers)
        for row in table.rows:
            writer.writerow([_format_cell(cell) for cell in row])
