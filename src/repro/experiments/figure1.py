"""Figure 1: why arbitrary windows matter.

The paper's opening example: on a link congested by 50-byte packets, a
flow B sends two packets far enough apart that (a) its volume since the
landmark never violates ``TH_h(t - 0)``, (b) no fixed-size sliding window
contains both packets, yet (c) the window ``[10ns, 50ns)`` — visible only
to the arbitrary-window model — is violated.

The paper's figure is schematic (its annotated numbers don't form a
consistent unit system), so this reproduction keeps the figure's
*structure* — same packet layout, 40 Gbps link, 50-byte packets, 30 ns
sliding window — with a threshold scaled so flow B's burst violates it
over [10, 50) but nowhere the weaker models look:
``TH_h(w) = 1.5 GB/s * w + 50 B``.  Flow B's 100 bytes over the 30 ns
span exceed ``45 + 50``; over the landmark's [0, 40) they stay within
``60 + 50``; and no 30 ns sliding window holds both B packets.

Three idealized per-flow monitors (landmark, sliding, arbitrary) are run
over the stream; only the arbitrary-window monitor catches flow B.
"""

from __future__ import annotations

from typing import Dict, List

from ..model.packet import FlowId, Packet
from ..model.stream import PacketStream
from ..model.thresholds import LeakyBucket, ThresholdFunction
from ..model.units import NS_PER_S
from .report import Table

#: The example's threshold: violated by 2 x 50 B within ~33 ns, but not
#: over the landmark window, any 30 ns sliding window, or by one packet.
EXAMPLE_THRESHOLD = ThresholdFunction(gamma=1_500_000_000, beta=50)

#: 30 ns sliding window, as drawn in the figure.
SLIDING_WINDOW_NS = 30


def example_stream() -> PacketStream:
    """The figure's packet timeline: A, B, C, D, B at 10 ns spacing on a
    40 Gbps link congested by 50-byte packets."""
    layout = [(0, "A"), (10, "B"), (20, "C"), (30, "D"), (40, "B")]
    return PacketStream(
        Packet(time=t, size=50, fid=fid) for t, fid in layout
    )


def landmark_catches(
    stream: PacketStream, threshold: ThresholdFunction, landmark_ns: int = 0
) -> Dict[FlowId, bool]:
    """Idealized landmark-window monitor: per flow, check the volume over
    ``[landmark, t)`` at every packet."""
    volumes: Dict[FlowId, int] = {}
    caught: Dict[FlowId, bool] = {}
    for packet in stream:
        volumes[packet.fid] = volumes.get(packet.fid, 0) + packet.size
        caught.setdefault(packet.fid, False)
        if threshold.exceeded_by(volumes[packet.fid], packet.time - landmark_ns):
            caught[packet.fid] = True
    return caught


def sliding_catches(
    stream: PacketStream, threshold: ThresholdFunction, window_ns: int
) -> Dict[FlowId, bool]:
    """Idealized sliding-window monitor: per flow, check the volume over
    ``[t - W, t)`` at every packet."""
    history: Dict[FlowId, List[Packet]] = {}
    caught: Dict[FlowId, bool] = {}
    for packet in stream:
        flow = history.setdefault(packet.fid, [])
        flow.append(packet)
        start = packet.time - window_ns
        flow[:] = [p for p in flow if p.time > start]
        volume = sum(p.size for p in flow)
        caught.setdefault(packet.fid, False)
        if threshold.exceeded_by(volume, window_ns):
            caught[packet.fid] = True
    return caught


def arbitrary_catches(
    stream: PacketStream, threshold: ThresholdFunction
) -> Dict[FlowId, bool]:
    """Idealized arbitrary-window monitor: per-flow leaky bucket, exact."""
    buckets: Dict[FlowId, LeakyBucket] = {}
    caught: Dict[FlowId, bool] = {}
    beta_scaled = threshold.beta * NS_PER_S
    for packet in stream:
        bucket = buckets.get(packet.fid)
        if bucket is None:
            bucket = LeakyBucket(threshold.gamma)
            bucket.last_time = packet.time
            buckets[packet.fid] = bucket
        level = bucket.add(packet.time, packet.size)
        caught.setdefault(packet.fid, False)
        if level > beta_scaled:
            caught[packet.fid] = True
    return caught


def run() -> Table:
    """Regenerate Figure 1 as a table: which window model catches which
    flow."""
    stream = example_stream()
    landmark = landmark_catches(stream, EXAMPLE_THRESHOLD)
    sliding = sliding_catches(stream, EXAMPLE_THRESHOLD, SLIDING_WINDOW_NS)
    arbitrary = arbitrary_catches(stream, EXAMPLE_THRESHOLD)
    table = Table(
        title="Figure 1: window models vs the bursty flow B",
        headers=["flow", "landmark [0,t)", f"sliding {SLIDING_WINDOW_NS}ns", "arbitrary"],
    )
    for fid in stream.flow_ids():
        table.add_row(
            str(fid),
            "caught" if landmark[fid] else "evades",
            "caught" if sliding[fid] else "evades",
            "caught" if arbitrary[fid] else "evades",
        )
    table.add_note(
        f"threshold {EXAMPLE_THRESHOLD.describe()}; flow B violates it over "
        "[10ns, 50ns) and is visible only to the arbitrary-window model"
    )
    return table


if __name__ == "__main__":
    print(run().render())
