"""Paper experiments: one module per table/figure (see DESIGN.md's index).

Every module exposes ``run(...)`` returning renderable
:class:`~repro.experiments.report.Table` / ``SeriesSet`` objects; the
``benchmarks/`` directory wires each into pytest-benchmark, and
``python -m repro.cli`` runs them from the command line.
"""

from . import (
    ablations,
    ambiguity,
    appendix_a,
    dynamics,
    figure1,
    figure5,
    figure6,
    figure7,
    figure8,
    mitigation,
    robustness,
    scalability,
    table2,
    table3,
    tables456,
    window_models,
)
from .harness import ExperimentSetup, build_setup, first_packet_times
from .report import ExperimentParams, SeriesSet, Table, render_all

__all__ = [
    "ExperimentParams",
    "ExperimentSetup",
    "SeriesSet",
    "Table",
    "ablations",
    "ambiguity",
    "appendix_a",
    "build_setup",
    "dynamics",
    "figure1",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "first_packet_times",
    "mitigation",
    "robustness",
    "render_all",
    "scalability",
    "table2",
    "table3",
    "tables456",
    "window_models",
]
