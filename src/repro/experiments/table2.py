"""Table 2: numerical comparison of EARDet, FMF and AMF.

The paper's setting: ``gamma_h`` = 1% of link capacity, ``gamma_l`` = 0.1%
(the Appendix-A worked example's 100 MB/s link).  EARDet's column comes
from the Appendix-A solver; its error rates are identically zero by
Theorems 4 and 6.  FMF's and AMF's entries come from the Estan-Varghese
analysis: with the *same* memory as EARDet the per-stage bound is vacuous
("no guarantee"), and even with ~10x the counters the FPs bound is only
<= 0.04; FMF additionally has FNl on bursty flows because its guarantee is
derived in the landmark-window model (the table's asterisk).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import engineer
from ..detectors.fmf import fp_probability_bound
from .report import Table

#: The worked example's link and thresholds (Appendix A).
RHO = 100_000_000
GAMMA_H = RHO // 100
GAMMA_L = RHO // 1000
BETA_L = 6072
T_UPINCB = 1.0

#: Multistage budgets the paper quotes (counters total).
FMF_LARGE_BUDGET = 1000
AMF_LARGE_BUDGET = 2000
STAGES = 2


@dataclass(frozen=True)
class Table2Row:
    scheme: str
    counters: str
    fps_rate: str
    fnl_rate: str


def multistage_fp_bound(total_counters: int, stages: int = STAGES) -> float:
    """FPs bound for a multistage filter with the worked example's load:
    one measurement interval carries ``rho * 1s`` bytes against threshold
    ``T = gamma_h * 1s``."""
    buckets = total_counters // stages
    return fp_probability_bound(
        stages=stages,
        buckets=buckets,
        threshold=GAMMA_H,
        traffic_bytes=RHO,
    )


def rows() -> list:
    """Compute the Table 2 rows."""
    config = engineer(
        rho=RHO,
        gamma_l=GAMMA_L,
        beta_l=BETA_L,
        gamma_h=GAMMA_H,
        t_upincb_seconds=T_UPINCB,
    )
    eardet_counters = config.n
    small_fp = multistage_fp_bound(eardet_counters + 1)  # ~EARDet's memory
    fmf_fp = multistage_fp_bound(FMF_LARGE_BUDGET)
    amf_fp = multistage_fp_bound(AMF_LARGE_BUDGET)
    return [
        Table2Row("eardet", str(eardet_counters), "0", "0"),
        Table2Row(
            "fmf",
            f"{eardet_counters}/{FMF_LARGE_BUDGET}",
            f"no guarantee ({small_fp:.2f}) / <= {fmf_fp:.2f}*",
            "0* (landmark only; FNl on bursts)",
        ),
        Table2Row(
            "amf",
            f"{eardet_counters}/{AMF_LARGE_BUDGET}",
            f"no guarantee ({small_fp:.2f}) / <= {amf_fp:.2f}",
            "0",
        ),
    ]


def run() -> Table:
    """Regenerate Table 2."""
    table = Table(
        title="Table 2: numerical comparison (gamma_h = 1% rho, gamma_l = 0.1% rho)",
        headers=["scheme", "# counters", "FPs rate", "FNl rate"],
    )
    for row in rows():
        table.add_row(row.scheme, row.counters, row.fps_rate, row.fnl_rate)
    table.add_note(
        "* FMF's guarantees hold only in the landmark-window model; its "
        "arbitrary-window FPs/FNl rates are higher (Figures 5-6)"
    )
    table.add_note(
        "multistage bounds use the Estan-Varghese analysis (C/(T b))^d at "
        "full link load"
    )
    return table


if __name__ == "__main__":
    print(run().render())
