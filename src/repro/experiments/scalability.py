"""Section 3.4's scalability analysis plus a measured-throughput bench.

Two halves:

- :func:`analysis_table` reproduces the paper's numerical analysis: the
  synopsis sizes for 100 counters with IPv4/IPv6 keys (the "fits in L1
  cache" claim), the modeled per-packet time, and the line rates
  sustainable with all state in L1 vs L2 (the "40 Gbps / 13 Gbps" claims).
- :func:`throughput_table` measures this pure-Python implementation's
  packets/second on a flooding scenario for every detector — obviously
  orders of magnitude below line rate (Python is the substrate here, see
  DESIGN.md), but it ranks the schemes' per-packet work and feeds the
  pytest-benchmark harness.
"""

from __future__ import annotations

from ..analysis.memory import (
    IPV4_KEY_BITS,
    IPV6_KEY_BITS,
    PAPER_MODEL,
    eardet_scalability,
)
from ..traffic.attacks import FloodingAttack
from ..traffic.mix import build_attack_scenario
from .harness import SMALL_BUDGET, build_setup, dataset_for
from .report import ExperimentParams, Table

#: The paper's representative counter budget (Section 3.4 / Appendix A).
REPRESENTATIVE_COUNTERS = 100


def analysis_table(counters: int = REPRESENTATIVE_COUNTERS) -> Table:
    """The Section 3.4 numerical analysis."""
    table = Table(
        title="Section 3.4: modeled memory footprint and line rate",
        headers=["configuration", "state", "cache", "ns/packet", "Gbps"],
    )
    for key_bits, label in ((IPV4_KEY_BITS, "IPv4 keys"), (IPV6_KEY_BITS, "IPv6 keys")):
        report = eardet_scalability(counters, key_bits=key_bits)
        table.add_row(
            f"{counters} counters, {label}",
            f"{report.state_bytes}B",
            report.cache_level,
            round(report.time_per_packet_ns, 1),
            round(report.sustainable_gbps, 1),
        )
    l2 = eardet_scalability(counters, force_level="L2")
    table.add_row(
        f"{counters} counters, state pinned to L2",
        f"{l2.state_bytes}B",
        "L2",
        round(l2.time_per_packet_ns, 1),
        round(l2.sustainable_gbps, 1),
    )
    table.add_note(
        "paper: ~960B (IPv4) / 2200B (IPv6) fit in L1; 40 Gbps from L1, "
        "13 Gbps from L2 (1000-bit packets, 3.2 GHz CPU)"
    )
    table.add_note(
        f"paper memory model: "
        + ", ".join(
            f"{lvl.name} {lvl.latency_cycles}cy" for lvl in PAPER_MODEL.levels
        )
    )
    return table


def throughput_table(params: ExperimentParams = ExperimentParams()) -> Table:
    """Measured packets/second of this Python implementation per scheme."""
    dataset = dataset_for(params)
    setup = build_setup(dataset)
    scenario = build_attack_scenario(
        dataset.stream,
        FloodingAttack(rate=2 * dataset.gamma_h),
        attack_flows=params.attack_flows,
        rho=dataset.rho,
        congested=False,
        seed=params.seed,
    )
    runner = setup.runner(buckets=SMALL_BUDGET)
    results = runner.run_scenario(scenario)
    table = Table(
        title="Measured throughput of the Python implementation",
        headers=["scheme", "packets", "seconds", "packets/s", "counters"],
    )
    for name, result in results.items():
        table.add_row(
            name,
            result.packets,
            round(result.wall_seconds, 3),
            round(result.packets_per_second),
            result.detector.counter_count(),
        )
    table.add_note(
        "pure-Python substrate; the paper's line-rate claim is the modeled "
        "analysis above, not this measurement"
    )
    return table


def run(params: ExperimentParams = ExperimentParams()):
    """Both halves of the Section 3.4 reproduction."""
    return analysis_table(), throughput_table(params)


if __name__ == "__main__":
    for table in run(ExperimentParams.quick()):
        print(table.render())
        print()
