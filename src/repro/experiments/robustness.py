"""Robustness against malicious inputs (the paper's stated future work).

Three adversarial strategies from :mod:`repro.traffic.adversarial`, each
measured against EARDet and the multistage baselines:

1. **Threshold riding** — traffic pinned at the supremum of ``TH_h``
   compliance.  Never ground-truth large, so no detector is *obliged* to
   catch it; the table reports who does anyway (EARDet's
   ambiguity-region catch rate) and confirms nobody is "wrong" either
   way.
2. **Counter churn** — a swarm of fresh single-packet flows tries to
   shield a colluding large flow by churning counters.  EARDet must
   still catch the accomplice (Theorem 4 is input-independent); the
   table also shows the incubation inflation the shield buys, which
   stays under the Theorem-7 bound.
3. **Framing** — medium-rate flow swarms try to get benign small flows
   blamed.  EARDet's FPs stay identically zero (Theorem 6); the hashed
   baselines frame real victims.
"""

from __future__ import annotations

import random
from typing import List

from ..analysis.runner import ExperimentRunner
from ..core.eardet import EARDet
from ..model.stream import merge
from ..model.units import NS_PER_S
from ..traffic.adversarial import (
    CounterChurnAttack,
    FramingAttack,
    ThresholdRider,
)
from ..traffic.attacks import FloodingAttack
from ..traffic.mix import AttackScenario
from .harness import SMALL_BUDGET, build_setup, dataset_for, first_packet_times
from .report import ExperimentParams, Table


def threshold_riding(params: ExperimentParams = ExperimentParams()) -> Table:
    """Strategy 1: ride the high threshold's supremum."""
    dataset = dataset_for(params)
    setup = build_setup(dataset)
    rider = ThresholdRider(threshold=setup.high)
    duration = max(dataset.stream.end_time, NS_PER_S)
    riders = [rider.generate(("rider", i), duration) for i in range(3)]
    stream = merge(dataset.stream, *riders)
    scenario = AttackScenario(
        stream=stream,
        attack_fids=tuple(("rider", i) for i in range(3)),
        filler_fids=(),
        background_fids=tuple(dataset.stream.flow_ids()),
        congested=False,
    )
    runner = setup.runner(buckets=SMALL_BUDGET)
    results = runner.run_scenario(scenario)
    labels = next(iter(results.values())).labels
    table = Table(
        title="Robustness 1: threshold riders (supremum of TH_h compliance)",
        headers=["scheme", "riders caught", "benign small FPs", "rider ground truth"],
    )
    rider_classes = {labels[fid].flow_class.value for fid in scenario.attack_fids}
    for name, result in results.items():
        table.add_row(
            name,
            f"{result.attack_detection.detected}/{result.attack_detection.total}",
            result.benign_fp.probability,
            "/".join(sorted(rider_classes)),
        )
    table.add_note(
        "riders are ground-truth medium (never strictly over TH_h): "
        "catching them is allowed, missing them is allowed; framing "
        "bystanders is not"
    )
    return table


def counter_churn(params: ExperimentParams = ExperimentParams()) -> Table:
    """Strategy 2: churn counters to shield a colluding large flow."""
    dataset = dataset_for(params)
    setup = build_setup(dataset)
    duration = max(dataset.stream.end_time, NS_PER_S)
    rng = random.Random(params.seed)
    accomplice_rate = 2 * dataset.gamma_h
    accomplice = FloodingAttack(rate=accomplice_rate).generate(
        "accomplice", duration, rng, start_ns=0
    )
    rows: List = []
    for label, swarm_rate in (
        ("no churn", 0),
        ("churn 20% of link", dataset.rho // 5),
        ("churn 60% of link", 3 * dataset.rho // 5),
    ):
        streams = [dataset.stream, accomplice]
        if swarm_rate:
            churn = CounterChurnAttack(swarm_rate=swarm_rate)
            streams.append(churn.generate("churn", duration, rng))
        stream = merge(*streams)
        scenario = AttackScenario(
            stream=stream,
            attack_fids=("accomplice",),
            filler_fids=(),
            background_fids=tuple(dataset.stream.flow_ids()),
            congested=False,
        )
        runner = ExperimentRunner(setup.high, setup.low)
        labels = runner.label(scenario.stream)
        starts = first_packet_times(scenario.stream, scenario.attack_fids)
        result = runner.run_one(
            "eardet", EARDet(setup.config), scenario, labels,
            attack_start_times=starts,
        )
        bound = float(setup.config.incubation_bound_seconds(accomplice_rate))
        rows.append(
            (
                label,
                "caught" if result.detector.is_detected("accomplice") else "ESCAPED",
                round(result.incubation.maximum or 0.0, 4),
                round(bound, 4),
            )
        )
    table = Table(
        title="Robustness 2: counter churn shielding a colluding large flow (EARDet)",
        headers=["swarm", "accomplice", "incubation (s)", "Theorem-7 bound (s)"],
    )
    for row in rows:
        table.add_row(*row)
    table.add_note(
        "Theorem 4 is input-independent: the shield can at most spend the "
        "bounded incubation budget, never buy an escape"
    )
    return table


def framing(params: ExperimentParams = ExperimentParams()) -> Table:
    """Strategy 3: frame benign small flows via shared detector state."""
    dataset = dataset_for(params)
    setup = build_setup(dataset)
    duration = max(dataset.stream.end_time, NS_PER_S)
    rng = random.Random(params.seed)
    attack = FramingAttack(
        flows=params.attack_flows * 3,
        per_flow_rate=round(0.8 * dataset.gamma_h),
    )
    framing_flows = attack.generate("framer", duration, rng)
    stream = merge(dataset.stream, *framing_flows)
    scenario = AttackScenario(
        stream=stream,
        attack_fids=tuple(("framer", i) for i in range(attack.flows)),
        filler_fids=(),
        background_fids=tuple(dataset.stream.flow_ids()),
        congested=False,
    )
    results = setup.runner(buckets=SMALL_BUDGET).run_scenario(scenario)
    table = Table(
        title="Robustness 3: framing benign flows via shared state",
        headers=["scheme", "benign small FPs", "small flows framed"],
    )
    for name, result in results.items():
        table.add_row(
            name,
            round(result.benign_fp.probability, 4),
            f"{result.benign_fp.detected}/{result.benign_fp.total}",
        )
    table.add_note(
        "framers run at 0.8 gamma_h each (ambiguity region) purely to "
        "inflate shared counters; EARDet has none to inflate"
    )
    return table


def run(params: ExperimentParams = ExperimentParams()) -> List[Table]:
    """All three robustness studies."""
    return [threshold_riding(params), counter_churn(params), framing(params)]


if __name__ == "__main__":
    for table in run(ExperimentParams.quick()):
        print(table.render())
        print()
