"""Elastic resharding under skew: does exactness survive live migration?

Two service-level studies of :mod:`repro.service.reshard` (not a paper
figure — the paper fixes its deployment; this probes the repo's
scale-out story):

1. **Hash skew** — a flow population deliberately concentrated on the
   slots of one shard.  A static layout leaves that shard carrying most
   of the stream; the skew-driven coordinator splits it.  The table
   reports the end-of-run load skew (max/mean per-shard packets) with
   and without the coordinator, the migrations committed, and — the
   point of the whole subsystem — that the detection sets are
   bit-identical.

2. **Flash crowd** — uniform traffic that suddenly concentrates
   mid-stream (a crowd arrives on one shard's slots).  Shows the
   coordinator reacting only after its persistence hysteresis, the
   migration pause it paid, and again the unchanged detections.

Both studies compare ``detections(resharded) == detections(static)``
exactly, i.e. the differential property ``tests/test_reshard.py`` fuzzes
is demonstrated here on adversarially skewed inputs.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.config import EARDetConfig
from ..detectors.hashing import StageHash
from ..model.packet import Packet
from ..service import CoordinatorPolicy, DetectionService
from .report import ExperimentParams, Table

#: Service geometry shared by both studies.
SHARDS = 2
SLOTS = 8
SEED = 0

_CONFIG = EARDetConfig(rho=12_500_000, n=64, beta_th=600_000)


def _policy() -> CoordinatorPolicy:
    """An aggressive coordinator sizing so the small experiment streams
    trip it (production defaults watch much longer windows)."""
    return CoordinatorPolicy(
        skew_high=1.6,
        skew_low=1.1,
        persistence=2,
        cooldown=4,
        min_window_packets=512,
        max_shards=6,
        merge_enabled=False,
    )


def _flows_by_shard(count: int) -> Dict[int, List[str]]:
    """Bucket candidate flow ids by the shard hosting their slot under
    the *initial* identity layout."""
    hasher = StageHash(seed=SEED, buckets=SLOTS)
    flows: Dict[int, List[str]] = {shard: [] for shard in range(SHARDS)}
    index = 0
    while sum(len(ids) for ids in flows.values()) < count:
        fid = f"flow-{index}"
        index += 1
        flows[hasher(fid) % SHARDS].append(fid)
    return flows


def _serve_pair(
    packets: List[Packet],
) -> Tuple[Dict, Dict, DetectionService, DetectionService]:
    """Run the same stream through a static service and a coordinated
    one; returns (static detections, coordinated detections, services)."""
    static = DetectionService(_CONFIG, shards=SHARDS, seed=SEED, slots=SLOTS)
    static_report = static.serve(packets, final_checkpoint=False)
    static.shutdown()
    elastic = DetectionService(
        _CONFIG,
        shards=SHARDS,
        seed=SEED,
        slots=SLOTS,
        coordinator=_policy(),
        batch_size=256,
    )
    elastic_report = elastic.serve(packets, final_checkpoint=False)
    elastic.shutdown()
    return static_report.detections, elastic_report.detections, static, elastic


def _skew(routed: List[int]) -> float:
    loaded = [count for count in routed if count > 0]
    if not loaded:
        return 1.0
    return max(loaded) / (sum(loaded) / len(loaded))


def _row(
    label: str,
    service: DetectionService,
    detections_equal: Optional[bool],
) -> Tuple:
    engine = service.engine
    reshard = service._reshard_report() or {}
    pause_ns = reshard.get("last_pause_ns")
    return (
        label,
        engine.shard_count,
        round(_skew(engine.routed), 2),
        reshard.get("migrations", 0),
        "-" if pause_ns is None else round(pause_ns / 1e6, 2),
        "-" if detections_equal is None else
        ("identical" if detections_equal else "DIVERGED"),
    )


_HEADERS = [
    "run", "shards", "load skew", "migrations", "pause (ms)", "detections"
]


def hash_skew(params: ExperimentParams = ExperimentParams()) -> Table:
    """Study 1: a population that hashes onto one shard's slots."""
    rng = random.Random(params.seed)
    flows = _flows_by_shard(48)
    hot, cold = flows[0], flows[1]
    packets = []
    for index in range(24_000):
        # 6 of 7 packets land on shard 0's slots; a few flows run hot
        # enough to cross TH_h, so the detection comparison is non-empty.
        pool = hot if index % 7 else cold
        fid = pool[rng.randrange(4)] if index % 5 == 0 else rng.choice(pool)
        size = 1500 if fid in pool[:4] else 200
        packets.append(Packet(index * 20_000, size, fid))
    static_det, elastic_det, static, elastic = _serve_pair(packets)
    table = Table(
        title="Elasticity 1: hash-skewed population (6/7 of load on one "
        "shard's slots)",
        headers=_HEADERS,
    )
    table.add_row(*_row("static layout", static, None))
    table.add_row(
        *_row("coordinated", elastic, elastic_det == static_det)
    )
    table.add_note(
        "the coordinator splits the hot shard once skew persists past "
        "its hysteresis; detections are compared flow-by-flow with "
        "timestamps against the static run"
    )
    return table


def flash_crowd(params: ExperimentParams = ExperimentParams()) -> Table:
    """Study 2: uniform traffic, then a mid-stream crowd on one shard."""
    rng = random.Random(params.seed + 1)
    flows = _flows_by_shard(48)
    everyone = flows[0] + flows[1]
    crowd = flows[1]
    packets = []
    for index in range(30_000):
        if index < 12_000:
            fid = rng.choice(everyone)
            size = 300
        else:
            # The crowd arrives: shard 1's slots take 8 of 9 packets,
            # with a few crowd flows hot enough to be large.
            pool = crowd if index % 9 else flows[0]
            fid = pool[rng.randrange(4)] if index % 4 == 0 else rng.choice(pool)
            size = 1500 if fid in pool[:4] else 250
        packets.append(Packet(index * 20_000, size, fid))
    static_det, elastic_det, static, elastic = _serve_pair(packets)
    table = Table(
        title="Elasticity 2: flash crowd arriving mid-stream on one shard",
        headers=_HEADERS,
    )
    table.add_row(*_row("static layout", static, None))
    table.add_row(
        *_row("coordinated", elastic, elastic_det == static_det)
    )
    table.add_note(
        "the split happens live, mid-stream, at a batch boundary; the "
        "pause column is the freeze-to-cutover wall time of the last "
        "migration"
    )
    return table


def run(params: ExperimentParams = ExperimentParams()) -> List[Table]:
    """Both elasticity studies."""
    return [hash_skew(params), flash_crowd(params)]


if __name__ == "__main__":
    for table in run(ExperimentParams.quick()):
        print(table.render())
        print()
