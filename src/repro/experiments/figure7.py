"""Figure 7: incubation period of flooding flows vs the Theorem-7 bound.

For flooding flows at rates above ``gamma_h``, measure the time from each
attack flow's first packet to its detection by EARDet, and compare the
maximum and average against the analytical bound
``t_incb < (alpha + 2 beta_TH) / (R_atk - rho/(n+1))`` and the engineered
budget ``t_upincb``.

Reproduced shape: the measured maximum stays below the per-rate bound
(and below ``t_upincb`` for rates >= ``gamma_h``), and the average sits
well below the maximum — the paper's "much shorter in practice".

A subtlety the reproduction surfaced: Theorem 7's bound is conditioned
on the flow's **realized** average rate over its incubation interval
(``R(t1, ta) > R_atk``), and the paper's flooding generator places each
interval's packets at *random* offsets — so a flow's realized prefix
rate can briefly fall below the nominal rate, in which case the
nominal-rate bound simply does not apply to that flow.
:func:`verify_theorem7` therefore checks the theorem per flow against
its realized rate (the rigorous statement); the chart still draws the
nominal-rate bound as the reference line, as the paper does.
"""

from __future__ import annotations

from typing import Sequence

from fractions import Fraction
from typing import Dict, List, NamedTuple

from ..core.eardet import EARDet
from ..model.units import NS_PER_S
from ..traffic.attacks import FloodingAttack
from ..traffic.mix import build_attack_scenario
from .harness import build_setup, dataset_for, first_packet_times
from .report import ExperimentParams, SeriesSet


class Theorem7Check(NamedTuple):
    """One detected flow's incubation vs its realized-rate bound."""

    fid: object
    incubation_seconds: float
    realized_rate_bps: float
    bound_seconds: float  # inf when the realized rate is under R_NFN

    @property
    def holds(self) -> bool:
        return self.incubation_seconds < self.bound_seconds


def verify_theorem7(scenario, detector, config, starts) -> List[Theorem7Check]:
    """Per-flow Theorem 7: ``t_incb < (alpha + 2 beta_TH) / (R - R_NFN)``
    with ``R`` the flow's *realized* average rate over [start, detection).
    Flows whose realized rate is at or under ``R_NFN`` get an infinite
    bound (the theorem is silent about them)."""
    detection_windows: Dict[object, list] = {}
    for fid in scenario.attack_fids:
        detected_at = detector.detection_time(fid)
        start = starts.get(fid)
        if detected_at is None or start is None or detected_at <= start:
            continue
        detection_windows[fid] = [start, detected_at, 0]
    for packet in scenario.stream:
        window = detection_windows.get(packet.fid)
        if window is not None and window[0] <= packet.time <= window[1]:
            window[2] += packet.size
    checks: List[Theorem7Check] = []
    rnfn = config.rnfn
    numerator = config.alpha + 2 * config.beta_th
    for fid, (start, detected_at, volume) in detection_windows.items():
        span = detected_at - start
        realized = Fraction(volume * NS_PER_S, span)
        if realized > rnfn:
            bound = float(Fraction(numerator) / (realized - rnfn))
        else:
            bound = float("inf")
        checks.append(
            Theorem7Check(
                fid=fid,
                incubation_seconds=span / NS_PER_S,
                realized_rate_bps=float(realized),
                bound_seconds=bound,
            )
        )
    return checks

#: Rates above gamma_h (fractions), the x-range where Theorem 7 applies.
DEFAULT_RATE_FRACTIONS = (1.1, 1.25, 1.5, 1.75, 2.0)


def run(
    params: ExperimentParams = ExperimentParams(),
    rate_fractions: Sequence[float] = DEFAULT_RATE_FRACTIONS,
) -> SeriesSet:
    """Regenerate Figure 7."""
    dataset = dataset_for(params)
    setup = build_setup(dataset)
    config = setup.config
    rates = [round(fraction * dataset.gamma_h) for fraction in rate_fractions]
    averages, maxima, bounds = [], [], []
    theorem_checks: List[Theorem7Check] = []
    for attack_index, rate in enumerate(rates):
        attack = FloodingAttack(rate=rate)
        periods = []
        for rep in range(params.repetitions):
            scenario = build_attack_scenario(
                dataset.stream,
                attack,
                attack_flows=params.attack_flows,
                rho=dataset.rho,
                congested=False,
                seed=params.seed * 15485863 + attack_index * 131 + rep,
            )
            runner = setup.runner()
            labels = runner.label(scenario.stream)
            starts = first_packet_times(scenario.stream, scenario.attack_fids)
            result = runner.run_one(
                "eardet", EARDet(config), scenario, labels,
                attack_start_times=starts,
            )
            periods.extend(result.incubation.periods_seconds)
            theorem_checks.extend(
                verify_theorem7(scenario, result.detector, config, starts)
            )
        averages.append(sum(periods) / len(periods) if periods else None)
        maxima.append(max(periods) if periods else None)
        bounds.append(float(config.incubation_bound_seconds(rate)))
    series = SeriesSet(
        title="Figure 7: incubation period of flooding flows (EARDet)",
        x_label="attack rate (B/s)",
        x_values=rates,
    )
    series.add_series("avg t_incb (s)", averages)
    series.add_series("max t_incb (s)", maxima)
    series.add_series("Theorem 7 bound (s)", bounds)
    series.add_note(
        f"engineered budget t_upincb = "
        f"{float(config.incubation_bound_seconds(dataset.gamma_h)):.4f}s at "
        f"gamma_h = {dataset.gamma_h} B/s"
    )
    holds = sum(1 for check in theorem_checks if check.holds)
    series.add_note(
        f"Theorem 7 per-flow (realized-rate) check: {holds}/"
        f"{len(theorem_checks)} hold; the plotted bound uses the nominal "
        "attack rate and may sit below a flow whose realized prefix rate "
        "lagged the nominal (random in-interval placement)"
    )
    series.theorem_checks = theorem_checks  # type: ignore[attr-defined]
    return series


if __name__ == "__main__":
    print(run(ExperimentParams.quick()).render())
