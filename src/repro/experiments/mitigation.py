"""DoS-mitigation experiment: what EARDet buys a TCP victim.

The paper motivates EARDet with DoS defense (Section 1): Shrew attacks
collapse TCP throughput with low-average-rate bursts that average-rate
detectors cannot see.  This experiment closes that loop with the
closed-loop simulation substrate (:mod:`repro.simulation`):

- 4 TCP-like (AIMD) victims plus CBR background share a 2 MB/s
  finite-buffer bottleneck;
- a Shrew attacker fires a 120 KB burst at its 10x-faster access-link
  rate twice a second (average rate 240 KB/s — below any sensible
  average-rate threshold), overflowing the bottleneck buffer and keeping
  the victims' windows collapsed;
- EARDet polices the link, engineered to protect flows under
  ``gamma_l`` and cut off flows over ``gamma_h``.

Reported series: per-scheme victim goodput, attacker goodput, and the
detected set — no defense vs an EARDet policer (vs, as a reference, an
oracle policer that knows the attacker a priori).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.config import engineer
from ..core.eardet import EARDet
from ..model.units import NS_PER_S, milliseconds, seconds
from ..simulation import (
    AimdSource,
    ConstantBitRateSource,
    ShrewSource,
    SimulationResult,
    simulate,
)
from .report import ExperimentParams, Table

#: Scenario constants (see module docstring).
RHO = 2_000_000
BUFFER_BYTES = 30_000
SLOT_NS = milliseconds(100)
VICTIMS = 4
MAX_CWND = 30
BACKGROUND_RATE = 100_000
BURST_BYTES = 120_000
BURST_PERIOD_NS = milliseconds(500)
ATTACKER_ACCESS_RATE = 10 * RHO

#: The detector watches the ingress aggregate: the attacker's 20 MB/s
#: access link plus the victims' and background's; configured with
#: headroom above their sum (see repro.simulation.mitigation docstring).
DETECTOR_RHO = 25_000_000

#: Policer engineering: protect below 350 KB/s (bursts to 20 KB); cut off
#: above 800 KB/s.  The victims' clamped peak rate (30 segments/RTT =
#: 300 KB/s) stays under gamma_l; the attacker's in-burst rate (20 MB/s)
#: is far over gamma_h.
GAMMA_L = 350_000
BETA_L = 20_000
GAMMA_H = 800_000


def build_sources() -> List:
    victims = [
        AimdSource(fid=f"victim-{index}", max_cwnd=MAX_CWND)
        for index in range(VICTIMS)
    ]
    return victims + [
        ConstantBitRateSource(fid="background", rate=BACKGROUND_RATE),
        ShrewSource(
            fid="attacker",
            burst_bytes=BURST_BYTES,
            period_ns=BURST_PERIOD_NS,
            link_rate=ATTACKER_ACCESS_RATE,
        ),
    ]


def _run(duration_ns: int, detector, seed: int) -> SimulationResult:
    return simulate(
        build_sources(),
        rho=RHO,
        buffer_bytes=BUFFER_BYTES,
        duration_ns=duration_ns,
        slot_ns=SLOT_NS,
        detector=detector,
        seed=seed,
    )


class _OracleDetector(EARDet):
    """Reference policer that knows the attacker a priori."""

    def __init__(self, config, attacker_fid: str):
        super().__init__(config)
        self.sink.report(attacker_fid, 0)


def run(params: ExperimentParams = ExperimentParams()) -> Table:
    """Victim goodput with no defense vs EARDet vs an oracle policer."""
    duration = seconds(max(10.0, 100.0 * params.scale))
    config = engineer(
        rho=DETECTOR_RHO,
        gamma_l=GAMMA_L,
        beta_l=BETA_L,
        gamma_h=GAMMA_H,
        t_upincb_seconds=1.0,
    )
    schemes: Dict[str, SimulationResult] = {
        "no defense": _run(duration, None, params.seed),
        "eardet policer": _run(duration, EARDet(config), params.seed),
        "oracle policer": _run(
            duration, _OracleDetector(config, "attacker"), params.seed
        ),
    }
    table = Table(
        title="DoS mitigation: Shrew attack on TCP victims (2 MB/s bottleneck)",
        headers=[
            "scheme",
            "victims goodput (B/s)",
            "attacker goodput (B/s)",
            "detected flows",
        ],
    )
    for name, result in schemes.items():
        victims_goodput = sum(
            result.goodput_bps(f"victim-{index}") for index in range(VICTIMS)
        )
        table.add_row(
            name,
            round(victims_goodput),
            round(result.goodput_bps("attacker")),
            ", ".join(sorted(map(str, result.detected_flows()))) or "-",
        )
    table.add_note(
        f"attacker: {BURST_BYTES}B burst every "
        f"{BURST_PERIOD_NS / 1_000_000:.0f}ms at 10x the bottleneck rate "
        f"(avg {round(BURST_BYTES * NS_PER_S / BURST_PERIOD_NS)} B/s), "
        "invisible to 1s-average thresholds"
    )
    table.add_note(
        f"policer config: n={config.n}, beta_TH={config.beta_th}B, "
        f"protecting gamma_l={GAMMA_L} B/s, cutting gamma_h={GAMMA_H} B/s"
    )
    return table


if __name__ == "__main__":
    print(run(ExperimentParams.quick()).render())
