"""Ablations over EARDet's design space (Section 4.5's tradeoffs).

Six studies, each isolating one design choice DESIGN.md calls out:

1. **Counters vs rate gap** (tradeoff 1): sweeping ``n`` shows the
   guaranteed-detection rate ``R_NFN = rho/(n+1)`` and the minimum rate
   gap shrinking as memory grows.
2. **Burst gap vs rate gap** (tradeoff 2, Equation 2): sweeping
   ``beta_h / beta_l`` shows the minimum rate gap exploding as the burst
   gap approaches its floor ``alpha/beta_l + 2`` and approaching 1 as it
   grows — including the paper's "rate gap 10 needs burst gap 2.53" point.
3. **Virtual-traffic unit size** (Section 3.3's optimization): smaller
   units mean more counter updates per idle byte; the study measures the
   actual update count over a real scenario, and asserts detection results
   are unchanged (unit size only trades work, not correctness, as long as
   units stay <= beta_TH).
4. **Counter-store implementation**: the optimized floating-ground heap
   vs the O(n) reference store — identical detections, different wall
   time.
5. **Incubation vs counter budget** (Section 4.4): extra counters lower
   the Theorem-7 bound; measurements sit under it at every budget.
6. **FMF conservative update**: Estan-Varghese's optimization trims the
   multistage filter's false positives without restoring exactness.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Sequence

from ..core import theory
from ..core.config import EARDetConfig, engineer
from ..core.counters import HeapCounterStore, ReferenceCounterStore
from ..core.eardet import EARDet
from ..traffic.attacks import FloodingAttack
from ..traffic.datasets import federico_like
from ..traffic.mix import build_attack_scenario
from .figure8 import ALPHA, BETA_L, GAMMA_L, RHO
from .report import ExperimentParams, SeriesSet, Table


def counters_vs_rate_gap(
    counter_counts: Sequence[int] = (50, 101, 200, 400, 800),
) -> SeriesSet:
    """Tradeoff 1: more counters -> lower guaranteed-detection rate."""
    rnfns = [float(theory.rnfn(RHO, n)) for n in counter_counts]
    gaps = [rnfn / GAMMA_L for rnfn in rnfns]
    series = SeriesSet(
        title="Ablation: counters vs guaranteed rate (tradeoff 1)",
        x_label="counters n",
        x_values=list(counter_counts),
    )
    series.add_series("R_NFN (B/s)", [round(r, 1) for r in rnfns])
    series.add_series("rate gap R_NFN/gamma_l", [round(g, 2) for g in gaps])
    series.add_note(f"rho = {RHO} B/s, gamma_l = {GAMMA_L} B/s")
    return series


def burst_gap_vs_rate_gap(
    burst_gaps: Sequence[float] = (2.6, 2.53 + 0.5, 4.0, 6.0, 10.0, 20.0),
) -> SeriesSet:
    """Tradeoff 2 (Equation 2): rate gap vs burst gap."""
    floor = theory.min_burst_gap(ALPHA, BETA_L)
    xs = [round(gap, 2) for gap in burst_gaps if gap > floor]
    rate_gaps = [
        round(theory.min_rate_gap_approx(ALPHA, BETA_L, gap * BETA_L), 3)
        for gap in xs
    ]
    series = SeriesSet(
        title="Ablation: burst gap vs minimum rate gap (Equation 2)",
        x_label="burst gap beta_h/beta_l",
        x_values=xs,
    )
    series.add_series("min rate gap (gamma_h/gamma_l)", rate_gaps)
    series.add_note(f"burst-gap floor alpha/beta_l + 2 = {floor:.3f}")
    series.add_note(
        f"paper: rate gap 10 needs burst gap 2.53 "
        f"(reproduced: {theory.min_rate_gap_approx(ALPHA, BETA_L, round(2.53 * BETA_L)):.2f})"
    )
    return series


class _CountingStore(HeapCounterStore):
    """Heap store that counts mutating operations, for the unit-size study."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self.operations = 0

    def insert(self, fid, value):  # noqa: D102 - counted passthrough
        self.operations += 1
        super().insert(fid, value)

    def increment(self, fid, amount):  # noqa: D102
        self.operations += 1
        return super().increment(fid, amount)

    def decrement_all(self, amount):  # noqa: D102
        self.operations += 1
        super().decrement_all(amount)


def virtual_unit_size(
    params: ExperimentParams = ExperimentParams(),
    unit_fractions: Sequence[float] = (0.05, 0.25, 0.5, 1.0),
) -> Table:
    """Section 3.3: virtual-unit size trades update work for nothing else."""
    dataset = federico_like(seed=params.seed, scale=params.scale)
    base = engineer(
        rho=dataset.rho,
        gamma_l=dataset.gamma_l,
        beta_l=dataset.beta_l,
        gamma_h=dataset.gamma_h,
        t_upincb_seconds=dataset.t_upincb_seconds,
    )
    scenario = build_attack_scenario(
        dataset.stream,
        FloodingAttack(rate=2 * dataset.gamma_h),
        attack_flows=params.attack_flows,
        rho=dataset.rho,
        seed=params.seed,
    )
    table = Table(
        title="Ablation: virtual-traffic unit size (Section 3.3)",
        headers=["unit (B)", "store ops", "detected flows", "seconds"],
    )
    baseline_detected = None
    for fraction in unit_fractions:
        unit = max(1, round(fraction * base.beta_th))
        config = EARDetConfig(
            rho=base.rho,
            n=base.n,
            beta_th=base.beta_th,
            alpha=base.alpha,
            beta_l=base.beta_l,
            gamma_l=base.gamma_l,
            virtual_unit=unit,
        )
        detector = EARDet(config, store_factory=_CountingStore)
        started = _time.perf_counter()
        detector.observe_stream(scenario.stream)
        elapsed = _time.perf_counter() - started
        detected = len(detector.detected)
        if baseline_detected is None:
            baseline_detected = detected
        table.add_row(
            unit, detector._store.operations, detected, round(elapsed, 3)
        )
    table.add_note(
        "maximum legal unit (beta_TH) minimizes updates; detection sets "
        "may differ only inside the ambiguity region"
    )
    return table


def store_implementations(
    params: ExperimentParams = ExperimentParams(),
) -> Table:
    """Optimized vs reference counter store: identical output."""
    dataset = federico_like(seed=params.seed, scale=params.scale)
    config = engineer(
        rho=dataset.rho,
        gamma_l=dataset.gamma_l,
        beta_l=dataset.beta_l,
        gamma_h=dataset.gamma_h,
        t_upincb_seconds=dataset.t_upincb_seconds,
    )
    scenario = build_attack_scenario(
        dataset.stream,
        FloodingAttack(rate=2 * dataset.gamma_h),
        attack_flows=params.attack_flows,
        rho=dataset.rho,
        seed=params.seed,
    )
    table = Table(
        title="Ablation: counter-store implementations",
        headers=["store", "detected flows", "seconds"],
    )
    detections: Dict[str, frozenset] = {}
    for name, factory in (
        ("heap + floating ground", HeapCounterStore),
        ("O(n) reference", ReferenceCounterStore),
    ):
        detector = EARDet(config, store_factory=factory)
        started = _time.perf_counter()
        detector.observe_stream(scenario.stream)
        elapsed = _time.perf_counter() - started
        detections[name] = frozenset(detector.detected)
        table.add_row(name, len(detector.detected), round(elapsed, 3))
    identical = len(set(detections.values())) == 1
    table.add_note(
        "detection sets identical"
        if identical
        else "DETECTION SETS DIFFER (bug!)"
    )
    return table


def run(params: ExperimentParams = ExperimentParams()) -> List:
    """All six ablation studies."""
    return [
        counters_vs_rate_gap(),
        burst_gap_vs_rate_gap(),
        virtual_unit_size(params),
        store_implementations(params),
        incubation_vs_counters(params),
        conservative_update(params),
    ]


if __name__ == "__main__":
    for item in run(ExperimentParams.quick()):
        print(item.render())
        print()


def incubation_vs_counters(
    params: ExperimentParams = ExperimentParams(),
    counter_counts: Sequence[int] = (107, 150, 250, 400),
) -> Table:
    """Section 4.4's remark, measured: adding counters beyond the minimum
    lowers the incubation bound — and the measured maximum with it."""
    from .harness import dataset_for, first_packet_times
    from ..analysis.runner import ExperimentRunner
    from ..model.thresholds import ThresholdFunction

    dataset = dataset_for(params)
    base = engineer(
        rho=dataset.rho,
        gamma_l=dataset.gamma_l,
        beta_l=dataset.beta_l,
        gamma_h=dataset.gamma_h,
        t_upincb_seconds=dataset.t_upincb_seconds,
    )
    rate = 2 * dataset.gamma_h
    scenario = build_attack_scenario(
        dataset.stream,
        FloodingAttack(rate=rate),
        attack_flows=params.attack_flows,
        rho=dataset.rho,
        seed=params.seed,
    )
    table = Table(
        title="Ablation: incubation period vs counter budget (Section 4.4)",
        headers=["n", "bound (s)", "max measured (s)", "avg measured (s)"],
    )
    for n in counter_counts:
        config = EARDetConfig(
            rho=base.rho,
            n=n,
            beta_th=base.beta_th,
            alpha=base.alpha,
            beta_l=base.beta_l,
            gamma_l=base.gamma_l,
        )
        high = ThresholdFunction(gamma=dataset.gamma_h, beta=config.beta_h)
        runner = ExperimentRunner(high, dataset.low_threshold)
        labels = runner.label(scenario.stream)
        starts = first_packet_times(scenario.stream, scenario.attack_fids)
        result = runner.run_one(
            "eardet", EARDet(config), scenario, labels,
            attack_start_times=starts,
        )
        bound = float(config.incubation_bound_seconds(rate))
        table.add_row(
            n,
            round(bound, 4),
            round(result.incubation.maximum or 0.0, 4),
            round(result.incubation.average or 0.0, 4),
        )
    table.add_note("flooding at 2x gamma_h; bound = (alpha+2 beta_TH)/(R_atk - rho/(n+1))")
    return table


def conservative_update(
    params: ExperimentParams = ExperimentParams(),
) -> Table:
    """Estan-Varghese's conservative-update optimization on FMF: fewer
    false accusations under attack, identical misses on bursts."""
    from .harness import FMF_WINDOW_NS, STAGES, SMALL_BUDGET, build_setup, dataset_for
    from ..analysis.runner import ExperimentRunner
    from ..detectors.fmf import FixedMultistageFilter

    dataset = dataset_for(params)
    setup = build_setup(dataset)
    scenario = build_attack_scenario(
        dataset.stream,
        FloodingAttack(rate=2 * dataset.gamma_h),
        attack_flows=params.attack_flows,
        rho=dataset.rho,
        congested=True,
        seed=params.seed,
    )
    runner = ExperimentRunner(setup.high, setup.low)
    for name, conservative in (("fmf-plain", False), ("fmf-conservative", True)):
        threshold = setup.fmf_threshold
        runner.register(
            name,
            lambda conservative=conservative, threshold=threshold: FixedMultistageFilter(
                stages=STAGES,
                buckets=SMALL_BUDGET,
                threshold=threshold,
                window_ns=FMF_WINDOW_NS,
                conservative_update=conservative,
            ),
        )
    results = runner.run_scenario(scenario)
    table = Table(
        title="Ablation: FMF conservative update (congested flooding)",
        headers=["variant", "attack detection", "benign FPs"],
    )
    for name, result in results.items():
        table.add_row(
            name,
            round(result.attack_detection.probability, 4),
            round(result.benign_fp.probability, 4),
        )
    table.add_note(
        "conservative update reduces counter inflation and hence FPs; it "
        "cannot restore exactness"
    )
    return table
