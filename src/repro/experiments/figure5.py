"""Figure 5: detection probability under flooding and Shrew attacks.

Panel (a): detection probability vs flooding-attack rate, for EARDet, FMF
and AMF on congested and non-congested links.  Panel (b): detection
probability vs Shrew burst duration (burst rate ``1.2 gamma_h``, 1 s
period).

Reproduced shape (paper Section 5.3):

- EARDet detects every flow above ``TH_h`` with probability 1.0 in every
  setting, and most ambiguity-region flows besides;
- FMF misses Shrew bursts whose per-interval volume stays under its
  fixed-window threshold;
- AMF tracks EARDet on detection (its leaky buckets see bursts) — its
  weakness is false positives (Figure 6), not misses.

Attack rates sweep multiples of ``gamma_h``; the paper's x-axis
(0.5-4.5 x 1e5 B/s on the Federico II trace with gamma_h = 2.5e5 B/s)
corresponds to fractions 0.2-1.8.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..model.units import NS_PER_S, milliseconds
from ..traffic.attacks import FloodingAttack, ShrewAttack
from ..traffic.mix import build_attack_scenario
from .harness import SMALL_BUDGET, build_setup, dataset_for
from .report import ExperimentParams, SeriesSet

#: Paper panel (a): attack rate as fractions of gamma_h.
DEFAULT_RATE_FRACTIONS = (0.2, 0.6, 1.0, 1.4, 1.8)

#: Paper panel (b): burst durations (ms) at 1.2 gamma_h burst rate.
DEFAULT_BURST_MS = (100, 250, 500, 750, 1000)

SCHEMES = ("eardet", "fmf", "amf")


def _sweep(
    params: ExperimentParams,
    attacks: Sequence,
    congested: bool,
    buckets: int,
) -> List[Dict[str, float]]:
    """Average detection probability per attack spec, over repetitions."""
    dataset = dataset_for(params)
    setup = build_setup(dataset)
    results: List[Dict[str, float]] = []
    for attack_index, attack in enumerate(attacks):
        sums = {scheme: 0.0 for scheme in SCHEMES}
        for rep in range(params.repetitions):
            scenario = build_attack_scenario(
                dataset.stream,
                attack,
                attack_flows=params.attack_flows,
                rho=dataset.rho,
                congested=congested,
                seed=params.seed * 7919 + attack_index * 131 + rep,
            )
            runner = setup.runner(buckets=buckets, seed=rep)
            run = runner.run_scenario(scenario)
            for scheme in SCHEMES:
                sums[scheme] += run[scheme].attack_detection.probability
        results.append(
            {scheme: total / params.repetitions for scheme, total in sums.items()}
        )
    return results


def flooding_panel(
    params: ExperimentParams = ExperimentParams(),
    rate_fractions: Sequence[float] = DEFAULT_RATE_FRACTIONS,
    buckets: int = SMALL_BUDGET,
) -> SeriesSet:
    """Panel (a): detection probability vs flooding rate."""
    dataset = dataset_for(params)
    rates = [round(fraction * dataset.gamma_h) for fraction in rate_fractions]
    attacks = [FloodingAttack(rate=rate) for rate in rates]
    series = SeriesSet(
        title=(
            f"Figure 5(a): detection probability under flooding "
            f"({buckets}*2 MF counters)"
        ),
        x_label="attack rate (B/s)",
        x_values=rates,
    )
    for congested in (False, True):
        label = "congested" if congested else "non-congested"
        sweep = _sweep(params, attacks, congested, buckets)
        for scheme in SCHEMES:
            series.add_series(
                f"{scheme} ({label})", [point[scheme] for point in sweep]
            )
    series.add_note(f"gamma_h = {dataset.gamma_h} B/s (detection guarantee above this)")
    series.add_note(f"gamma_l = {dataset.gamma_l} B/s (protection guarantee below this)")
    return series


def shrew_panel(
    params: ExperimentParams = ExperimentParams(),
    burst_ms: Sequence[int] = DEFAULT_BURST_MS,
    buckets: int = SMALL_BUDGET,
) -> SeriesSet:
    """Panel (b): detection probability vs Shrew burst duration."""
    dataset = dataset_for(params)
    setup = build_setup(dataset)
    attacks = [
        ShrewAttack(
            burst_rate=round(1.2 * dataset.gamma_h),
            burst_duration_ns=milliseconds(duration),
            period_ns=NS_PER_S,
        )
        for duration in burst_ms
    ]
    series = SeriesSet(
        title=(
            f"Figure 5(b): detection probability under Shrew bursts "
            f"({buckets}*2 MF counters)"
        ),
        x_label="burst duration (ms)",
        x_values=list(burst_ms),
    )
    for congested in (False, True):
        label = "congested" if congested else "non-congested"
        sweep = _sweep(params, attacks, congested, buckets)
        for scheme in SCHEMES:
            series.add_series(
                f"{scheme} ({label})", [point[scheme] for point in sweep]
            )
    # The paper's TH_h marker: the burst duration above which one burst
    # alone violates the high-bandwidth threshold.
    threshold_ms = [
        duration
        for duration, attack in zip(burst_ms, attacks)
        if attack.burst_bytes() > setup.high(milliseconds(duration))
    ]
    if threshold_ms:
        series.add_note(
            f"bursts are ground-truth large from ~{threshold_ms[0]}ms "
            "(the paper's TH_h line)"
        )
    return series


def run(params: ExperimentParams = ExperimentParams()) -> Tuple[SeriesSet, SeriesSet]:
    """Regenerate both Figure 5 panels."""
    return flooding_panel(params), shrew_panel(params)


if __name__ == "__main__":
    for panel in run():
        print(panel.render())
        print()
