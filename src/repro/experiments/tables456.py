"""Tables 4, 5 and 6: datasets, experiment parameters, filter parameters.

- **Table 4** reports the datasets' aggregate statistics; here it is
  computed from the synthetic stand-in traces, with the paper's original
  numbers alongside for comparison.
- **Table 5** lists the per-dataset experiment parameters; every derived
  value (``beta_TH``, ``n``, ``t_upincb``) comes out of the Appendix-A
  solver and must match the paper's row exactly (asserted by tests).
- **Table 6** lists the multistage-filter parameters derived from the
  same rows (``T = gamma_h * 1s``, ``u ~= beta_h``, ``r = gamma_h``).
"""

from __future__ import annotations

from typing import List, Tuple

from ..model.units import bytes_to_human, rate_to_human
from ..traffic.datasets import Dataset, caida_like, federico_like
from .harness import LARGE_BUDGET, SMALL_BUDGET, STAGES, build_setup
from .report import Table

#: Paper's Table 4 numbers, for side-by-side comparison.
PAPER_TABLE4 = {
    "federico-like": ("200Mbps", 1.85e6, 2911, 19_900),
    "caida-like": ("10Gbps", 279.65e6, 2_517_099, 3_300),
}

#: Paper's Table 5 derived values, asserted against the solver.
PAPER_TABLE5 = {
    "federico-like": {"beta_th": 6991, "n": 107, "t_upincb": 0.8370},
    "caida-like": {"beta_th": 6925, "n": 100, "t_upincb": 0.1242},
}


def default_datasets(scale: float = 0.1, seed: int = 0) -> List[Dataset]:
    """Both synthetic datasets at a common scale."""
    return [federico_like(seed=seed, scale=scale), caida_like(seed=seed, scale=scale / 10)]


def table4(datasets: List[Dataset]) -> Table:
    """Regenerate Table 4 from the synthetic traces."""
    table = Table(
        title="Table 4: dataset information (synthetic stand-ins vs paper)",
        headers=[
            "dataset",
            "link",
            "avg rate",
            "# flows",
            "avg flow",
            "paper rate",
            "paper flows",
            "paper avg flow",
        ],
    )
    for dataset in datasets:
        stats = dataset.stream.stats()
        link, rate, flows, avg_flow = PAPER_TABLE4[dataset.name]
        table.add_row(
            dataset.name,
            rate_to_human(dataset.rho),
            rate_to_human(stats.avg_rate_bps),
            stats.flow_count,
            bytes_to_human(stats.avg_flow_size),
            rate_to_human(rate),
            flows,
            bytes_to_human(avg_flow),
        )
    table.add_note(
        "synthetic traces match the paper's per-flow statistics; flow and "
        "packet counts scale with the run's `scale` parameter"
    )
    return table


def table5(datasets: List[Dataset]) -> Table:
    """Regenerate Table 5 via the Appendix-A solver."""
    table = Table(
        title="Table 5: experiment parameters",
        headers=[
            "dataset",
            "gamma_h",
            "beta_h",
            "gamma_l",
            "beta_l",
            "rho",
            "alpha",
            "beta_TH",
            "n",
            "t_upincb(s)",
            "paper beta_TH",
            "paper n",
        ],
    )
    for dataset in datasets:
        setup = build_setup(dataset)
        config = setup.config
        bound = float(config.incubation_bound_seconds(dataset.gamma_h))
        paper = PAPER_TABLE5[dataset.name]
        table.add_row(
            dataset.name,
            rate_to_human(dataset.gamma_h),
            bytes_to_human(config.beta_h),
            rate_to_human(dataset.gamma_l),
            f"{dataset.beta_l}B",
            rate_to_human(dataset.rho),
            f"{dataset.alpha}B",
            f"{config.beta_th}B",
            config.n,
            round(bound, 4),
            f"{paper['beta_th']}B",
            paper["n"],
        )
    return table


def table6(datasets: List[Dataset]) -> Table:
    """Regenerate Table 6 (multistage-filter parameters)."""
    table = Table(
        title="Table 6: multistage filter parameters",
        headers=["dataset", "b*d", "T", "u", "r"],
    )
    for dataset in datasets:
        setup = build_setup(dataset)
        budgets = f"{SMALL_BUDGET}*{STAGES}, {LARGE_BUDGET}*{STAGES}"
        table.add_row(
            dataset.name,
            budgets,
            bytes_to_human(setup.fmf_threshold),
            bytes_to_human(setup.amf_bucket_size),
            rate_to_human(setup.amf_drain_rate),
        )
    return table


def run(scale: float = 0.1, seed: int = 0) -> Tuple[Table, Table, Table]:
    """Regenerate Tables 4, 5 and 6."""
    datasets = default_datasets(scale=scale, seed=seed)
    return table4(datasets), table5(datasets), table6(datasets)


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
