"""Appendix A's worked configuration example, end to end.

The paper's administrator wants: ``gamma_l = 100 KB/s``,
``gamma_h = 1 MB/s``, ``rho = 100 MB/s``, ``alpha = 1518 B``,
``beta_l = 6072 B``, ``t_upincb = 1 s``, and Equation (10) yields
``n = 101``, ``beta_delta = 863 B``, an incubation period of 0.7848 s, a
no-FPs rate just above ``gamma_l``, and a rate gap
``(rho/(n+1)) / gamma_l = 9.80``.

This experiment regenerates every number in that paragraph from the
solver and the theory module (the paper quotes the no-FPs rate as
100450 B/s where the closed form gives 100445.8 B/s — a rounding artifact
in the paper; both exceed gamma_l as required).
"""

from __future__ import annotations

from ..core import theory
from ..core.config import engineer
from .figure8 import ALPHA, BETA_L, GAMMA_H, GAMMA_L, RHO, T_UPINCB
from .report import Table

#: The paper's quoted results for the worked example.
PAPER_N = 101
PAPER_BETA_DELTA = 863
PAPER_INCUBATION = 0.7848
PAPER_RATE_GAP = 9.80
PAPER_MIN_COUNTERS = 99


def run() -> Table:
    """Regenerate the Appendix-A worked example."""
    config = engineer(
        rho=RHO,
        gamma_l=GAMMA_L,
        beta_l=BETA_L,
        gamma_h=GAMMA_H,
        t_upincb_seconds=T_UPINCB,
        alpha=ALPHA,
    )
    incubation = float(config.incubation_bound_seconds(GAMMA_H))
    rate_gap = float(config.rnfn) / GAMMA_L
    minimum_counters = theory.min_counters_for_rate(RHO, GAMMA_H) - 0  # n > rho/gamma_h - 1
    table = Table(
        title="Appendix A: worked configuration example",
        headers=["quantity", "reproduced", "paper"],
    )
    table.add_row("n", config.n, PAPER_N)
    table.add_row("beta_delta (B)", config.beta_delta, PAPER_BETA_DELTA)
    table.add_row("beta_TH (B)", config.beta_th, BETA_L + PAPER_BETA_DELTA)
    table.add_row("incubation bound (s)", round(incubation, 4), PAPER_INCUBATION)
    table.add_row("no-FPs rate (B/s)", round(float(config.rnfp), 1), 100450)
    table.add_row("rate gap R_NFN/gamma_l", round(rate_gap, 2), PAPER_RATE_GAP)
    table.add_row(
        "minimum counters rho/gamma_h - 1",
        RHO // GAMMA_H - 1,
        PAPER_MIN_COUNTERS,
    )
    table.add_row("smallest detecting n", minimum_counters, PAPER_MIN_COUNTERS + 1)
    table.add_note(
        "paper's 100450 B/s no-FPs rate is a rounding artifact; the closed "
        "form (Theorem 6) gives 100445.8 B/s, still above gamma_l"
    )
    return table


if __name__ == "__main__":
    print(run().render())
