"""Window-model comparison at trace scale: the Figure 1 story, measured.

Figure 1 is a five-packet schematic; this experiment replays its claim
on a realistic trace with real algorithms from all three window-model
families (Section 2.1), at matched state budgets:

- landmark:   Misra-Gries detector (counter > beta_TH flags),
- sliding:    block-based sliding-window MG (1 s window),
- arbitrary:  EARDet,

against one-shot Shrew bursts — large over their own window, invisible
to per-interval and total-volume accounting.  The series reports each
family's detection probability by burst duration plus its benign-flow
false accusations, so the window model's effect is isolated from the
counting machinery (all three are MG-family algorithms).
"""

from __future__ import annotations

from typing import Sequence

from ..core.eardet import EARDet
from ..detectors.misra_gries import LandmarkMisraGriesDetector
from ..detectors.sliding_window import SlidingWindowDetector
from ..model.units import NS_PER_S, milliseconds
from ..traffic.attacks import ShrewAttack
from ..traffic.mix import build_attack_scenario
from .harness import build_setup, dataset_for
from .report import ExperimentParams, SeriesSet

DEFAULT_BURST_MS = (100, 300, 600, 900)

#: Sliding window length matching FMF's measurement interval (1 s).
WINDOW_NS = NS_PER_S


def run(
    params: ExperimentParams = ExperimentParams(),
    burst_ms: Sequence[int] = DEFAULT_BURST_MS,
) -> SeriesSet:
    """Detection probability of one-shot bursts per window model."""
    dataset = dataset_for(params)
    setup = build_setup(dataset)
    config = setup.config

    def landmark_factory():
        return LandmarkMisraGriesDetector(
            counters=config.n, beta_report=config.beta_th
        )

    def sliding_factory():
        # Same total counter budget as EARDet, split across 4 blocks.
        return SlidingWindowDetector(
            window_ns=WINDOW_NS,
            blocks=4,
            counters=max(1, config.n // 4),
            beta_report=setup.fmf_threshold,
        )

    factories = {
        "landmark-mg": landmark_factory,
        "sliding-mg (1s)": sliding_factory,
        "eardet (arbitrary)": lambda: EARDet(config),
    }
    probabilities = {name: [] for name in factories}
    fps = {name: [] for name in factories}
    for attack_index, duration in enumerate(burst_ms):
        attack = ShrewAttack(
            burst_rate=round(1.5 * dataset.gamma_h),
            burst_duration_ns=milliseconds(duration),
            # One-shot: period exceeds any trace we generate.
            period_ns=3600 * NS_PER_S,
        )
        sums = {name: 0.0 for name in factories}
        fp_sums = {name: 0.0 for name in factories}
        for rep in range(params.repetitions):
            scenario = build_attack_scenario(
                dataset.stream,
                attack,
                attack_flows=params.attack_flows,
                rho=dataset.rho,
                seed=params.seed * 7 + attack_index * 131 + rep,
            )
            runner_ = _runner(setup, factories)
            results = runner_.run_scenario(scenario)
            for name in factories:
                sums[name] += results[name].attack_detection.probability
                fp_sums[name] += results[name].benign_fp.probability
        for name in factories:
            probabilities[name].append(round(sums[name] / params.repetitions, 4))
            fps[name].append(round(fp_sums[name] / params.repetitions, 4))
    series = SeriesSet(
        title="Window models vs one-shot bursts (matched MG-family state)",
        x_label="burst duration (ms)",
        x_values=list(burst_ms),
    )
    for name in factories:
        series.add_series(f"{name} detect", probabilities[name])
    for name in factories:
        series.add_series(f"{name} FPs", fps[name])
    series.add_note(
        "one-shot bursts: a single burst per flow, nothing periodic for a "
        "fixed window to accumulate"
    )
    return series


def _runner(setup, factories):
    from ..analysis.runner import ExperimentRunner

    runner = ExperimentRunner(setup.high, setup.low)
    for name, factory in factories.items():
        runner.register(name, factory)
    return runner


if __name__ == "__main__":
    print(run(ExperimentParams.quick()).render())
