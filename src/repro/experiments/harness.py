"""Shared experiment plumbing for the Section 5 reproductions.

Builds, from a dataset's Table-5 row, everything the figures need: the
engineered EARDet config, the high/low threshold functions, the FMF/AMF
parameterizations of Table 6 at either counter budget (55x2 or 250x2),
and detector factories keyed by the names used in the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable

from ..analysis.runner import ExperimentRunner
from ..core.config import EARDetConfig, engineer
from ..core.eardet import EARDet
from ..detectors.amf import ArbitraryMultistageFilter
from ..detectors.base import Detector
from ..detectors.fmf import FixedMultistageFilter
from ..model.packet import FlowId
from ..model.stream import PacketStream
from ..model.thresholds import ThresholdFunction
from ..model.units import NS_PER_S
from ..traffic.datasets import Dataset, caida_like, federico_like

#: Multistage-filter counter budgets the paper evaluates (Figure 5/6).
SMALL_BUDGET = 55
LARGE_BUDGET = 250
STAGES = 2

#: FMF's measurement interval (Table 6: 1 second).
FMF_WINDOW_NS = NS_PER_S


@dataclass(frozen=True)
class ExperimentSetup:
    """Dataset-derived parameters and detector factories for one figure."""

    dataset: Dataset
    config: EARDetConfig
    high: ThresholdFunction
    low: ThresholdFunction
    fmf_threshold: int
    amf_bucket_size: int
    amf_drain_rate: int

    def eardet_factory(self) -> Callable[[], Detector]:
        config = self.config
        return lambda: EARDet(config)

    def fmf_factory(self, buckets: int, seed: int = 0) -> Callable[[], Detector]:
        threshold = self.fmf_threshold
        return lambda: FixedMultistageFilter(
            stages=STAGES,
            buckets=buckets,
            threshold=threshold,
            window_ns=FMF_WINDOW_NS,
            seed=seed,
        )

    def amf_factory(self, buckets: int, seed: int = 0) -> Callable[[], Detector]:
        bucket_size, drain = self.amf_bucket_size, self.amf_drain_rate
        return lambda: ArbitraryMultistageFilter(
            stages=STAGES,
            buckets=buckets,
            bucket_size=bucket_size,
            drain_rate=drain,
            seed=seed,
        )

    def runner(self, buckets: int = SMALL_BUDGET, seed: int = 0) -> ExperimentRunner:
        """A runner with the figure's three detectors registered."""
        runner = ExperimentRunner(self.high, self.low)
        runner.register("eardet", self.eardet_factory())
        runner.register("fmf", self.fmf_factory(buckets, seed))
        runner.register("amf", self.amf_factory(buckets, seed))
        return runner


def build_setup(dataset: Dataset) -> ExperimentSetup:
    """Derive the full experiment setup from a dataset's Table-5 row.

    Follows Section 5.2's configuration: EARDet engineered for the
    dataset's ``gamma_h``/``gamma_l``/``beta_l``/``t_upincb``; detection
    threshold ``TH_h(t) = gamma_h t + beta_h`` with
    ``beta_h = 2 beta_TH + alpha``; FMF threshold ``T = gamma_h * 1s``;
    AMF bucket ``u = beta_h`` draining at ``r = gamma_h``.
    """
    config = engineer(
        rho=dataset.rho,
        gamma_l=dataset.gamma_l,
        beta_l=dataset.beta_l,
        gamma_h=dataset.gamma_h,
        t_upincb_seconds=dataset.t_upincb_seconds,
        alpha=dataset.alpha,
    )
    high = ThresholdFunction(gamma=dataset.gamma_h, beta=config.beta_h)
    return ExperimentSetup(
        dataset=dataset,
        config=config,
        high=high,
        low=dataset.low_threshold,
        fmf_threshold=dataset.gamma_h * (FMF_WINDOW_NS // NS_PER_S or 1),
        amf_bucket_size=config.beta_h,
        amf_drain_rate=dataset.gamma_h,
    )


def dataset_for(params) -> Dataset:
    """Build the dataset an :class:`~repro.experiments.report.ExperimentParams`
    selects.  ``federico`` uses ``params.scale`` directly; ``caida`` divides
    it by 10 (the CAIDA trace is ~100x denser, see
    :func:`repro.traffic.datasets.caida_like`)."""
    if params.dataset == "federico":
        return federico_like(seed=params.seed, scale=params.scale)
    if params.dataset == "caida":
        return caida_like(seed=params.seed, scale=params.scale / 10)
    raise ValueError(
        f"unknown dataset {params.dataset!r}; expected 'federico' or 'caida'"
    )


def first_packet_times(
    stream: PacketStream, fids: Iterable[FlowId]
) -> Dict[FlowId, int]:
    """First-arrival time per flow, the incubation-period anchor ("since
    the flow is generated")."""
    wanted = set(fids)
    times: Dict[FlowId, int] = {}
    for packet in stream:
        if packet.fid in wanted and packet.fid not in times:
            times[packet.fid] = packet.time
            if len(times) == len(wanted):
                break
    return times
