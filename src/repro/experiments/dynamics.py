"""State-dynamics experiment: EARDet's internals over an attack timeline.

Not a paper figure — an operational extension: sample counter occupancy,
blacklist size, cumulative detections and virtual-traffic volume while a
flooding + Shrew mix plays out, and verify the boundedness story the
paper tells analytically (counters <= n, blacklist <= n, counter values
<= beta_TH + alpha) holds at every instant of a realistic run.
"""

from __future__ import annotations

from ..analysis.dynamics import StateProbe
from ..core.eardet import EARDet
from ..model.units import NS_PER_S, milliseconds
from ..traffic.attacks import ShrewAttack
from ..traffic.mix import build_attack_scenario
from .harness import build_setup, dataset_for
from .report import ExperimentParams, SeriesSet


def run(
    params: ExperimentParams = ExperimentParams(),
    samples_per_run: int = 12,
) -> SeriesSet:
    """Sample EARDet's state through a mixed-attack scenario."""
    dataset = dataset_for(params)
    setup = build_setup(dataset)
    attack = ShrewAttack(
        burst_rate=round(1.5 * dataset.gamma_h),
        burst_duration_ns=milliseconds(500),
        period_ns=NS_PER_S,
    )
    scenario = build_attack_scenario(
        dataset.stream,
        attack,
        attack_flows=params.attack_flows,
        rho=dataset.rho,
        seed=params.seed,
    )
    duration = max(scenario.stream.end_time, 1)
    period = max(1, duration // samples_per_run)
    probe = StateProbe(EARDet(setup.config), period_ns=period)
    trace = probe.observe_stream(scenario.stream)
    series = SeriesSet(
        title="EARDet state dynamics under a Shrew attack",
        x_label="time (s)",
        x_values=[round(sample.time_seconds, 3) for sample in trace.samples],
    )
    series.add_series("occupied counters", trace.series("occupied_counters"))
    series.add_series("blacklist size", trace.series("blacklist_size"))
    series.add_series("detections", trace.series("detections"))
    series.add_series("max counter (B)", trace.series("max_counter"))
    series.add_note(
        f"bounds: counters <= n = {setup.config.n}, blacklist <= n, "
        f"counter values <= beta_TH + alpha = "
        f"{setup.config.beta_th + setup.config.alpha}B"
    )
    series.add_note(
        f"peak occupancy {trace.peak_occupancy}/{setup.config.n}, "
        f"peak blacklist {trace.peak_blacklist}"
    )
    return series


if __name__ == "__main__":
    print(run(ExperimentParams.quick()).render())
