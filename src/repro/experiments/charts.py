"""ASCII line charts for :class:`~repro.experiments.report.SeriesSet`.

The paper's figures are line plots; in a terminal-only environment the
tables are exact but the *shape* — crossovers, plateaus, gaps between
schemes — is easier to see drawn.  :func:`render_chart` draws a series
set on a character grid with one marker per scheme, a y-axis, and a
legend; the CLI exposes it via ``--chart``.

No dependencies, no color; pure text columns so output diffs cleanly.
"""

from __future__ import annotations

from typing import List, Optional

from .report import SeriesSet

#: Marker characters assigned to series in order.
MARKERS = "ox+*#@%&"


def _numeric(values) -> List[Optional[float]]:
    result = []
    for value in values:
        try:
            result.append(float(value))
        except (TypeError, ValueError):
            result.append(None)
    return result


def render_chart(series: SeriesSet, width: int = 64, height: int = 16) -> str:
    """Draw the series set as an ASCII chart (returns a multi-line str).

    x positions come from the x-values when they are numeric (preserving
    their spacing), otherwise from their indices.  Non-numeric or missing
    y-values are skipped.  When every y is identical the single level is
    drawn mid-chart.
    """
    if width < 16 or height < 4:
        raise ValueError(f"chart needs width >= 16 and height >= 4, got {width}x{height}")
    xs = _numeric(series.x_values)
    if any(x is None for x in xs) or len(xs) < 2:
        xs = [float(i) for i in range(len(series.x_values))]
    x_low, x_high = min(xs), max(xs)
    x_span = x_high - x_low or 1.0

    y_values = [
        y
        for values in series.series.values()
        for y in _numeric(values)
        if y is not None
    ]
    if not y_values:
        raise ValueError(f"series set {series.title!r} has no numeric data")
    y_low, y_high = min(y_values), max(y_values)
    if y_low == y_high:
        y_low -= 0.5
        y_high += 0.5
    y_span = y_high - y_low

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, values) in enumerate(series.series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in zip(xs, _numeric(values)):
            if y is None:
                continue
            column = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((y - y_low) / y_span * (height - 1))
            grid[row][column] = marker

    label_width = max(len(_axis_label(y_high)), len(_axis_label(y_low)))
    lines = [f"== {series.title} =="]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = _axis_label(y_high)
        elif row_index == height - 1:
            label = _axis_label(y_low)
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    lines.append(
        f"{' ' * label_width} +{'-' * width}"
    )
    left = _axis_label(x_low)
    right = _axis_label(x_high)
    padding = width - len(left) - len(right)
    lines.append(
        f"{' ' * label_width}  {left}{' ' * max(1, padding)}{right}"
        f"  ({series.x_label})"
    )
    lines.append(f"{' ' * label_width}  {'   '.join(legend)}")
    for note in series.notes:
        lines.append(f"{' ' * label_width}  note: {note}")
    return "\n".join(lines)


def _axis_label(value: float) -> str:
    if value == int(value) and abs(value) < 10**7:
        return str(int(value))
    return f"{value:.3g}"
