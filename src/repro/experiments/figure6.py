"""Figure 6: false positives on small benign flows, eight panels.

Panels (a)-(h) sweep {flooding, Shrew} x {55x2, 250x2 multistage
counters} x {congested, non-congested}: the probability that a benign
ground-truth-small flow is wrongly reported while the link carries attack
flows.

Reproduced shape (paper Section 5.3):

- EARDet's FPs probability is identically 0 in every panel (Theorem 6);
- FMF and AMF have non-zero FPs that grow with attack pressure and are
  worst on a congested link with the small counter budget (paper: up to
  ~4% for FMF, ~1% for AMF under flooding);
- quadrupling the multistage budget (250x2) reduces but does not
  eliminate the FPs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..model.units import NS_PER_S, milliseconds
from ..traffic.attacks import FloodingAttack, ShrewAttack
from ..traffic.mix import build_attack_scenario
from .figure5 import DEFAULT_BURST_MS, DEFAULT_RATE_FRACTIONS, SCHEMES
from .harness import LARGE_BUDGET, SMALL_BUDGET, build_setup, dataset_for
from .report import ExperimentParams, SeriesSet


def _fp_sweep(
    params: ExperimentParams,
    attacks: Sequence,
    congested: bool,
    buckets: int,
) -> List[Dict[str, float]]:
    """Average benign-small-flow FP probability per attack spec."""
    dataset = dataset_for(params)
    setup = build_setup(dataset)
    results: List[Dict[str, float]] = []
    for attack_index, attack in enumerate(attacks):
        sums = {scheme: 0.0 for scheme in SCHEMES}
        for rep in range(params.repetitions):
            scenario = build_attack_scenario(
                dataset.stream,
                attack,
                attack_flows=params.attack_flows,
                rho=dataset.rho,
                congested=congested,
                seed=params.seed * 104729 + attack_index * 131 + rep,
            )
            runner = setup.runner(buckets=buckets, seed=rep)
            run = runner.run_scenario(scenario)
            for scheme in SCHEMES:
                sums[scheme] += run[scheme].benign_fp.probability
        results.append(
            {scheme: total / params.repetitions for scheme, total in sums.items()}
        )
    return results


def flooding_fp_panel(
    params: ExperimentParams,
    buckets: int,
    congested: bool,
    rate_fractions: Sequence[float] = DEFAULT_RATE_FRACTIONS,
) -> SeriesSet:
    """One flooding FP panel (paper panels a/c/e/g)."""
    dataset = dataset_for(params)
    rates = [round(fraction * dataset.gamma_h) for fraction in rate_fractions]
    attacks = [FloodingAttack(rate=rate) for rate in rates]
    label = "congested" if congested else "non-congested"
    series = SeriesSet(
        title=(
            f"Figure 6: small-flow FPs under flooding "
            f"({buckets}*2 counters, {label} link)"
        ),
        x_label="attack rate (B/s)",
        x_values=rates,
    )
    sweep = _fp_sweep(params, attacks, congested, buckets)
    for scheme in SCHEMES:
        series.add_series(scheme, [point[scheme] for point in sweep])
    return series


def shrew_fp_panel(
    params: ExperimentParams,
    buckets: int,
    congested: bool,
    burst_ms: Sequence[int] = DEFAULT_BURST_MS,
) -> SeriesSet:
    """One Shrew FP panel (paper panels b/d/f/h)."""
    dataset = dataset_for(params)
    attacks = [
        ShrewAttack(
            burst_rate=round(1.2 * dataset.gamma_h),
            burst_duration_ns=milliseconds(duration),
            period_ns=NS_PER_S,
        )
        for duration in burst_ms
    ]
    label = "congested" if congested else "non-congested"
    series = SeriesSet(
        title=(
            f"Figure 6: small-flow FPs under Shrew bursts "
            f"({buckets}*2 counters, {label} link)"
        ),
        x_label="burst duration (ms)",
        x_values=list(burst_ms),
    )
    sweep = _fp_sweep(params, attacks, congested, buckets)
    for scheme in SCHEMES:
        series.add_series(scheme, [point[scheme] for point in sweep])
    return series


def run(
    params: ExperimentParams = ExperimentParams(),
    budgets: Sequence[int] = (SMALL_BUDGET, LARGE_BUDGET),
) -> List[SeriesSet]:
    """Regenerate all eight panels (a)-(h)."""
    panels: List[SeriesSet] = []
    for buckets in budgets:
        for congested in (True, False):
            panels.append(flooding_fp_panel(params, buckets, congested))
            panels.append(shrew_fp_panel(params, buckets, congested))
    return panels


if __name__ == "__main__":
    for panel in run(ExperimentParams.quick()):
        print(panel.render())
        print()
