"""Table 3: qualitative summary of the three schemes — measured, not asserted.

The paper's Table 3 summarizes the comparison (FPs? FNl? memory? input
dependence?).  Rather than restating it, this experiment *derives* each
cell from measurements: a flooding and a Shrew scenario (congested and
not) are run through all three detectors, and each scheme's cells are
filled from what actually happened — e.g. "FPs: yes" appears for FMF/AMF
because benign small flows were measurably accused, and "input
dependent: yes" because their error rates moved between the congested and
non-congested runs while EARDet's stayed identically zero.
"""

from __future__ import annotations

from typing import Dict, List

from ..model.units import NS_PER_S, milliseconds
from ..traffic.attacks import FloodingAttack, ShrewAttack
from ..traffic.mix import build_attack_scenario
from ..analysis.memory import amf_state_bytes, eardet_state_bytes, multistage_state_bytes
from .harness import SMALL_BUDGET, STAGES, build_setup, dataset_for
from .report import ExperimentParams, Table


def run(params: ExperimentParams = ExperimentParams()) -> Table:
    """Regenerate Table 3 from measurements."""
    dataset = dataset_for(params)
    setup = build_setup(dataset)
    attacks = [
        FloodingAttack(rate=2 * dataset.gamma_h),
        ShrewAttack(
            burst_rate=round(1.2 * dataset.gamma_h),
            burst_duration_ns=milliseconds(500),
            period_ns=NS_PER_S,
        ),
    ]
    fp_seen: Dict[str, List[float]] = {s: [] for s in ("eardet", "fmf", "amf")}
    fnl_seen: Dict[str, List[int]] = {s: [] for s in ("eardet", "fmf", "amf")}
    for attack_index, attack in enumerate(attacks):
        for congested in (False, True):
            scenario = build_attack_scenario(
                dataset.stream,
                attack,
                attack_flows=params.attack_flows,
                rho=dataset.rho,
                congested=congested,
                seed=params.seed * 31 + attack_index,
            )
            results = setup.runner(buckets=SMALL_BUDGET).run_scenario(scenario)
            for name, result in results.items():
                fp_seen[name].append(result.benign_fp.probability)
                fnl_seen[name].append(result.classification.fn_large)
    # Memory at *comparable accuracy* (Table 2's budgets): EARDet's n
    # counters give exactness; the multistage filters need ~10-20x the
    # counters to bound FPs at 0.04, and still are not exact.
    memory = {
        "eardet": eardet_state_bytes(setup.config.n),
        "fmf": multistage_state_bytes(STAGES, 500),
        "amf": amf_state_bytes(STAGES, 1000),
    }
    table = Table(
        title="Table 3: summary of the three schemes (cells derived from runs)",
        headers=["scheme", "FPs", "FNl", "memory", "input traffic"],
    )
    for scheme in ("eardet", "fmf", "amf"):
        has_fp = any(value > 0 for value in fp_seen[scheme])
        has_fnl = any(value > 0 for value in fnl_seen[scheme])
        spread = max(fp_seen[scheme]) - min(fp_seen[scheme])
        table.add_row(
            scheme,
            "yes" if has_fp else "no",
            "yes" if has_fnl else "no",
            f"{memory[scheme]}B",
            "dependent" if (has_fp and spread > 0) else "independent",
        )
    table.add_note(
        "paper's Table 3: EARDet no/no/low/independent; "
        "FMF yes/yes/high/dependent; AMF yes/no/high/dependent"
    )
    return table


if __name__ == "__main__":
    print(run(ExperimentParams.quick()).render())
