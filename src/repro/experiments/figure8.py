"""Figure 8: the (n, beta_delta) solution space of Appendix A.

Plots (as a series over ``n``) the lower-bound curve
``beta_delta_min = gamma_l (alpha + beta_l) / (rho/(n+1) - gamma_l)`` and
the upper-bound curve from the incubation budget, using the paper's
caption parameters: ``gamma_l = 100 KB/s``, ``gamma_h = 1 MB/s``,
``rho = 100 MB/s``, ``alpha = 1518 B``, ``beta_l = 6072 B``,
``t_upincb = 1 s``.  Any (n, beta_delta) between the curves satisfies the
design inequalities; the paper (and :func:`repro.core.config.engineer`)
picks the minimal corner.
"""

from __future__ import annotations

from typing import Sequence

from ..core.config import beta_delta_bounds, engineer, feasible_counter_range
from .report import SeriesSet

#: Figure 8's caption parameters.
RHO = 100_000_000
GAMMA_L = 100_000
GAMMA_H = 1_000_000
ALPHA = 1518
BETA_L = 6072
T_UPINCB = 1.0

DEFAULT_POINTS = (100, 150, 200, 300, 400, 500, 600, 700, 800, 900, 983)


def run(points: Sequence[int] = DEFAULT_POINTS) -> SeriesSet:
    """Regenerate Figure 8's two curves."""
    n_min, n_max = feasible_counter_range(
        rho=RHO,
        gamma_l=GAMMA_L,
        beta_l=BETA_L,
        gamma_h=GAMMA_H,
        t_upincb_seconds=T_UPINCB,
        alpha=ALPHA,
    )
    xs = [n for n in points if n_min <= n <= n_max]
    lowers, uppers = [], []
    for n in xs:
        lower, upper = beta_delta_bounds(
            n,
            rho=RHO,
            gamma_l=GAMMA_L,
            beta_l=BETA_L,
            gamma_h=GAMMA_H,
            t_upincb_seconds=T_UPINCB,
            alpha=ALPHA,
        )
        lowers.append(round(lower, 1))
        uppers.append(round(upper, 1))
    series = SeriesSet(
        title="Figure 8: beta_delta-n solution space",
        x_label="number of counters (n)",
        x_values=xs,
    )
    series.add_series("beta_delta lower bound (B)", lowers)
    series.add_series("beta_delta upper bound (B)", uppers)
    chosen = engineer(
        rho=RHO,
        gamma_l=GAMMA_L,
        beta_l=BETA_L,
        gamma_h=GAMMA_H,
        t_upincb_seconds=T_UPINCB,
        alpha=ALPHA,
    )
    series.add_note(f"feasible n range: [{n_min}, {n_max}] (Eq. 9)")
    series.add_note(
        f"engineer() picks the minimal corner: n={chosen.n}, "
        f"beta_delta={chosen.beta_delta}B (paper: n=101, beta_delta=863B)"
    )
    return series


if __name__ == "__main__":
    print(run().render())
