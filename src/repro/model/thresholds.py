"""Leaky-bucket threshold functions and the exact leaky-bucket machine.

The paper defines flows against two *threshold functions* of window length
``t`` (Section 2.2):

- high-bandwidth threshold  ``TH_h(t) = gamma_h * t + beta_h``
- low-bandwidth threshold   ``TH_l(t) = gamma_l * t + beta_l``

A flow is **large** if some window's volume strictly exceeds ``TH_h``,
**small** if every window's volume stays strictly below ``TH_l``, and
**medium** (in the *ambiguity region*) otherwise.

Checking "exists a window [t1, t2) with vol > gamma*(t2-t1) + beta" over all
windows is equivalent to running a leaky bucket with drain rate ``gamma``
and asking whether the peak bucket level exceeds ``beta``; see
:class:`LeakyBucket` and the property tests in
``tests/test_thresholds.py`` which verify the equivalence against
brute-force window enumeration.

All arithmetic is exact: rates are integer bytes/s, times integer ns, and
bucket levels are integers in byte-nanosecond scaled units.
"""

from __future__ import annotations

from dataclasses import dataclass

from .units import NS_PER_S


@dataclass(frozen=True)
class ThresholdFunction:
    """A leaky-bucket descriptor ``TH(t) = gamma * t + beta``.

    ``gamma`` is in bytes/second; ``beta`` in bytes.  ``t`` is a window
    length in nanoseconds.  :meth:`scaled` returns the threshold in
    byte-nanosecond units so comparisons against scaled volumes are exact.
    """

    gamma: int
    beta: int

    def __post_init__(self) -> None:
        if self.gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {self.gamma}")
        if self.beta < 0:
            raise ValueError(f"beta must be >= 0, got {self.beta}")

    def __call__(self, t_ns: int) -> float:
        """Threshold volume in (possibly fractional) bytes for a window of
        length ``t_ns`` — for display; use :meth:`scaled` for comparisons."""
        return self.gamma * t_ns / NS_PER_S + self.beta

    def scaled(self, t_ns: int) -> int:
        """Threshold volume in byte-ns units: ``gamma*t_ns + beta*NS_PER_S``."""
        return self.gamma * t_ns + self.beta * NS_PER_S

    def exceeded_by(self, volume_bytes: int, t_ns: int) -> bool:
        """True iff ``volume_bytes`` strictly exceeds the threshold for a
        window of length ``t_ns`` (exact integer comparison)."""
        return volume_bytes * NS_PER_S > self.scaled(t_ns)

    def describe(self) -> str:
        """Human-readable form, e.g. ``TH(t) = 250000 B/s * t + 15500 B``."""
        return f"TH(t) = {self.gamma} B/s * t + {self.beta} B"


class LeakyBucket:
    """An exact leaky bucket with drain rate ``gamma`` (bytes/s).

    The bucket level after processing packets ``(t_i, w_i)`` equals the
    maximum over all windows ending now of ``vol - gamma * window_length``
    (clamped at zero).  Hence *"some window violates TH(t)=gamma*t+beta"*
    is exactly *"the peak level observed at packet arrivals exceeds beta"*.

    Levels are tracked in byte-ns scaled units (`level_scaled`).
    """

    __slots__ = ("gamma", "level_scaled", "peak_scaled", "last_time")

    def __init__(self, gamma: int):
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        self.gamma = gamma
        self.level_scaled = 0
        self.peak_scaled = 0
        self.last_time = 0

    def add(self, time_ns: int, size_bytes: int) -> int:
        """Drain to ``time_ns``, add a packet, and return the new level
        (scaled byte-ns units).  Packets must arrive in time order."""
        if time_ns < self.last_time:
            raise ValueError(
                f"leaky bucket fed out of order: {time_ns} < {self.last_time}"
            )
        drained = self.gamma * (time_ns - self.last_time)
        self.level_scaled = max(0, self.level_scaled - drained)
        self.level_scaled += size_bytes * NS_PER_S
        self.last_time = time_ns
        if self.level_scaled > self.peak_scaled:
            self.peak_scaled = self.level_scaled
        return self.level_scaled

    def level_at(self, time_ns: int) -> int:
        """Level (scaled) the bucket would have at ``time_ns`` with no new
        arrivals; does not mutate state."""
        if time_ns < self.last_time:
            raise ValueError(
                f"cannot query the past: {time_ns} < {self.last_time}"
            )
        drained = self.gamma * (time_ns - self.last_time)
        return max(0, self.level_scaled - drained)

    @property
    def peak_bytes(self) -> float:
        """Peak level in (possibly fractional) bytes, for reporting."""
        return self.peak_scaled / NS_PER_S

    def exceeds(self, beta_bytes: int) -> bool:
        """True iff the current level strictly exceeds ``beta_bytes``."""
        return self.level_scaled > beta_bytes * NS_PER_S

    def peak_exceeds(self, beta_bytes: int) -> bool:
        """True iff the peak level ever strictly exceeded ``beta_bytes``."""
        return self.peak_scaled > beta_bytes * NS_PER_S

    def reset(self) -> None:
        """Empty the bucket and forget the peak (keeps ``last_time``)."""
        self.level_scaled = 0
        self.peak_scaled = 0


def max_window_excess_scaled(packets, gamma: int) -> int:
    """Brute-force ``max over windows [t1, t2)`` of
    ``vol*NS - gamma*(t2-t1)`` in scaled units (>= 0; 0 for no packets).

    O(k^2) reference used by tests to validate :class:`LeakyBucket`;
    windows need only be checked at packet-arrival boundaries: the optimal
    window starts at some packet's arrival and ends just after another's.
    """
    packets = list(packets)
    best = 0
    for i, first in enumerate(packets):
        volume = 0
        for second in packets[i:]:
            volume += second.size
            # Window [first.time, second.time + epsilon): length -> the
            # infimum second.time - first.time gives the supremum excess.
            excess = volume * NS_PER_S - gamma * (second.time - first.time)
            if excess > best:
                best = excess
    return best
