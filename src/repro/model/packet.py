"""Packet and flow-identifier primitives.

The paper (Section 2.1) deliberately makes no assumption about how flow IDs
are derived from packet headers; any hashable value works as a flow ID in
this library.  For realistic scenarios :class:`FiveTuple` models the common
(src, dst, sport, dport, proto) definition, and the evaluation section's
"flows defined by source and destination IP" corresponds to
:meth:`FiveTuple.host_pair`.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Hashable, Tuple

#: A flow identifier: any hashable value.
FlowId = Hashable

#: Minimum and maximum Ethernet frame sizes in bytes; the paper uses
#: alpha = 1518 bytes as the maximum packet size throughout.
MIN_PACKET_SIZE = 40
MAX_PACKET_SIZE = 1518


@dataclass(frozen=True, order=True)
class FiveTuple:
    """A classic 5-tuple flow identifier.

    Addresses are stored as integers so that millions of identifiers stay
    cheap; use :meth:`format` for display.
    """

    src: int
    dst: int
    sport: int = 0
    dport: int = 0
    proto: int = 6

    def host_pair(self) -> Tuple[int, int]:
        """The (src, dst) pair — the flow definition used in the paper's
        experiments (Section 5.2)."""
        return (self.src, self.dst)

    def format(self) -> str:
        """Human-readable rendering, e.g. ``10.0.0.1:80->10.0.0.2:443/6``."""
        return (
            f"{ipaddress.ip_address(self.src)}:{self.sport}"
            f"->{ipaddress.ip_address(self.dst)}:{self.dport}/{self.proto}"
        )


@dataclass(frozen=True)
class Packet:
    """A single observed packet.

    Attributes mirror the paper's ``time(x)``, ``size(x)`` and ``fid(x)``
    notation: arrival time in integer nanoseconds, size in integer bytes,
    and an arbitrary hashable flow ID.
    """

    time: int
    size: int
    fid: FlowId

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")
        if self.time < 0:
            raise ValueError(f"packet time must be >= 0, got {self.time}")

    def end_time(self, capacity_bps: int) -> int:
        """Time at which this packet finishes serializing on a link of the
        given capacity (bytes/s)."""
        from .units import transmission_time_ns

        return self.time + transmission_time_ns(self.size, capacity_bps)
