"""Packet streams: ordered sequences of packets plus stream algebra.

A *stream* in this library is any iterable of :class:`~repro.model.packet.Packet`
in non-decreasing time order.  :class:`PacketStream` wraps a concrete list
with validation and summary statistics; :func:`merge` combines several
streams preserving time order, which is how experiment scenarios mix benign
background traffic with attack flows.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .packet import FlowId, Packet
from .units import NS_PER_S


class StreamOrderError(ValueError):
    """Raised when packets are observed out of time order."""


def check_ordered(packets: Iterable[Packet]) -> Iterator[Packet]:
    """Yield packets, raising :class:`StreamOrderError` on a time regression."""
    last = -1
    for index, packet in enumerate(packets):
        if packet.time < last:
            raise StreamOrderError(
                f"packet #{index} at t={packet.time}ns arrives before "
                f"previous packet at t={last}ns"
            )
        last = packet.time
        yield packet


@dataclass(frozen=True)
class StreamStats:
    """Summary statistics of a finite stream (cf. Table 4 in the paper)."""

    packet_count: int
    flow_count: int
    total_bytes: int
    duration_ns: int

    @property
    def avg_rate_bps(self) -> float:
        """Average link rate in bytes/s over the stream duration."""
        if self.duration_ns == 0:
            return 0.0
        return self.total_bytes * NS_PER_S / self.duration_ns

    @property
    def avg_flow_size(self) -> float:
        """Average bytes per flow."""
        if self.flow_count == 0:
            return 0.0
        return self.total_bytes / self.flow_count


class PacketStream(Sequence[Packet]):
    """A finite, validated, time-ordered packet stream.

    Supports the full :class:`collections.abc.Sequence` protocol, flow-level
    accessors, and summary statistics.  Construction is O(k) and verifies
    time ordering once, so downstream consumers can iterate without checks.
    """

    def __init__(self, packets: Iterable[Packet]):
        self._packets: List[Packet] = list(check_ordered(packets))

    def __len__(self) -> int:
        return len(self._packets)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return PacketStream(self._packets[index])
        return self._packets[index]

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"PacketStream(packets={stats.packet_count}, "
            f"flows={stats.flow_count}, bytes={stats.total_bytes}, "
            f"duration={stats.duration_ns / NS_PER_S:.3f}s)"
        )

    @property
    def start_time(self) -> int:
        """Arrival time of the first packet (0 for an empty stream)."""
        return self._packets[0].time if self._packets else 0

    @property
    def end_time(self) -> int:
        """Arrival time of the last packet (0 for an empty stream)."""
        return self._packets[-1].time if self._packets else 0

    def flow_ids(self) -> List[FlowId]:
        """Distinct flow IDs in first-appearance order."""
        seen: Dict[FlowId, None] = {}
        for packet in self._packets:
            seen.setdefault(packet.fid, None)
        return list(seen)

    def flow_volumes(self) -> Dict[FlowId, int]:
        """Total bytes per flow."""
        volumes: Dict[FlowId, int] = {}
        for packet in self._packets:
            volumes[packet.fid] = volumes.get(packet.fid, 0) + packet.size
        return volumes

    def flow(self, fid: FlowId) -> "PacketStream":
        """The sub-stream of packets belonging to one flow."""
        return PacketStream(p for p in self._packets if p.fid == fid)

    def window(self, t1: int, t2: int) -> "PacketStream":
        """Packets in the half-open window [t1, t2), the paper's window
        convention."""
        return PacketStream(p for p in self._packets if t1 <= p.time < t2)

    def volume(self, fid: FlowId, t1: int, t2: int) -> int:
        """The paper's ``vol(f, t1, t2)``: bytes of flow ``fid`` in [t1, t2)."""
        return sum(
            p.size for p in self._packets if p.fid == fid and t1 <= p.time < t2
        )

    def stats(self) -> StreamStats:
        """Compute summary statistics in one pass."""
        flows = set()
        total = 0
        for packet in self._packets:
            flows.add(packet.fid)
            total += packet.size
        duration = self.end_time - self.start_time if self._packets else 0
        return StreamStats(
            packet_count=len(self._packets),
            flow_count=len(flows),
            total_bytes=total,
            duration_ns=duration,
        )

    def shifted(self, delta_ns: int) -> "PacketStream":
        """A copy with every arrival time shifted by ``delta_ns``."""
        return PacketStream(
            Packet(time=p.time + delta_ns, size=p.size, fid=p.fid)
            for p in self._packets
        )


def merge(*streams: Iterable[Packet]) -> PacketStream:
    """Merge time-ordered streams into one time-ordered stream.

    Ties are broken by input order (earlier argument first), making merges
    deterministic for reproducible experiments.
    """
    return PacketStream(merge_iter(*streams))


def merge_iter(*streams: Iterable[Packet]) -> Iterator[Packet]:
    """Lazily merge time-ordered packet iterables (heap k-way merge)."""
    return heapq.merge(
        *streams, key=lambda p: p.time
    )


def clip(
    packets: Iterable[Packet],
    start_ns: Optional[int] = None,
    end_ns: Optional[int] = None,
) -> Iterator[Packet]:
    """Yield only packets with ``start_ns <= time < end_ns``."""
    for packet in packets:
        if start_ns is not None and packet.time < start_ns:
            continue
        if end_ns is not None and packet.time >= end_ns:
            break
        yield packet
