"""Unit conversion helpers.

The library's internal conventions (see DESIGN.md) are chosen so that every
quantity the deterministic guarantees depend on is an exact integer:

- **time** is measured in integer nanoseconds,
- **size** is measured in integer bytes,
- **rate** is measured in integer bytes per second,
- **scaled volume** (leaky-bucket levels, window volumes compared against a
  ``rate * duration`` product) is measured in *byte-nanoseconds*, i.e. the
  byte value multiplied by :data:`NS_PER_S`.

This module provides the constants and conversion helpers used to translate
between these internal units and the human-friendly units that appear in the
paper (Mbps links, KB bursts, millisecond bursts, ...).  All ``*_to_*``
helpers round to the nearest internal unit, so round-tripping small
human-unit values is stable.
"""

from __future__ import annotations

#: Nanoseconds per second; the denominator of all scaled-volume arithmetic.
NS_PER_S = 1_000_000_000

#: Nanoseconds per millisecond / microsecond, for readable test and
#: experiment code.
NS_PER_MS = 1_000_000
NS_PER_US = 1_000

#: Bits per byte.  The paper quotes link speeds in bits/s but measures flow
#: volume in bytes; all conversions go through this constant.
BITS_PER_BYTE = 8

#: Decimal prefixes, as used by networking hardware (1 KB = 1000 B here;
#: the paper's "6072 bytes" style constants are already plain byte counts).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (nearest)."""
    return round(value * NS_PER_S)


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer nanoseconds (nearest)."""
    return round(value * NS_PER_MS)


def microseconds(value: float) -> int:
    """Convert microseconds to integer nanoseconds (nearest)."""
    return round(value * NS_PER_US)


def ns_to_seconds(value_ns: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return value_ns / NS_PER_S


def bits_per_second(value: float) -> int:
    """Convert a bits/s rate to integer bytes/s (nearest)."""
    return round(value / BITS_PER_BYTE)


def mbps(value: float) -> int:
    """Convert megabits/s to integer bytes/s."""
    return bits_per_second(value * 1e6)


def gbps(value: float) -> int:
    """Convert gigabits/s to integer bytes/s."""
    return bits_per_second(value * 1e9)


def kilobytes_per_second(value: float) -> int:
    """Convert kilobytes/s (decimal) to integer bytes/s."""
    return round(value * KB)


def megabytes_per_second(value: float) -> int:
    """Convert megabytes/s (decimal) to integer bytes/s."""
    return round(value * MB)


def bytes_to_human(value: float) -> str:
    """Render a byte count with a decimal prefix, e.g. ``15.5KB``."""
    sign = "-" if value < 0 else ""
    value = abs(value)
    for threshold, suffix in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if value >= threshold:
            return f"{sign}{value / threshold:.4g}{suffix}"
    return f"{sign}{value:.4g}B"


def rate_to_human(value: float) -> str:
    """Render a bytes/s rate with a decimal prefix, e.g. ``250KB/s``."""
    return f"{bytes_to_human(value)}/s"


def transmission_time_ns(size_bytes: int, capacity_bps: int) -> int:
    """Time (ns, rounded up) to serialize ``size_bytes`` onto a link.

    ``capacity_bps`` is the link capacity in **bytes** per second.  Rounding
    up means back-to-back packets generated with this helper never exceed
    the link capacity.
    """
    if capacity_bps <= 0:
        raise ValueError(f"link capacity must be positive, got {capacity_bps}")
    return -((-size_bytes * NS_PER_S) // capacity_bps)
