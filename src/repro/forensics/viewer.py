"""Zero-dependency static HTML timeline for an incident log.

``eardet incidents export --html`` renders the whole CRC-verified log
into one self-contained file: the records ride as embedded JSON and a
small vanilla-JS block draws the timeline, colors incidents by class,
and filters by severity/class.  No external assets, no network fetches,
no build step — the file opens from disk anywhere.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from .incidents import INCIDENT_CLASSES, SEVERITIES, Incident

#: Stable class → color assignments (unknown classes fall back to grey).
CLASS_COLORS = {
    "detection": "#d62728",
    "watcher-verdict": "#ff7f0e",
    "watcher-promotion": "#ffbb78",
    "invariant-violation": "#8c1515",
    "guard-rejection": "#9467bd",
    "exactness-void": "#e377c2",
    "overload-transition": "#bcbd22",
    "migration": "#2ca02c",
    "migration-rollback": "#98df8a",
    "net-outage": "#17becf",
    "recovery": "#1f77b4",
    "restart": "#aec7e8",
    "source-failure": "#7f7f7f",
    "retune": "#8c564b",
    "retune-rollback": "#c49c94",
    "retune-infeasible": "#f7b6d2",
}

_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
  body { font: 14px/1.45 system-ui, sans-serif; margin: 1.5rem;
         background: #fafafa; color: #222; }
  h1 { font-size: 1.3rem; }
  .controls { margin: .75rem 0; display: flex; gap: .5rem;
              flex-wrap: wrap; align-items: center; }
  .controls label { margin-right: .25rem; }
  .legend span { display: inline-block; padding: .1rem .5rem;
                 border-radius: .75rem; color: #fff; margin: 0 .2rem .2rem 0;
                 font-size: .8rem; cursor: pointer; opacity: .9; }
  .legend span.off { opacity: .25; }
  table { border-collapse: collapse; width: 100%; background: #fff; }
  th, td { border: 1px solid #ddd; padding: .35rem .6rem;
           text-align: left; vertical-align: top; }
  th { background: #f0f0f0; position: sticky; top: 0; }
  td.id { text-align: right; font-variant-numeric: tabular-nums; }
  .class-pill { display: inline-block; padding: .05rem .45rem;
                border-radius: .7rem; color: #fff; font-size: .8rem; }
  .sev-critical { font-weight: 700; color: #8c1515; }
  .sev-error { font-weight: 600; color: #b3261e; }
  .sev-warning { color: #8a6d00; }
  .sev-info { color: #555; }
  details pre { background: #f6f6f6; padding: .4rem; overflow-x: auto; }
  .bundle { font-size: .8rem; color: #1f77b4; word-break: break-all; }
  .count { color: #666; font-size: .85rem; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<div class="controls">
  <label for="sev">Min severity:</label>
  <select id="sev">__SEVERITY_OPTIONS__</select>
  <span class="count" id="count"></span>
</div>
<div class="legend" id="legend"></div>
<table>
  <thead><tr>
    <th>id</th><th>class</th><th>severity</th><th>wall time</th>
    <th>stream time (ns)</th><th>shard</th><th>slot</th>
    <th>message</th><th>detail</th>
  </tr></thead>
  <tbody id="rows"></tbody>
</table>
<script>
const INCIDENTS = __DATA__;
const COLORS = __COLORS__;
const SEVERITIES = __SEVERITIES__;
const hidden = new Set();
const legend = document.getElementById('legend');
const classes = [...new Set(INCIDENTS.map(r => r['class']))];
for (const cls of classes) {
  const pill = document.createElement('span');
  pill.textContent = cls;
  pill.style.background = COLORS[cls] || '#7f7f7f';
  pill.onclick = () => {
    hidden.has(cls) ? hidden.delete(cls) : hidden.add(cls);
    pill.classList.toggle('off');
    render();
  };
  legend.appendChild(pill);
}
function wall(ns) {
  if (!ns) return '';
  return new Date(ns / 1e6).toISOString();
}
function render() {
  const min = SEVERITIES.indexOf(document.getElementById('sev').value);
  const body = document.getElementById('rows');
  body.innerHTML = '';
  let shown = 0;
  for (const r of INCIDENTS) {
    if (SEVERITIES.indexOf(r.severity) < min) continue;
    if (hidden.has(r['class'])) continue;
    shown += 1;
    const tr = document.createElement('tr');
    const detail = {payload: r.payload};
    if (r.bundle) detail.bundle = r.bundle;
    tr.innerHTML =
      '<td class="id">' + r.id + '</td>' +
      '<td><span class="class-pill" style="background:' +
        (COLORS[r['class']] || '#7f7f7f') + '">' + r['class'] +
        '</span></td>' +
      '<td class="sev-' + r.severity + '">' + r.severity + '</td>' +
      '<td>' + wall(r.wall_time_ns) + '</td>' +
      '<td class="id">' +
        (r.stream_time_ns === null ? '' : r.stream_time_ns) + '</td>' +
      '<td class="id">' + (r.shard === null ? '' : r.shard) + '</td>' +
      '<td class="id">' + (r.slot === null ? '' : r.slot) + '</td>' +
      '<td></td>' +
      '<td><details><summary>payload</summary><pre></pre></details>' +
      (r.bundle ? '<div class="bundle"></div>' : '') + '</td>';
    tr.children[7].textContent = r.message;
    tr.querySelector('pre').textContent = JSON.stringify(detail, null, 2);
    if (r.bundle) tr.querySelector('.bundle').textContent = r.bundle;
    body.appendChild(tr);
  }
  document.getElementById('count').textContent =
    shown + ' / ' + INCIDENTS.length + ' incidents';
}
document.getElementById('sev').onchange = render;
render();
</script>
</body>
</html>
"""


def render_html(
    records: Iterable[Incident], title: str = "EARDet incident timeline"
) -> str:
    """One self-contained HTML page for these incident records."""
    data: List[dict] = [record.as_dict() for record in records]
    # </script> inside a message would terminate the embedded block;
    # escaping the slash keeps the JSON inert inside <script>.
    blob = json.dumps(data).replace("</", "<\\/")
    options = "".join(
        f'<option value="{sev}"{" selected" if sev == "info" else ""}>'
        f"{sev}</option>"
        for sev in SEVERITIES
    )
    page = _TEMPLATE
    page = page.replace("__TITLE__", title)
    page = page.replace("__SEVERITY_OPTIONS__", options)
    page = page.replace("__DATA__", blob)
    page = page.replace("__COLORS__", json.dumps(CLASS_COLORS))
    page = page.replace("__SEVERITIES__", json.dumps(list(SEVERITIES)))
    return page


__all__ = ["CLASS_COLORS", "render_html", "INCIDENT_CLASSES"]
